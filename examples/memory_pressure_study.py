#!/usr/bin/env python3
"""Memory-pressure study (§4.3.1): how much slack does Linux's THP
policy need, and how much does allocation order buy back?

Sweeps the free memory left beyond the application's working set from
an oversubscribed deficit up to +3 "GB" (GB units scale with the machine
profile — 1MB on the SCALED 64MB node) and compares:

- the 4KB baseline,
- greedy THP with the natural allocation order (property array last),
- greedy THP with the graph-analytics-optimized order (property first).

Run:  python examples/memory_pressure_study.py [dataset]
"""

import sys

from repro.api import ExperimentRunner, fig07b_pressure_sweep, format_table


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "wiki-s"
    runner = ExperimentRunner()
    result = fig07b_pressure_sweep(
        runner,
        workloads=("bfs",),
        datasets=(dataset,),
        levels=(-0.5, 0.0, 0.5, 1.0, 2.0, 3.0),
    )
    print(result.render())
    rows = {row["free_gb"]: row for row in result.rows}
    print()
    print(
        "oversubscribed (-0.5GB): baseline collapses to "
        f"{rows[-0.5]['base4k']:.3f}x of fresh performance (swap)"
    )
    restored = rows[3.0]["thp_natural"] - 1.0
    at_half = rows[0.5]["thp_natural"] - 1.0
    print(
        f"greedy THP keeps {at_half / max(restored, 1e-9):.0%} of its gain "
        "at +0.5GB, full gain by +3GB"
    )
    print(
        "property-first order at +0.5GB already reaches "
        f"{rows[0.5]['thp_property_first']:.3f}x"
    )


if __name__ == "__main__":
    main()
