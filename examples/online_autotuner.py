#!/usr/bin/env python3
"""The paper's future work, running: an online page-size autotuner.

The paper concludes that huge pages "need to be managed by programmers,
OSes, and next-generation automated systems ... leverag[ing] application
behavior knowledge with real-time memory system resource tracking".
:class:`repro.core.autotuner.OnlineAdvisor` is that automated system:

- it starts with 4KB pages everywhere (no preprocessing, no madvise),
- profiles the first workload iteration through the page profiler,
- then promotes the hottest chunks of the per-vertex arrays — and only
  those — using khugepaged's promotion machinery, paying copy costs and
  TLB shootdowns like any run-time promotion.

This example compares, under fragmentation, the 4KB baseline, greedy
THP, the autotuner, and the paper's static programmer-guided plan.

Run:  python examples/online_autotuner.py [dataset]
"""

import sys

from repro.api import (
    ExperimentRunner,
    fragmented,
    get_policy,
    recommended_reorder,
    selective_policy,
)


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "kron-s"
    runner = ExperimentRunner()
    scenario = fragmented(0.5)

    # Policies come from the zoo registry — the same names the CLI's
    # `--policy` flag accepts (see `repro policies`).
    base = runner.run_cell("bfs", dataset, get_policy("never"), scenario)
    greedy = runner.run_cell(
        "bfs", dataset, get_policy("greedy-always"), scenario
    )
    tuner = runner.run_cell(
        "bfs", dataset, get_policy("autotuner"), scenario
    )
    static = runner.run_cell(
        "bfs",
        dataset,
        selective_policy(0.2, reorder=recommended_reorder(runner, dataset)),
        scenario,
    )

    print(f"BFS on {dataset}, {scenario.name}:")
    print(f"  4KB baseline        : 1.00x (reference)")
    print(f"  greedy THP          : {greedy.speedup_over(base):.2f}x")
    print(
        f"  online autotuner    : {tuner.speedup_over(base):.2f}x "
        f"({tuner.manager_promotions} promotions at run time, "
        f"{tuner.huge_footprint_fraction:.2%} of memory huge)"
    )
    print(
        f"  programmer-guided   : {static.speedup_over(base):.2f}x "
        f"({static.huge_footprint_fraction:.2%} of memory huge, "
        "placed at initialization)"
    )
    print()
    print(
        "The autotuner needs no preprocessing or source changes; with "
        "exact runtime hotness tracking it can even beat the static "
        "plan (it skips DBG's preprocessing cost and covers the hot "
        "pages wherever they are) — exactly the opportunity the paper's "
        "conclusion points at for next-generation automated systems."
    )


if __name__ == "__main__":
    main()
