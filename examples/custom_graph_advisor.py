#!/usr/bin/env python3
"""Bring your own graph: generate or load an edge list, inspect its hub
structure, and get a page-size plan for it.

Demonstrates the library as a downstream user would adopt it:

1. build a graph (here: two synthetic crawls with opposite id-space
   locality; swap in ``load_edge_list(path)`` for a real file),
2. save/load it through the edge-list format,
3. run the advisor on each and compare the plans — the Twitter-like
   input keeps its natural order, the shuffled input gets DBG,
4. execute both plans and print the outcome.

Run:  python examples/custom_graph_advisor.py
"""

import os
import tempfile

from repro.api import (
    AdvisorHook,
    Bfs,
    Machine,
    ORDERINGS,
    PageSizeAdvisor,
    ThpMode,
    ThpPolicy,
    load_edge_list,
    power_law_graph,
    save_edge_list,
)


def build_inputs():
    clustered = power_law_graph(
        num_vertices=49_152,
        num_edges=393_216,
        alpha=1.0,
        community_fraction=0.4,
        seed=7,
    )
    scattered = power_law_graph(
        num_vertices=49_152,
        num_edges=393_216,
        alpha=1.0,
        hub_shuffle=1.0,
        seed=7,
    )
    return {"crawl-ordered": clustered, "shuffled": scattered}


def roundtrip_through_edge_list(graph):
    """Show the interchange path a real dataset would take."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "graph.el")
        save_edge_list(graph, path)
        return load_edge_list(path, num_vertices=graph.num_vertices)


def main() -> None:
    for name, graph in build_inputs().items():
        graph = roundtrip_through_edge_list(graph)
        report = PageSizeAdvisor(graph).advise()
        print(f"=== {name} ===")
        print(
            f"  hot set: {report.hot_vertex_fraction:.1%} of vertices "
            f"covering {report.access_coverage:.0%} of property accesses"
        )
        print(
            f"  natural clustering {report.natural_clustering:.0%} -> "
            f"DBG {'recommended' if report.reorder_recommended else 'skipped'}"
        )
        print(
            f"  plan: madvise {report.advise_fraction:.0%} of the property "
            f"array ({report.huge_pages_needed} huge pages, "
            f"{report.budget_fraction:.2%} of the footprint)"
        )

        plan = report.plan
        ordering = ORDERINGS[plan.reorder](graph)
        run_graph = graph.relabel(ordering)
        # The advisor's run-time half is a PagePolicy hook: every
        # fault/khugepaged/demote decision flows through AdvisorHook
        # (docs/policies.md) instead of the madvise mode knob.
        machine = Machine(
            thp=ThpPolicy(mode=ThpMode.MADVISE, hooks=AdvisorHook())
        )
        planned = machine.run(Bfs(run_graph), plan=plan, dataset=name)
        baseline = Machine(thp=ThpPolicy.never()).run(
            Bfs(graph), dataset=name
        )
        print(
            f"  plan speedup over 4KB pages: "
            f"{planned.speedup_over(baseline):.2f}x "
            f"(walk rate {baseline.walk_rate:.1%} -> {planned.walk_rate:.1%})"
        )
        print()


if __name__ == "__main__":
    main()
