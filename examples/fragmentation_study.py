#!/usr/bin/env python3
"""Fragmentation study (§4.4): what non-movable kernel-page litter does
to huge page availability, and where the pages actually went.

Reproduces the Fig. 9 sweep for one dataset and then prints the
huge-page census per data structure — the measured version of the
paper's Fig. 6 cartoon: under the natural allocation order the CSR
arrays consume the surviving huge regions and the property array is
left on 4KB pages.

Run:  python examples/fragmentation_study.py [dataset]
"""

import sys

from repro.api import (
    ExperimentRunner,
    ablation_alloc_order_census,
    fig09_frag_sweep,
)


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "web-s"
    runner = ExperimentRunner()

    sweep = fig09_frag_sweep(runner, datasets=(dataset,))
    print(sweep.render())

    print()
    census = ablation_alloc_order_census(runner, datasets=(dataset,))
    print(census.render())

    natural = next(r for r in census.rows if r["policy"] == "thp")
    optimized = next(r for r in census.rows if r["policy"] == "thp-opt")
    print()
    print(
        "natural order: property array is "
        f"{natural['property_array']:.0%} huge-backed; "
        "property-first order: "
        f"{optimized['property_array']:.0%} huge-backed"
    )


if __name__ == "__main__":
    main()
