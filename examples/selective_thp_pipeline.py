#!/usr/bin/env python3
"""The paper's contribution, end to end (§5): advisor-driven selective
huge-page management on a fragmented, memory-constrained machine.

Pipeline:

1. The :class:`PageSizeAdvisor` inspects the graph's degree profile and
   decides whether DBG preprocessing is needed and what fraction ``s``
   of the property array deserves ``MADV_HUGEPAGE``.
2. The plan runs on a machine with WSS+3GB free and 50% non-movable
   fragmentation — the paper's Fig. 10 scenario.
3. The result is compared against the 4KB baseline, greedy system-wide
   THP in the same scenario, and unbounded THP on a fresh machine.

Run:  python examples/selective_thp_pipeline.py [dataset]
"""

import sys

from repro.api import (
    ExperimentRunner,
    Machine,
    POLICIES,
    PageSizeAdvisor,
    PlacementPlan,
    Policy,
    ThpPolicy,
    fragmented,
    fresh,
    load_dataset,
)


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "kron-s"
    data = load_dataset(dataset_name)
    runner = ExperimentRunner()

    report = PageSizeAdvisor(data.graph, config=runner.config).advise()
    print(f"advisor report for {data.name}:")
    print(f"  hot vertices        : {report.hot_vertex_fraction:.1%} of V")
    print(f"  access coverage     : {report.access_coverage:.1%}")
    print(f"  natural clustering  : {report.natural_clustering:.1%}")
    print(f"  DBG recommended     : {report.reorder_recommended}")
    print(f"  advise fraction s   : {report.advise_fraction:.1%}")
    print(f"  huge pages needed   : {report.huge_pages_needed}")
    print(f"  huge-page budget    : {report.budget_fraction:.2%} of footprint")

    scenario = fragmented(0.5)
    advisor_policy = Policy(
        name="advisor", thp_factory=ThpPolicy.madvise, plan=report.plan
    )
    base = runner.run_cell("bfs", dataset_name, POLICIES["base4k"], scenario)
    greedy = runner.run_cell("bfs", dataset_name, POLICIES["thp"], scenario)
    chosen = runner.run_cell("bfs", dataset_name, advisor_policy, scenario)
    ideal = runner.run_cell("bfs", dataset_name, POLICIES["thp"], fresh())
    base_fresh = runner.run_cell(
        "bfs", dataset_name, POLICIES["base4k"], fresh()
    )

    print(f"\nBFS on {dataset_name}, +3GB free, 50% fragmented:")
    print(f"  greedy THP speedup over 4KB : {greedy.speedup_over(base):.2f}x")
    print(f"  advisor plan speedup        : {chosen.speedup_over(base):.2f}x")
    ideal_speedup = ideal.speedup_over(base_fresh)
    share = chosen.speedup_over(base) / ideal_speedup
    print(f"  unbounded THP (fresh boot)  : {ideal_speedup:.2f}x")
    print(f"  -> advisor reaches {share:.1%} of unbounded performance")
    print(
        f"  -> using huge pages for only "
        f"{chosen.huge_footprint_fraction:.2%} of application memory"
    )


if __name__ == "__main__":
    main()
