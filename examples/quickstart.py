#!/usr/bin/env python3
"""Quickstart: run one graph workload on the simulated machine.

Loads the scaled Kronecker input, runs BFS twice — once with 4KB pages
only (the paper's baseline) and once with Linux-style system-wide THP on
a freshly booted machine — and prints the numbers the paper's Figs. 1-3
are made of: kernel cycles, DTLB miss rate, page-walk rate, and the
speedup.

Run:  python examples/quickstart.py
"""

from repro.api import (
    Machine,
    ThpPolicy,
    create_workload,
    format_bytes,
    load_dataset,
)


def run_once(thp: ThpPolicy, label: str, graph):
    machine = Machine(thp=thp)
    workload = create_workload("bfs", graph)
    metrics = machine.run(workload, dataset="kron-s")
    print(f"--- {label} ---")
    print(f"  kernel cycles    : {metrics.kernel_cycles:,}")
    print(f"  DTLB miss rate   : {metrics.dtlb_miss_rate:.1%}")
    print(f"  page-walk rate   : {metrics.walk_rate:.1%}")
    print(
        f"  huge-page backed : {format_bytes(metrics.huge_bytes)} "
        f"({metrics.huge_footprint_fraction:.1%} of "
        f"{format_bytes(metrics.footprint_bytes)})"
    )
    return metrics


def main() -> None:
    data = load_dataset("kron-s")
    graph = data.graph
    print(
        f"dataset {data.name} ({data.paper_name}): "
        f"{graph.num_vertices:,} vertices, {graph.num_edges:,} edges"
    )
    base = run_once(ThpPolicy.never(), "4KB pages only", graph)
    thp = run_once(ThpPolicy.always(), "system-wide THP (fresh boot)", graph)
    print(f"\nTHP speedup over 4KB pages: {thp.speedup_over(base):.2f}x")


if __name__ == "__main__":
    main()
