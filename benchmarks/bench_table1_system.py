"""Table 1 — evaluation system parameters.

Prints the paper's machine (the ``paper-x86`` profile mirrors Table 1
exactly) next to the SCALED profile actually used for simulation, with
the reach ratios that DESIGN.md §3 argues are preserved.
"""

from repro.config import get_profile
from repro.experiments.figures import FigureResult
from repro.units import format_bytes


def test_table1_system(benchmark, report):
    def build():
        result = FigureResult(
            "table1",
            "Evaluation system parameters (paper profile vs scaled)",
        )
        for name in ("paper-x86", "scaled", "tiny"):
            cfg = get_profile(name)
            stlb_reach = cfg.tlb.l2.entries * cfg.pages.base_page_size
            result.rows.append(
                {
                    "profile": name,
                    "base_page": format_bytes(cfg.pages.base_page_size),
                    "huge_page": format_bytes(cfg.pages.huge_page_size),
                    "l1_dtlb_4k": cfg.tlb.l1_base.entries,
                    "l1_dtlb_huge": cfg.tlb.l1_huge.entries,
                    "stlb": cfg.tlb.l2.entries,
                    "node_memory": format_bytes(cfg.node_memory_bytes),
                    "stlb_reach": format_bytes(stlb_reach),
                }
            )
        return result

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    report(result)
    rows = {row["profile"]: row for row in result.rows}
    # Table 1 exactness.
    assert rows["paper-x86"]["l1_dtlb_4k"] == 64
    assert rows["paper-x86"]["l1_dtlb_huge"] == 32
    assert rows["paper-x86"]["stlb"] == 1536
    assert rows["paper-x86"]["huge_page"] == "2.0MiB"
    # Both profiles must put a property array far beyond 4KB STLB reach
    # (the regime every effect in the paper depends on): the paper's
    # Kr25 property array is ~272MB vs 6MB reach; the scaled kron-s
    # property array is 1MB vs 256KB reach.
    paper = get_profile("paper-x86")
    scaled = get_profile("scaled")
    paper_property = 34_000_000 * 8
    scaled_property = 131_072 * 8
    assert paper_property >= 4 * paper.tlb.l2.entries * paper.pages.base_page_size
    assert scaled_property >= 4 * scaled.tlb.l2.entries * scaled.pages.base_page_size
    # ...while the huge-page STLB reach covers it in both.
    assert paper_property <= paper.tlb.l2.entries * paper.pages.huge_page_size
    assert scaled_property <= scaled.tlb.l2.entries * scaled.pages.huge_page_size