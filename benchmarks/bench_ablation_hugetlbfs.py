"""Ablation (§2.3) — explicit hugetlbfs reservations versus madvise THP
under extreme fragmentation.

A boot-time reservation is immune to whatever happens to the rest of
memory: at 95% fragmentation THP-based selective placement can no longer
find regions for the whole property array, while the hugetlbfs plan
keeps 100% coverage — the reliability/flexibility trade-off the paper
describes when motivating its THP focus.
"""

from repro.experiments import figures
from repro.experiments.harness import ExperimentRunner
from repro.experiments.policies import (
    POLICIES,
    hugetlb_policy,
    selective_policy,
)
from repro.experiments.scenarios import Scenario

EXTREME_FRAG = Scenario(
    name="fragmented(95%,+3GB,clean)",
    pressure_gb=3.0,
    frag_level=0.95,
    noise_nonmovable_gb=0.0,
    noise_movable_gb=0.0,
)


def test_ablation_hugetlbfs(benchmark, runner, datasets, report):
    def build():
        result = figures.FigureResult(
            "abl-hugetlb",
            "hugetlbfs boot-time reservation vs madvise THP at 95% "
            "fragmentation (BFS)",
        )
        for dataset in datasets:
            base = runner.run_cell(
                "bfs", dataset, POLICIES["base4k"], EXTREME_FRAG
            )
            selective = runner.run_cell(
                "bfs",
                dataset,
                selective_policy(1.0, reorder="original"),
                EXTREME_FRAG,
            )
            hugetlb = runner.run_cell(
                "bfs",
                dataset,
                hugetlb_policy(1.0, reorder="original"),
                EXTREME_FRAG,
            )
            result.rows.append(
                {
                    "dataset": dataset,
                    "selective_thp": selective.speedup_over(base),
                    "hugetlbfs": hugetlb.speedup_over(base),
                    "thp_property_coverage": selective
                    .huge_fraction_per_array["property_array"],
                    "hugetlb_property_coverage": hugetlb
                    .huge_fraction_per_array["property_array"],
                }
            )
        return result

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    report(result)
    for row in result.rows:
        # The reservation always covers the property array fully...
        assert row["hugetlb_property_coverage"] > 0.95, row
        # ...and never does worse than THP-based placement.
        assert row["hugetlbfs"] >= row["selective_thp"] - 0.02, row
    # Somewhere in the grid, fragmentation must actually have starved
    # the THP path (otherwise the scenario is too gentle to matter).
    assert any(
        row["thp_property_coverage"] < row["hugetlb_property_coverage"]
        for row in result.rows
    )
