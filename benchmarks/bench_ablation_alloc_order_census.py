"""Ablation (DESIGN.md) — huge-page census per data structure under
pressure: the measured version of the paper's Fig. 6 narrative.

With the natural order the CSR arrays consume the scarce huge regions
and the property array is left on base pages; property-first flips the
outcome.
"""

from repro.experiments import figures


def test_ablation_alloc_order_census(benchmark, runner, datasets, report):
    result = benchmark.pedantic(
        figures.ablation_alloc_order_census,
        args=(runner,),
        kwargs={"datasets": datasets},
        rounds=1,
        iterations=1,
    )
    report(result)
    for dataset in datasets:
        rows = {
            row["policy"]: row
            for row in result.rows
            if row["dataset"] == dataset
        }
        assert (
            rows["thp"]["property_array"]
            < rows["thp-opt"]["property_array"]
        ), dataset
        assert rows["thp-opt"]["property_array"] > 0.9, dataset
    benchmark.extra_info["datasets"] = len(datasets)
