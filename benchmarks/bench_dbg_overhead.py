"""§5.1.2 — DBG preprocessing overhead.

Paper: DBG costs up to 2.36% of kernel time for SSSP/PR (avg 1.32%) and
up to 16.5% for the much shorter-running BFS (avg 13%).
"""

from repro.experiments import figures


def test_dbg_overhead(benchmark, runner, workloads, datasets, report):
    result = benchmark.pedantic(
        figures.dbg_overhead,
        args=(runner,),
        kwargs={"workloads": workloads, "datasets": datasets},
        rounds=1,
        iterations=1,
    )
    report(result)
    by_workload: dict[str, list[float]] = {}
    for row in result.rows:
        by_workload.setdefault(row["workload"], []).append(
            row["preprocess_fraction"]
        )
    for name, values in by_workload.items():
        benchmark.extra_info[f"avg_{name}"] = round(
            sum(values) / len(values), 4
        )
    # Long-running kernels amortize DBG to a few percent.
    for name in ("sssp", "pagerank"):
        if name in by_workload:
            assert max(by_workload[name]) < 0.10, name
    # BFS is short: overhead is noticeable but bounded.
    if "bfs" in by_workload:
        assert max(by_workload["bfs"]) < 0.30
