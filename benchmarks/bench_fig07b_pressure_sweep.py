"""§4.3.1 — memory-pressure sweep: 7 free-memory levels beyond the WSS
plus oversubscription by 0.5GB-equivalent.

Paper: >=2.5GB of slack is needed for unbounded THP gains; gains drop
~30% on average in the 0-2GB range; oversubscription slows both 4KB and
THP runs by an order of magnitude (24.6x / 23.6x).
"""

from repro.experiments import figures

LEVELS = (-0.5, 0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0)


def test_fig07b_pressure_sweep(benchmark, runner, datasets, report):
    result = benchmark.pedantic(
        figures.fig07b_pressure_sweep,
        args=(runner,),
        kwargs={"datasets": datasets, "levels": LEVELS},
        rounds=1,
        iterations=1,
    )
    report(result)
    for dataset in datasets:
        series = {
            row["free_gb"]: row
            for row in result.rows
            if row["dataset"] == dataset
        }
        # Oversubscription collapses everything by ~an order of magnitude.
        assert series[-0.5]["base4k"] < 0.2, dataset
        assert series[-0.5]["thp_natural"] < 0.2, dataset
        # THP gains are restored by +3GB and monotonically non-silly.
        assert series[3.0]["thp_natural"] > series[0.5]["thp_natural"]
        # Property-first is robust from +1GB already.
        assert (
            series[1.0]["thp_property_first"]
            > 0.9 * series[3.0]["thp_property_first"]
        )
    slowdown = 1.0 / min(r["base4k"] for r in result.rows)
    benchmark.extra_info["max_oversub_slowdown"] = round(slowdown, 1)
