"""Abstract / §4.5 headline — DBG + selective THP versus 4KB pages and
unbounded THP, with the huge-page budget.

Paper bands: 1.26-1.57x speedup over 4KB pages alone, 77.3-96.3% of
unbounded huge-page performance, using huge pages for only 0.58-2.92%
of the application memory.
"""

import time

from repro.experiments import figures
from repro.experiments.reporting import geomean


def test_headline_summary(
    benchmark, runner, workloads, datasets, report, sweep_record
):
    # Time each *simulated* cell (cache and journal hits bypass
    # _execute_cell) so the sweep record carries a per-cell geomean
    # alongside the whole-figure wall time.
    durations: list[float] = []
    original = runner._execute_cell

    def timed(*args, **kwargs):
        start = time.perf_counter()
        try:
            return original(*args, **kwargs)
        finally:
            durations.append(time.perf_counter() - start)

    runner._execute_cell = timed
    figure_start = time.perf_counter()
    try:
        result = benchmark.pedantic(
            figures.headline_summary,
            args=(runner,),
            kwargs={"workloads": workloads, "datasets": datasets},
            rounds=1,
            iterations=1,
        )
    finally:
        runner._execute_cell = original
    figure_seconds = time.perf_counter() - figure_start
    sweep_record(
        "headline_summary",
        {
            "workers": runner.workers,
            "figure_seconds": figure_seconds,
            "cells_simulated": len(durations),
            "geomean_cell_seconds": (
                geomean(durations) if durations else None
            ),
        },
    )
    report(result)
    speedups = [row["selective_speedup"] for row in result.rows]
    shares = [row["pct_of_unbounded"] for row in result.rows]
    budgets = [row["huge_budget_frac"] for row in result.rows]
    benchmark.extra_info["speedup_range"] = (
        f"{min(speedups):.2f}-{max(speedups):.2f}"
    )
    benchmark.extra_info["unbounded_share_range"] = (
        f"{min(shares):.1%}-{max(shares):.1%}"
    )
    benchmark.extra_info["budget_range"] = (
        f"{min(budgets):.2%}-{max(budgets):.2%}"
    )
    # The reproduction's bands must bracket the paper's story: clear
    # speedup over 4KB, most of unbounded THP, tiny huge-page budget.
    assert geomean(speedups) > 1.05
    assert min(shares) > 0.6
    assert max(budgets) < 0.08
