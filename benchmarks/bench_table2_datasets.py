"""Table 2 — applications, inputs and memory footprints.

The scaled dataset registry must preserve the paper's relative shape:
Wikipedia smallest, SSSP footprints ~1.5x BFS (extra values array),
PageRank slightly above BFS (extra rank array).

The million-vertex scale tier (``kron-m``/``uniform-m``/``road-m``)
rides the same inventory: the second test builds each scale-tier graph
and checks the tier actually sits an order of magnitude above the
evaluation datasets, with ``road-m`` small enough that a fully
huge-backed footprint fits the paper machine's L1 TLB reach (the
translation-kernel benchmark's closed cell).
"""

from repro.experiments import figures
from repro.graph.datasets import SCALE_TIER_DATASETS, clear_dataset_cache


def test_table2_datasets(benchmark, runner, workloads, datasets, report):
    result = benchmark.pedantic(
        figures.table2_datasets,
        args=(runner,),
        kwargs={"workloads": workloads, "datasets": datasets},
        rounds=1,
        iterations=1,
    )
    report(result)
    by_cell = {
        (row["workload"], row["dataset"]): row["footprint_bytes"]
        for row in result.rows
    }
    benchmark.extra_info["cells"] = len(result.rows)
    if {"bfs", "sssp"} <= set(workloads):
        for dataset in datasets:
            assert by_cell[("sssp", dataset)] > 1.3 * by_cell[("bfs", dataset)]
    if "wiki-s" in datasets and "kron-s" in datasets:
        first = workloads[0]
        assert by_cell[(first, "wiki-s")] < by_cell[(first, "kron-s")]


def test_table2_scale_tier(benchmark, runner, sweep_record):
    result = benchmark.pedantic(
        figures.table2_datasets,
        args=(runner,),
        kwargs={"workloads": ("pagerank",), "datasets": SCALE_TIER_DATASETS},
        rounds=1,
        iterations=1,
    )
    rows = {row["dataset"]: row for row in result.rows}
    assert set(rows) == set(SCALE_TIER_DATASETS)
    for row in rows.values():
        assert row["vertices"] >= 1_000_000
    # road-m is the tier's closed cell: ~24 huge pages when fully
    # 2MB-backed, under the paper machine's 32-entry L1-huge reach.
    huge_pages = -(-rows["road-m"]["footprint_bytes"] // (2 << 20))
    assert huge_pages <= 32
    sweep_record(
        "scale_tier_datasets",
        {
            "datasets": {
                name: {
                    "vertices": row["vertices"],
                    "edges": row["edges"],
                    "footprint_bytes": row["footprint_bytes"],
                }
                for name, row in rows.items()
            },
            "road_m_huge_pages": huge_pages,
        },
    )
    clear_dataset_cache()
