"""Table 2 — applications, inputs and memory footprints.

The scaled dataset registry must preserve the paper's relative shape:
Wikipedia smallest, SSSP footprints ~1.5x BFS (extra values array),
PageRank slightly above BFS (extra rank array).
"""

from repro.experiments import figures


def test_table2_datasets(benchmark, runner, workloads, datasets, report):
    result = benchmark.pedantic(
        figures.table2_datasets,
        args=(runner,),
        kwargs={"workloads": workloads, "datasets": datasets},
        rounds=1,
        iterations=1,
    )
    report(result)
    by_cell = {
        (row["workload"], row["dataset"]): row["footprint_bytes"]
        for row in result.rows
    }
    benchmark.extra_info["cells"] = len(result.rows)
    if {"bfs", "sssp"} <= set(workloads):
        for dataset in datasets:
            assert by_cell[("sssp", dataset)] > 1.3 * by_cell[("bfs", dataset)]
    if "wiki-s" in datasets and "kron-s" in datasets:
        first = workloads[0]
        assert by_cell[(first, "wiki-s")] < by_cell[(first, "kron-s")]
