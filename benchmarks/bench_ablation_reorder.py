"""Ablation (DESIGN.md) — reordering strategies for selective THP:
DBG versus full degree sort versus random versus original order, at a
fixed selectivity under fragmentation.

DBG and degree-sort both concentrate hot vertices in the advised prefix;
random scatters them (worst case); the original order depends on the
input's natural hub locality.
"""

from repro.experiments import figures


def test_ablation_reorder(benchmark, runner, datasets, report):
    result = benchmark.pedantic(
        figures.ablation_reorder,
        args=(runner,),
        kwargs={"datasets": datasets},
        rounds=1,
        iterations=1,
    )
    report(result)
    for row in result.rows:
        assert row["dbg"] > row["random"] - 0.02, row
        assert row["degree-sort"] > row["random"] - 0.02, row
    benchmark.extra_info["rows"] = len(result.rows)
