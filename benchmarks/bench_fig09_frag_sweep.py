"""Fig. 9 — sensitivity to fragmentation level (0/25/50/75%, BFS,
WSS+3GB free).

Paper: a significant THP performance drop appears at just 25%
fragmentation; optimizing the allocation order regains performance and
THPs still help even at 75%.
"""

from repro.experiments import figures


def test_fig09_frag_sweep(benchmark, runner, datasets, report):
    result = benchmark.pedantic(
        figures.fig09_frag_sweep,
        args=(runner,),
        kwargs={"datasets": datasets},
        rounds=1,
        iterations=1,
    )
    report(result)
    for dataset in datasets:
        series = {
            row["frag_level"]: row
            for row in result.rows
            if row["dataset"] == dataset
        }
        unfragmented_gain = series[0.0]["thp_natural"] - 1.0
        # Greedy THP degrades monotonically with fragmentation and has
        # lost most of its gain by 50%.
        assert (
            series[0.25]["thp_natural"]
            >= series[0.5]["thp_natural"] - 1e-9
        ), dataset
        assert (
            series[0.5]["thp_natural"] - 1.0 < 0.5 * unfragmented_gain
        ), dataset
        # Optimized order retains most of the gain even at 75%.
        assert (
            series[0.75]["thp_property_first"] - 1.0
            > 0.6 * unfragmented_gain
        ), dataset
    # The sharp 25% cliff appears once the footprint meaningfully
    # exceeds the +3GB slack (the large inputs, as in the paper).
    for dataset in ("kron-s", "web-s"):
        if dataset in datasets:
            series = {
                row["frag_level"]: row
                for row in result.rows
                if row["dataset"] == dataset
            }
            gain0 = series[0.0]["thp_natural"] - 1.0
            assert series[0.25]["thp_natural"] - 1.0 < 0.5 * gain0, dataset
    benchmark.extra_info["datasets"] = len(datasets)
