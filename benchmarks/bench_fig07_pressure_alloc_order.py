"""Fig. 7 — THP under high memory pressure (+0.5GB-equivalent), with the
natural versus graph-analytics-optimized allocation order.

Paper: THP gains are significantly reduced under pressure with natural
order (property array allocated last misses out on huge pages); the
optimized property-first order nearly matches the ideal; the 4KB
baseline is unaffected.
"""

from repro.experiments import figures


def test_fig07_pressure_alloc_order(
    benchmark, runner, workloads, datasets, report
):
    result = benchmark.pedantic(
        figures.fig07_pressure_alloc_order,
        args=(runner,),
        kwargs={"workloads": workloads, "datasets": datasets},
        rounds=1,
        iterations=1,
    )
    report(result)
    for row in result.rows:
        ideal_gain = row["thp_ideal"] - 1.0
        natural_gain = row["thp_natural"] - 1.0
        optimized_gain = row["thp_property_first"] - 1.0
        # Baseline unaffected by pressure.
        assert abs(row["base4k_pressured"] - 1.0) < 0.05, row
        # Natural order loses most of the gain; optimized restores it.
        assert natural_gain < 0.5 * ideal_gain, row
        assert optimized_gain > 0.75 * ideal_gain, row
    benchmark.extra_info["cells"] = len(result.rows)
