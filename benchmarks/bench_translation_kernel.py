"""Translation-kernel microbenchmark: exact vs batch engine, per cell.

Captures the TLB traces (and flush boundaries) of representative
experiment cells once, then replays the identical trace sequence
through a fresh exact hierarchy and a fresh batch hierarchy, timing
only the ``simulate`` calls.  Both engines are single-threaded numpy,
so the measured per-cell kernel seconds are CPU-count-independent —
unlike the sweep-level wall-clock benches, this entry is comparable
across hosts with different core counts.

Cells (full mode):

- ``road-m/pagerank/paper-x86/hugetlb-all`` — the million-vertex
  scale-tier graph whose ~40MB footprint fits the paper machine's L1
  TLB reach when fully hugetlb-backed.  The batch engine's closed-sets
  fast path decides the whole stream in a few table passes; this is
  the >=10x cell.
- ``kron-m/pagerank/scaled-1m/none`` — the miss-heavy million-vertex
  cell on the scaled-1m profile, exercising the sort-based set-wise
  decision procedure (typically 3-4x on one core).

``REPRO_BENCH_KERNEL=quick`` swaps in a small synthetic pair of cells
(seconds, for CI smoke); the >=10x target is only asserted in full
mode outside CI, but the measured ratios are always recorded under
``translation_engine`` in BENCH_sweep.json.
"""

from __future__ import annotations

import os
import time
from unittest import mock

import numpy as np

from repro.config import paper_x86, scaled_1m, tiny
from repro.core.plan import PlacementPlan
from repro.graph.datasets import clear_dataset_cache, load_dataset
from repro.machine import machine as machine_mod
from repro.tlb.engine import BatchTranslationHierarchy
from repro.tlb.hierarchy import TranslationHierarchy, TranslationStats
from repro.workloads.registry import create_workload

QUICK = os.environ.get("REPRO_BENCH_KERNEL", "") == "quick"
TARGET_SPEEDUP = 10.0


def _capture_cell(config, dataset, workload_kwargs, plan, hugetlb_regions):
    """Run one cell under the exact engine, recording every simulated
    trace and flush in order."""
    events: list[tuple] = []

    class Recorder(TranslationHierarchy):
        def simulate(self, trace, stats):
            events.append(("trace", trace))
            super().simulate(trace, stats)

        def flush(self):
            events.append(("flush",))
            super().flush()

    graph = load_dataset(dataset).graph
    workload = create_workload("pagerank", graph, **workload_kwargs)
    with mock.patch.object(
        machine_mod, "make_hierarchy", lambda engine, cfg: Recorder(cfg)
    ):
        m = machine_mod.Machine(config)
        if hugetlb_regions:
            m.reserve_hugetlb(hugetlb_regions)
        m.run(workload, plan=plan, dataset=dataset)
    return events


def _replay(engine_cls, config, events, reps=1):
    """Replay a captured event sequence through a fresh hierarchy per
    rep; returns (stats of the first rep, best-of-reps sim_seconds)."""
    stats = None
    best = None
    for _ in range(max(reps, 1)):
        hierarchy = engine_cls(config.tlb)
        rep_stats = TranslationStats()
        sim_seconds = 0.0
        for event in events:
            if event[0] == "flush":
                hierarchy.flush()
                continue
            start = time.perf_counter()
            hierarchy.simulate(event[1], rep_stats)
            sim_seconds += time.perf_counter() - start
        if stats is None:
            stats = rep_stats
        best = sim_seconds if best is None else min(best, sim_seconds)
    return stats, best


def _cells():
    all_arrays = {i: 1.0 for i in range(5)}
    if QUICK:
        return [
            (
                "test-small/pagerank/tiny/hugetlb-all",
                tiny(),
                "test-small",
                {"max_iterations": 3},
                PlacementPlan(
                    hugetlb_fractions=all_arrays, label="hugetlb-all"
                ),
                16,
            ),
            (
                "test-small/pagerank/tiny/none",
                tiny(),
                "test-small",
                {"max_iterations": 3},
                PlacementPlan.none(),
                0,
            ),
        ]
    return [
        (
            "road-m/pagerank/paper-x86/hugetlb-all",
            paper_x86(),
            "road-m",
            {"max_iterations": 2},
            PlacementPlan(hugetlb_fractions=all_arrays, label="hugetlb-all"),
            64,
        ),
        (
            "kron-m/pagerank/scaled-1m/none",
            scaled_1m(),
            "kron-m",
            {"max_iterations": 2},
            PlacementPlan.none(),
            0,
        ),
    ]


def test_translation_kernel(sweep_record):
    results: dict[str, dict] = {}
    for label, config, dataset, wl_kwargs, plan, hugetlb in _cells():
        events = _capture_cell(config, dataset, wl_kwargs, plan, hugetlb)
        lookups = sum(
            e[1].lookup_view()[0].size for e in events if e[0] == "trace"
        )
        reps = 1 if QUICK else 2
        exact_stats, exact_seconds = _replay(
            TranslationHierarchy, config, events, reps=reps
        )
        batch_stats, batch_seconds = _replay(
            BatchTranslationHierarchy, config, events, reps=reps + 1
        )
        identical = (
            np.array_equal(exact_stats.accesses, batch_stats.accesses)
            and np.array_equal(exact_stats.l1_misses, batch_stats.l1_misses)
            and np.array_equal(exact_stats.walks, batch_stats.walks)
        )
        # Equivalence is a hard invariant, never a soft metric.
        assert identical, (
            f"{label}: batch engine diverged from exact "
            f"(l1m {batch_stats.l1_misses.tolist()} vs "
            f"{exact_stats.l1_misses.tolist()})"
        )
        speedup = exact_seconds / batch_seconds if batch_seconds else 0.0
        results[label] = {
            "lookups": lookups,
            "exact_seconds": exact_seconds,
            "batch_seconds": batch_seconds,
            "exact_ns_per_lookup": 1e9 * exact_seconds / max(lookups, 1),
            "batch_ns_per_lookup": 1e9 * batch_seconds / max(lookups, 1),
            "speedup": speedup,
            "identical": identical,
        }
        print(
            f"\n{label}: {lookups} lookups, exact {exact_seconds:.3f}s, "
            f"batch {batch_seconds:.3f}s -> {speedup:.2f}x"
        )
        # Million-vertex traces are hundreds of MB; drop each cell's
        # graph and traces before capturing the next.
        del events
        clear_dataset_cache()

    max_speedup = max(r["speedup"] for r in results.values())
    sweep_record(
        "translation_engine",
        {
            "mode": "quick" if QUICK else "full",
            "cpus": os.cpu_count() or 1,
            "target_speedup": TARGET_SPEEDUP,
            "target_met": max_speedup >= TARGET_SPEEDUP,
            "max_speedup": max_speedup,
            "cells": results,
        },
    )
    if not QUICK and not os.environ.get("CI"):
        # The >=10x contract is a local-bench gate (CI runners are too
        # variable to gate on raw timing); the recorded entry carries
        # the measured ratio either way.
        assert max_speedup >= TARGET_SPEEDUP, (
            f"expected a >={TARGET_SPEEDUP}x cell, best was "
            f"{max_speedup:.2f}x"
        )
