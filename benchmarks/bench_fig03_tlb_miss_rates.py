"""Fig. 3 — DTLB miss rates and page-walk rates, 4KB vs THP.

Paper bands (Haswell, billion-edge graphs): 12.6-47.6% DTLB miss at 4KB
(avg 26.3%), 4-26.7% with THP (avg 11.5%); most 4KB DTLB misses also
miss the STLB and walk.
"""

from repro.experiments import figures


def test_fig03_tlb_miss_rates(benchmark, runner, workloads, datasets, report):
    result = benchmark.pedantic(
        figures.fig03_tlb_miss_rates,
        args=(runner,),
        kwargs={"workloads": workloads, "datasets": datasets},
        rounds=1,
        iterations=1,
    )
    report(result)
    miss_4k = [row["dtlb_miss_4k"] for row in result.rows]
    miss_thp = [row["dtlb_miss_thp"] for row in result.rows]
    benchmark.extra_info["avg_dtlb_4k"] = round(sum(miss_4k) / len(miss_4k), 3)
    benchmark.extra_info["avg_dtlb_thp"] = round(
        sum(miss_thp) / len(miss_thp), 3
    )
    # Paper shape: page walks essentially disappear with THP, and the
    # DTLB miss rate drops.  The "under half" claim is a cross-dataset
    # average (kron's 32 huge property pages still thrash the 8-entry
    # huge L1, exactly as large graphs thrash the paper's 32-entry one),
    # so the strict bound only applies to the full dataset grid.
    assert all(row["walk_rate_thp"] < 0.05 for row in result.rows)
    assert sum(miss_thp) < sum(miss_4k)
    if len(result.rows) >= 4:
        # Paper: avg THP miss rate is ~44% of the 4KB rate.  The scaled
        # huge L1 (8 entries vs the paper's 32) keeps relatively more
        # DTLB misses alive here — harmlessly, since the STLB absorbs
        # them (walk_rate_thp ~ 0 above) — so the bound is looser.
        assert sum(miss_thp) < 0.7 * sum(miss_4k)
