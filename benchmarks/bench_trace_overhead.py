"""Observability-off overhead guard.

The tracer follows the MemSan discipline (docs/observability.md):
every emission site is a single ``tracer is not None`` test, so a
machine built without ``trace=`` runs the exact pre-obs hot path.
This benchmark bounds that claim empirically on a fig01-style cell
(BFS on kron-s, THP, fresh boot, SCALED profile):

- *off*: ``Machine(trace=None)`` — the guards all fail, no tracer
  object exists anywhere;
- *null*: the same machine with a :class:`~repro.obs.NullTracer` wired
  into every subsystem, so each guard passes and dispatches to a no-op
  ``emit``.

The null run is a strict superset of the off run's work (guard plus
dynamic dispatch at every hook site), so ``null/off - 1`` upper-bounds
the cost of carrying the hooks.  Both must stay within the 2% budget.
A *recording* tracer is deliberately not budgeted — building event
dicts costs real time, which is why tracing is opt-in.  Timings are
interleaved min-of-N so machine noise cancels rather than accumulates.
"""

from __future__ import annotations

import gc
import time

from repro.config import scaled
from repro.graph.datasets import load_dataset
from repro.machine.machine import Machine
from repro.mem.thp import ThpPolicy
from repro.obs import NullTracer
from repro.workloads.registry import create_workload

ROUNDS = 5
OVERHEAD_BUDGET = 0.02


def _run_once(graph, dataset_name: str, attach_null: bool) -> float:
    machine = Machine(
        scaled(),
        ThpPolicy.always(),
        trace=NullTracer() if attach_null else None,
    )
    workload = create_workload("bfs", graph)
    gc.collect()
    start = time.perf_counter()
    machine.run(workload, dataset=dataset_name)
    return time.perf_counter() - start


def test_tracer_off_hot_path_overhead():
    data = load_dataset("kron-s")
    # Warm-up: numpy allocators, dataset already loaded above.
    _run_once(data.graph, data.name, False)
    off = []
    null = []
    for round_index in range(ROUNDS):
        # Alternate which variant runs first so allocator/frequency
        # drift within a round does not bias one side systematically.
        pair = [
            (off, False),
            (null, True),
        ]
        if round_index % 2:
            pair.reverse()
        for bucket, attach_null in pair:
            bucket.append(_run_once(data.graph, data.name, attach_null))
    best_off = min(off)
    best_null = min(null)
    overhead = best_null / best_off - 1.0
    print(
        f"\nTracer dispatch overhead (fig01-style cell, min of {ROUNDS}):"
        f"\n  trace off (seed hot path) : {best_off * 1e3:8.1f} ms"
        f"\n  NullTracer attached       : {best_null * 1e3:8.1f} ms"
        f"\n  overhead                  : {overhead:+.2%}"
        f"  (budget {OVERHEAD_BUDGET:.0%})"
    )
    assert overhead < OVERHEAD_BUDGET, (
        f"idle tracer hooks cost {overhead:.2%} on the hot path "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )


if __name__ == "__main__":
    test_tracer_off_hot_path_overhead()
