"""Fig. 8 — THP under 50% non-movable fragmentation at low pressure
(WSS+3GB), natural versus optimized allocation order.

Paper: fragmentation starves greedy THP of huge regions while the 4KB
baseline is unaffected; property-first allocation keeps most of the
gain because the few available regions go to the property array.
"""

from repro.experiments import figures


def test_fig08_fragmentation(benchmark, runner, workloads, datasets, report):
    result = benchmark.pedantic(
        figures.fig08_fragmentation,
        args=(runner,),
        kwargs={"workloads": workloads, "datasets": datasets},
        rounds=1,
        iterations=1,
    )
    report(result)
    for row in result.rows:
        ideal_gain = row["thp_ideal"] - 1.0
        assert abs(row["base4k_fragmented"] - 1.0) < 0.05, row
        assert row["thp_natural"] - 1.0 < 0.5 * ideal_gain, row
        assert row["thp_property_first"] - 1.0 > 0.7 * ideal_gain, row
    benchmark.extra_info["cells"] = len(result.rows)
