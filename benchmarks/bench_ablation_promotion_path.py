"""Ablation (DESIGN.md) — THP allocation-path variants on a node whose
free memory is littered with movable pages: fault-time allocation with
direct compaction (Linux `defrag=always`), khugepaged-only promotion
(`enabled` without fault allocation), and a fault path with neither
compaction nor the daemon (`defrag=never`-ish).

Compaction — in the fault path or via khugepaged — is what turns
movable-littered regions back into huge pages; without it the property
array is stuck on 4KB pages despite plenty of nominally free memory.
"""

from repro.experiments import figures


def test_ablation_promotion_path(benchmark, runner, datasets, report):
    result = benchmark.pedantic(
        figures.ablation_promotion_path,
        args=(runner,),
        kwargs={"datasets": datasets},
        rounds=1,
        iterations=1,
    )
    report(result)
    for row in result.rows:
        # Direct compaction and khugepaged both rescue the property
        # array; the compaction-less path cannot.
        assert row["fault+compact_prop_huge"] > 0.9, row
        assert row["khugepaged-only_prop_huge"] > 0.9, row
        assert row["no-compact_prop_huge"] < row[
            "fault+compact_prop_huge"
        ], row
        assert row["fault+compact"] >= row["no-compact"] - 0.02, row
    benchmark.extra_info["rows"] = len(result.rows)
