"""Shared benchmark harness.

Each benchmark regenerates one paper table/figure via
:mod:`repro.experiments.figures` on the SCALED machine profile, prints
the resulting rows, and writes them to ``benchmarks/results/<id>.txt``
so the paper-vs-measured comparison in EXPERIMENTS.md can be refreshed.

All benchmarks share one :class:`ExperimentRunner` (cells are cached, so
figures that share baselines — e.g. the fresh-boot 4KB runs — are only
simulated once per session).

Environment knobs:

- ``REPRO_BENCH_WORKLOADS`` — comma list (default ``bfs,sssp,pagerank``),
- ``REPRO_BENCH_DATASETS`` — comma list (default the four Table 2
  inputs).  Set e.g. ``REPRO_BENCH_DATASETS=kron-s`` for a quick pass.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.experiments.figures import ALL_WORKLOADS, FigureResult
from repro.experiments.harness import ExperimentRunner
from repro.graph.datasets import EVALUATION_DATASETS
from repro.runstate.atomic import atomic_write_text

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_SWEEP_PATH = pathlib.Path(__file__).resolve().parents[1] / (
    "BENCH_sweep.json"
)


def record_sweep_entry(name: str, payload: dict) -> None:
    """Merge one benchmark's entry into ``BENCH_sweep.json`` at the repo
    root (read-modify-write keyed by bench name, atomic replace)."""
    data: dict = {}
    if BENCH_SWEEP_PATH.exists():
        try:
            data = json.loads(BENCH_SWEEP_PATH.read_text())
        except ValueError:
            data = {}
    data[name] = payload
    atomic_write_text(
        str(BENCH_SWEEP_PATH),
        json.dumps(data, indent=2, sort_keys=True) + "\n",
    )


@pytest.fixture
def sweep_record():
    """Persist a sweep-timing entry under the calling bench's name."""
    return record_sweep_entry


def _env_list(name: str, default: tuple[str, ...]) -> tuple[str, ...]:
    raw = os.environ.get(name)
    if not raw:
        return default
    return tuple(part.strip() for part in raw.split(",") if part.strip())


BENCH_WORKLOADS = _env_list("REPRO_BENCH_WORKLOADS", ALL_WORKLOADS)
BENCH_DATASETS = _env_list("REPRO_BENCH_DATASETS", EVALUATION_DATASETS)


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Session-wide runner: cells are cached across benchmarks."""
    return ExperimentRunner(datasets=BENCH_DATASETS)


@pytest.fixture(scope="session")
def workloads() -> tuple[str, ...]:
    return BENCH_WORKLOADS


@pytest.fixture(scope="session")
def datasets() -> tuple[str, ...]:
    return BENCH_DATASETS


@pytest.fixture
def report(capsys):
    """Print a figure's table (past pytest capture) and persist it."""

    def _report(result: FigureResult) -> FigureResult:
        with capsys.disabled():
            print()
            print(result.render())
        # Atomic save (REP007): an interrupted benchmark run never
        # leaves a torn results file behind.
        result.save(str(RESULTS_DIR))
        return result

    return _report
