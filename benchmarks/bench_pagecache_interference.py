"""§4.3 — single-use page-cache interference.

Paper: caching the input file on the application's NUMA node consumes
free memory exactly when huge pages are being allocated; staging it on
the remote node via tmpfs avoids the interference.
"""

from repro.experiments import figures


def test_pagecache_interference(benchmark, runner, datasets, report):
    result = benchmark.pedantic(
        figures.page_cache_interference,
        args=(runner,),
        kwargs={"datasets": datasets},
        rounds=1,
        iterations=1,
    )
    report(result)
    for row in result.rows:
        # Local caching must cost huge-page coverage (and never help).
        assert row["huge_frac_local"] <= row["huge_frac_remote"] + 1e-9, row
        assert row["thp_local_cache"] <= row["thp_tmpfs_remote"] + 0.02, row
    worst = min(
        row["huge_frac_local"] - row["huge_frac_remote"]
        for row in result.rows
    )
    benchmark.extra_info["worst_coverage_loss"] = round(worst, 3)
