"""Fig. 4 — per-data-structure access and page-walk shares.

Paper: memory accesses occur most frequently to the edge and property
arrays, but the edge array is sequential while the property array is
pointer-indirect — the property array dominates TLB misses.
"""

from repro.experiments import figures


def test_fig04_access_breakdown(
    benchmark, runner, workloads, datasets, report
):
    result = benchmark.pedantic(
        figures.fig04_access_breakdown,
        args=(runner,),
        kwargs={"workloads": workloads, "datasets": datasets},
        rounds=1,
        iterations=1,
    )
    report(result)
    prop_rows = [r for r in result.rows if r["array"] == "property_array"]
    edge_rows = [r for r in result.rows if r["array"] == "edge_array"]
    avg_prop_walk = sum(r["walk_share"] for r in prop_rows) / len(prop_rows)
    benchmark.extra_info["avg_property_walk_share"] = round(avg_prop_walk, 3)
    # Property array dominates walks despite comparable access share.
    assert avg_prop_walk > 0.6
    assert all(
        e["access_share"] > 0.2 for e in edge_rows
    ), "edge array must be heavily accessed"
