"""Fig. 10 — DBG preprocessing combined with selective THP usage under
low pressure (+3GB) and 50% fragmentation.

Paper: selective THPs at s=100% outperform DBG alone and system-wide
THPs for all configurations; s=50% outperforms them for most.
"""

from repro.experiments import figures


def test_fig10_selective_thp(benchmark, runner, workloads, datasets, report):
    result = benchmark.pedantic(
        figures.fig10_selective_thp,
        args=(runner,),
        kwargs={"workloads": workloads, "datasets": datasets},
        rounds=1,
        iterations=1,
    )
    report(result)
    wins_100 = 0
    wins_50 = 0
    for row in result.rows:
        competitor = max(row["dbg_4k"], row["thp"])
        # "wins" with a small tolerance: on the shortest-running BFS
        # cells the DBG preprocessing charge makes ties possible.
        if row["selective_100_dbg"] >= competitor - 0.02:
            wins_100 += 1
        if row["selective_50_dbg"] >= competitor - 0.02:
            wins_50 += 1
    benchmark.extra_info["s100_wins"] = f"{wins_100}/{len(result.rows)}"
    benchmark.extra_info["s50_wins"] = f"{wins_50}/{len(result.rows)}"
    # Paper: s=100% wins everywhere; s=50% wins for most configurations.
    assert wins_100 == len(result.rows)
    assert wins_50 >= len(result.rows) * 2 // 3
