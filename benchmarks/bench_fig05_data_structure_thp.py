"""Fig. 5 — speedup from applying THPs to individual data structures
(BFS, no memory pressure).

Paper: huge pages on the property array alone nearly match system-wide
THPs; vertex- or edge-array huge pages help far less.
"""

from repro.experiments import figures


def test_fig05_data_structure_thp(benchmark, runner, datasets, report):
    result = benchmark.pedantic(
        figures.fig05_data_structure_thp,
        args=(runner,),
        kwargs={"datasets": datasets},
        rounds=1,
        iterations=1,
    )
    report(result)
    for row in result.rows:
        prop_gain = row["madv-property"] - 1.0
        full_gain = row["thp"] - 1.0
        benchmark.extra_info[f"{row['dataset']}_property_vs_full"] = round(
            prop_gain / max(full_gain, 1e-9), 3
        )
        # Property-only captures most of the full-THP gain...
        assert prop_gain > 0.65 * full_gain, row
        # ...while single cold-structure advice captures much less.
        assert row["madv-vertex"] - 1.0 < 0.5 * full_gain, row
