"""Fault-injection overhead guard.

The fault subsystem must be free when unused: every injection site is a
single ``injector is not None`` test, so a machine with no fault plan
runs the exact pre-fault-subsystem hot path.  This benchmark bounds that
claim empirically on a fig01-style cell (BFS on kron-s, THP, fresh
boot, SCALED profile):

- *disabled*: no fault plan at all — the seed-equivalent hot path;
- *armed*: a plan whose every site is armed with probability 0.0, so
  ``FaultInjector.check`` runs (and draws) at each site but never fires.

The armed run is a strict superset of the disabled run's work, so
``armed/disabled - 1`` upper-bounds the cost of the guards themselves.
Both must stay within the 2% budget.  Timings are interleaved
min-of-N so machine noise cancels rather than accumulates.
"""

from __future__ import annotations

import gc
import time

from repro.config import scaled
from repro.faults import FaultPlan, FaultSite
from repro.graph.datasets import load_dataset
from repro.machine.machine import Machine
from repro.mem.thp import ThpPolicy
from repro.workloads.registry import create_workload

ROUNDS = 5
OVERHEAD_BUDGET = 0.02

ARMED_NOOP_PLAN = FaultPlan.parse(
    ",".join(f"{site.value}:0.0" for site in FaultSite)
)


def _run_once(graph, dataset_name: str, faults) -> float:
    machine = Machine(scaled(), ThpPolicy.always(), faults=faults)
    workload = create_workload("bfs", graph)
    gc.collect()
    start = time.perf_counter()
    machine.run(workload, dataset=dataset_name)
    return time.perf_counter() - start


def test_no_fault_hot_path_overhead():
    data = load_dataset("kron-s")
    # Warm-up: numpy allocators, dataset already loaded above.
    _run_once(data.graph, data.name, None)
    disabled = []
    armed = []
    for round_index in range(ROUNDS):
        # Alternate which variant runs first so allocator/frequency
        # drift within a round does not bias one side systematically.
        pair = [
            (disabled, None),
            (armed, ARMED_NOOP_PLAN),
        ]
        if round_index % 2:
            pair.reverse()
        for bucket, faults in pair:
            bucket.append(_run_once(data.graph, data.name, faults))
    best_disabled = min(disabled)
    best_armed = min(armed)
    overhead = best_armed / best_disabled - 1.0
    print(
        f"\nfault-injection overhead (fig01-style cell, min of {ROUNDS}):"
        f"\n  disabled (seed hot path) : {best_disabled * 1e3:8.1f} ms"
        f"\n  armed, never firing      : {best_armed * 1e3:8.1f} ms"
        f"\n  overhead                 : {overhead:+.2%}"
        f"  (budget {OVERHEAD_BUDGET:.0%})"
    )
    assert overhead < OVERHEAD_BUDGET, (
        f"armed-but-idle fault plan costs {overhead:.2%} on the hot path "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )


if __name__ == "__main__":
    test_no_fault_hot_path_overhead()
