"""Fig. 1 — THP speedup over 4KB pages: fresh boot vs realistic
memory pressure, for every application/dataset cell.

Paper: THP achieves significant gains on a fresh machine but provides
little benefit over 4KB pages under realistic pressure.
"""

from repro.experiments import figures
from repro.experiments.reporting import geomean


def test_fig01_thp_speedup(benchmark, runner, workloads, datasets, report):
    result = benchmark.pedantic(
        figures.fig01_thp_speedup,
        args=(runner,),
        kwargs={"workloads": workloads, "datasets": datasets},
        rounds=1,
        iterations=1,
    )
    report(result)
    fresh = [row["thp_fresh_speedup"] for row in result.rows]
    pressured = [row["thp_pressured_speedup"] for row in result.rows]
    benchmark.extra_info["geomean_fresh"] = round(geomean(fresh), 3)
    benchmark.extra_info["geomean_pressured"] = round(geomean(pressured), 3)
    # Paper shape: fresh THP clearly wins; pressured THP nearly doesn't.
    assert geomean(fresh) > 1.15
    assert geomean(pressured) - 1.0 < 0.4 * (geomean(fresh) - 1.0)
