"""Fig. 11 — sensitivity to the THP selectivity level: s = 0-100% of the
property array backed by huge pages, original versus DBG vertex order.

Paper: with DBG (or natural community structure) the gains saturate at
small s because the hot data occupies the array prefix; without
preprocessing (Kronecker's shuffled ids) gains grow roughly linearly
with s.
"""

from repro.experiments import figures


def test_fig11_selectivity_sweep(benchmark, runner, datasets, report):
    result = benchmark.pedantic(
        figures.fig11_selectivity_sweep,
        args=(runner,),
        kwargs={"datasets": datasets},
        rounds=1,
        iterations=1,
    )
    report(result)

    def series(dataset, reorder):
        return {
            row["s"]: row["speedup"]
            for row in result.rows
            if row["dataset"] == dataset and row["reorder"] == reorder
        }

    for dataset in datasets:
        dbg = series(dataset, "dbg")
        # DBG concentrates the hot data in the prefix: s=20% captures a
        # disproportionate share of the s=100% gain.  The bar is highest
        # for kron (no natural structure to preserve); community graphs
        # keep a linear residual from their block-local traffic.
        threshold = 0.6 if dataset == "kron-s" else 0.4
        assert (
            dbg[0.2] - dbg[0.0] > threshold * (dbg[1.0] - dbg[0.0])
        ), dataset
    if "kron-s" in datasets:
        orig = series("kron-s", "original")
        # Shuffled ids: s=20% captures far less of the full gain.
        assert orig[0.2] - 1.0 < 0.5 * (orig[1.0] - 1.0)
    budgets = [
        row["huge_frac_of_footprint"]
        for row in result.rows
        if row["s"] == 0.2
    ]
    benchmark.extra_info["budget_at_s20"] = round(
        sum(budgets) / len(budgets), 4
    )
