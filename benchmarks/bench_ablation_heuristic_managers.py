"""Ablation (§6 related work) — heuristic kernel managers versus the
paper's programmer-guided selective THP, under fragmentation.

- Ingens-style utilization promotion is application-unaware: it promotes
  in address order, spending scarce regions on the CSR arrays before the
  property array (if it ever reaches it).
- HawkEye-style hotness promotion converges on the property array — but
  only after paying run-time profiling and promotion copies.
- The online autotuner (the paper's future-work runtime) adds the
  application knowledge of *which* arrays can be hot, promoting only the
  per-vertex arrays.
- Programmer-guided selective THP has the huge pages in place from
  initialization and needs none of the run-time machinery.
"""

from repro.experiments import figures
from repro.experiments.harness import ExperimentRunner
from repro.experiments.policies import POLICIES, selective_policy
from repro.experiments.scenarios import fragmented
from repro.policy.registry import get_policy


def test_ablation_heuristic_managers(benchmark, runner, datasets, report):
    scenario = fragmented(0.5)

    def build():
        result = figures.FigureResult(
            "abl-managers",
            "Heuristic managers vs programmer-guided selective THP "
            f"({scenario.name}, BFS)",
        )
        for dataset in datasets:
            base = runner.run_cell(
                "bfs", dataset, POLICIES["base4k"], scenario
            )
            row = {"dataset": dataset}
            cells = {
                "thp_greedy": POLICIES["thp"],
                "ingens_like": get_policy("ingens"),
                "hawkeye_like": get_policy("hawkeye"),
                "autotuner": get_policy("autotuner"),
                "selective_s20": selective_policy(
                    0.2, reorder=figures.recommended_reorder(runner, dataset)
                ),
            }
            for label, policy in cells.items():
                run = runner.run_cell("bfs", dataset, policy, scenario)
                row[label] = run.speedup_over(base)
                if label in ("ingens_like", "hawkeye_like", "autotuner"):
                    row[f"{label}_promos"] = run.manager_promotions
            result.rows.append(row)
        return result

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    report(result)
    for row in result.rows:
        # Hotness-aware promotion beats utilization-order promotion.
        assert row["hawkeye_like"] >= row["ingens_like"] - 0.02, row
        # The app-aware autotuner does at least as well as HawkEye with
        # no more promotions.
        assert row["autotuner"] >= row["hawkeye_like"] - 0.05, row
        assert row["autotuner_promos"] <= row["hawkeye_like_promos"], row
        # Programmer guidance clearly beats the greedy kernel policy
        # (the paper's claim).  The future-work autotuner may beat the
        # *static* s=20% plan — it skips preprocessing and sizes its
        # budget from observed coverage — which is exactly why the paper
        # calls for automated runtimes.
        assert row["selective_s20"] > row["thp_greedy"] + 0.05, row
