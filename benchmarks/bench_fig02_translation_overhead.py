"""Fig. 2 — address translation share of the 4KB baseline's runtime.

Paper: graph workloads spend a significant fraction of execution on
address translation when only base pages are used.
"""

from repro.experiments import figures


def test_fig02_translation_overhead(
    benchmark, runner, workloads, datasets, report
):
    result = benchmark.pedantic(
        figures.fig02_translation_overhead,
        args=(runner,),
        kwargs={"workloads": workloads, "datasets": datasets},
        rounds=1,
        iterations=1,
    )
    report(result)
    fractions = [row["translation_fraction"] for row in result.rows]
    benchmark.extra_info["max_fraction"] = round(max(fractions), 3)
    # Translation is a first-order cost for at least the skewed inputs.
    assert max(fractions) > 0.15
