"""Parallel sweep engine scaling: serial vs multi-process execution of
a reference figure batch, with output byte-identity verification.

The batch is fig07 (allocation order under pressure) over two workloads,
which yields a handful of independent multi-second cells — exactly the
shape the pool is built for.  The speedup threshold (>=1.8x at 4
workers) is enforced only on hosts with at least 2 CPUs and outside CI:
the CI ``parallel-smoke`` job runs this file as a correctness smoke
test, and a single-core runner cannot demonstrate scaling.

Environment knobs: ``REPRO_BENCH_SCALING_WORKERS`` (default 4) and
``REPRO_BENCH_SCALING_DATASETS`` (default ``kron-s`` — cells around a
second each, so the pool's fork/queue overhead is amortized; CI smoke
passes ``test-small`` for speed).
"""

from __future__ import annotations

import os
import time

from repro.experiments import figures
from repro.experiments.harness import ExperimentRunner
from repro.experiments.reporting import geomean
from repro.parallel import resolve_workers

SCALING_WORKLOADS = ("bfs", "pagerank")
SCALING_DATASETS = tuple(
    part.strip()
    for part in os.environ.get(
        "REPRO_BENCH_SCALING_DATASETS", "kron-s"
    ).split(",")
    if part.strip()
)
SCALING_WORKERS = int(os.environ.get("REPRO_BENCH_SCALING_WORKERS", "4"))
SPEEDUP_THRESHOLD = 1.8


def run_batch(runner: ExperimentRunner):
    return figures.fig07_pressure_alloc_order(
        runner, workloads=SCALING_WORKLOADS, datasets=SCALING_DATASETS
    )


def test_parallel_scaling(sweep_record):
    # Serial reference, timing each simulated cell individually.
    serial = ExperimentRunner(workers=1)
    durations: list[float] = []
    original = serial._execute_cell

    def timed(*args, **kwargs):
        start = time.perf_counter()
        try:
            return original(*args, **kwargs)
        finally:
            durations.append(time.perf_counter() - start)

    serial._execute_cell = timed
    start = time.perf_counter()
    reference = run_batch(serial)
    serial_seconds = time.perf_counter() - start

    parallel = ExperimentRunner(workers=SCALING_WORKERS)
    start = time.perf_counter()
    result = run_batch(parallel)
    parallel_seconds = time.perf_counter() - start

    # Determinism before speed: the parallel batch must be
    # byte-identical to the serial one.
    assert result.to_json() == reference.to_json()

    speedup = (
        serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0
    )
    effective_workers = resolve_workers(SCALING_WORKERS)
    # A run clamped to one worker never exercised the pool: its
    # "speedup" is serial-vs-serial noise, and downstream consumers of
    # BENCH_sweep.json must not read it as a scaling measurement.
    valid_scaling = effective_workers > 1
    sweep_record(
        "parallel_scaling",
        {
            "workers": SCALING_WORKERS,
            "workers_effective": effective_workers,
            "clamped": effective_workers != SCALING_WORKERS,
            "valid_scaling": valid_scaling,
            "cells_simulated": len(durations),
            "geomean_cell_seconds": geomean(durations) if durations else None,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
            "cpus": os.cpu_count() or 1,
        },
    )
    if not valid_scaling:
        print(
            "NOTE: pool clamped to 1 effective worker on this host -- "
            "speedup recorded as serial-vs-serial noise, "
            "valid_scaling=false"
        )

    cpus = os.cpu_count() or 1
    if effective_workers == 1:
        # The pool clamped to the serial fallback (1 CPU): there is no
        # scaling to measure, only the byte-identity check above.  A
        # clamped run is *labeled* (valid_scaling=false, NOTE below) —
        # never gated on timing, which is pure noise at 1 worker.
        pass
    elif cpus >= 2 and not os.environ.get("CI"):
        # The scaling guard is a local-bench contract, not a CI one: CI
        # runners are too variable to gate on.
        assert speedup >= SPEEDUP_THRESHOLD, (
            f"expected >={SPEEDUP_THRESHOLD}x at {SCALING_WORKERS} workers "
            f"on {cpus} CPUs, measured {speedup:.2f}x"
        )
