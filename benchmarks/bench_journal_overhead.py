"""Run-journal overhead guard.

Journaling must be cheap enough to leave on for every sweep: a
journaled cell adds one ``running`` append and one outcome append (each
flush + fsync) around an otherwise identical simulation, and the
journal-off path is a pair of ``is not None`` tests.  This benchmark
bounds the *journaled* path empirically on a fig01-style cell (BFS on
kron-s, THP, fresh boot, SCALED profile):

- *off*: ``ExperimentRunner`` with no journal — the seed-equivalent
  hot path;
- *journaled*: the same runner writing a fresh journal per round (a
  reused journal would short-circuit nothing — resume is off — but a
  fresh file keeps append costs identical across rounds).

The cell cache is cleared before every measured run so each run
simulates for real; the prepared-graph cache is deliberately kept warm
so graph loading does not drown the comparison.  Timings are
interleaved min-of-N so machine noise cancels rather than accumulates.
"""

from __future__ import annotations

import gc
import pathlib
import tempfile
import time
from typing import Optional

from repro.experiments.harness import ExperimentRunner
from repro.experiments.policies import POLICIES
from repro.experiments.scenarios import SCENARIOS
from repro.runstate import RunJournal

ROUNDS = 5
OVERHEAD_BUDGET = 0.02


def _run_once(runner: ExperimentRunner, journal_path: Optional[str]) -> float:
    runner._cache.clear()
    runner.failures.clear()
    runner.journal = (
        RunJournal(journal_path) if journal_path is not None else None
    )
    gc.collect()
    start = time.perf_counter()
    runner.run_cell("bfs", "kron-s", POLICIES["thp"], SCENARIOS["fresh"])
    return time.perf_counter() - start


def test_journal_overhead():
    runner = ExperimentRunner()
    # Warm-up: loads and caches the prepared graph, warms allocators.
    _run_once(runner, None)
    with tempfile.TemporaryDirectory() as tmpdir:
        journals = (
            str(pathlib.Path(tmpdir) / f"round{i}.jsonl")
            for i in range(2 * ROUNDS)
        )
        off = []
        journaled = []
        for round_index in range(ROUNDS):
            # Alternate which variant runs first so allocator/frequency
            # drift within a round does not bias one side systematically.
            pair = [
                (off, None),
                (journaled, next(journals)),
            ]
            if round_index % 2:
                pair.reverse()
            for bucket, journal_path in pair:
                bucket.append(_run_once(runner, journal_path))
    best_off = min(off)
    best_journaled = min(journaled)
    overhead = best_journaled / best_off - 1.0
    print(
        f"\nrun-journal overhead (fig01-style cell, min of {ROUNDS}):"
        f"\n  journal off (seed hot path) : {best_off * 1e3:8.1f} ms"
        f"\n  journaled (2 fsync'd appends): {best_journaled * 1e3:8.1f} ms"
        f"\n  overhead                    : {overhead:+.2%}"
        f"  (budget {OVERHEAD_BUDGET:.0%})"
    )
    assert overhead < OVERHEAD_BUDGET, (
        f"journaling costs {overhead:.2%} per cell "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )


if __name__ == "__main__":
    test_journal_overhead()
