"""ConcSan runtime budget + LockSan overhead guards.

Two claims the PR 7 analyzer makes about its own cost, bounded
empirically alongside the existing <2% MemSan dispatch guard
(``bench_sanitizer_overhead.py``):

- **ConcSan is cheap enough to gate CI.**  The full analyzer
  (REP001–REP011, including the interprocedural project model built
  twice — once for REP009, once for REP010) over the whole ``repro``
  package must finish well inside a CI-friendly budget (<10 s).
- **LockSan-on is affordable for the whole suite.**  CI runs the test
  suite once with ``REPRO_LOCKSAN=1``.  Only objects that call
  ``watch()`` (the supervisor) pay per-access cost; everything else
  pays a single module-level enablement check per lock construction.
  The guard drives the *worst realistic* load — full supervisor
  lifecycles (real queues, real monitor thread) — with LockSan off and
  on, interleaved min-of-N, and bounds the delta at 5%.  The watched
  attribute accesses are real bookkeeping, but lifecycle work (pipe
  setup, thread start/join, queue teardown) dominates, exactly as it
  does in the serve tests.
"""

from __future__ import annotations

import time

from repro.analysis.lint import default_target, lint_paths
from repro.analysis.locksan import set_locksan
from repro.serve.supervisor import WorkerSupervisor

CONCSAN_BUDGET_SECONDS = 10.0
LOCKSAN_OVERHEAD_BUDGET = 0.05
ROUNDS = 3
CYCLES_PER_ROUND = 8


def test_concsan_whole_repo_under_budget():
    # Warm-up parse so interpreter/bytecode-cache effects don't count.
    lint_paths([default_target()], rules=["REP001"])
    start = time.perf_counter()
    findings, errors = lint_paths([default_target()])
    elapsed = time.perf_counter() - start
    print(
        f"\nConcSan whole-repo run: {elapsed:.2f}s "
        f"({len(findings)} finding(s), {len(errors)} error(s); "
        f"budget {CONCSAN_BUDGET_SECONDS:.0f}s)"
    )
    assert errors == []
    assert elapsed < CONCSAN_BUDGET_SECONDS, (
        f"full analyzer took {elapsed:.2f}s "
        f"(budget {CONCSAN_BUDGET_SECONDS:.0f}s)"
    )


def _lifecycle_cycle() -> None:
    """One suite-representative supervisor lifecycle: construct (two
    real multiprocessing queues), start the monitor thread, queue a few
    jobs, stop."""
    sup = WorkerSupervisor(
        settings={},
        workers=0,
        completion=lambda *args: None,
        listener=lambda name, **fields: None,
    )
    sup.start()
    for index in range(4):
        sup.submit(f"job-{index}", {"workload": "bfs", "dataset": "d"})
    sup.stop()


def _run_cycles(count: int) -> float:
    start = time.perf_counter()
    for _ in range(count):
        _lifecycle_cycle()
    return time.perf_counter() - start


def test_locksan_on_suite_overhead():
    _run_cycles(2)  # warm-up: queue/thread machinery
    off: list[float] = []
    on: list[float] = []
    try:
        for round_index in range(ROUNDS):
            # Alternate order so drift within a round cancels.
            pair = [(off, False), (on, True)]
            if round_index % 2:
                pair.reverse()
            for bucket, enabled in pair:
                set_locksan(enabled)
                bucket.append(_run_cycles(CYCLES_PER_ROUND))
    finally:
        set_locksan(None)
    best_off = min(off)
    best_on = min(on)
    overhead = best_on / best_off - 1.0
    print(
        f"\nLockSan-on serve-lifecycle overhead (min of {ROUNDS}):"
        f"\n  REPRO_LOCKSAN off : {best_off * 1e3:8.1f} ms"
        f"\n  REPRO_LOCKSAN on  : {best_on * 1e3:8.1f} ms"
        f"\n  overhead          : {overhead:+.2%}"
        f"  (budget {LOCKSAN_OVERHEAD_BUDGET:.0%})"
    )
    assert overhead < LOCKSAN_OVERHEAD_BUDGET, (
        f"LockSan-on costs {overhead:.2%} on the serve lifecycle "
        f"(budget {LOCKSAN_OVERHEAD_BUDGET:.0%})"
    )


if __name__ == "__main__":
    test_concsan_whole_repo_under_budget()
    test_locksan_on_suite_overhead()
