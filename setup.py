"""Setuptools shim.

The evaluation environment is offline and lacks the ``wheel`` package, so
PEP 517 editable installs fail; ``python setup.py develop`` (or
``pip install -e . --no-build-isolation``) installs via this shim instead.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
