"""repro — a simulated-substrate reproduction of
"The Implications of Page Size Management on Graph Analytics"
(Manocha et al., IISWC 2022).

The package builds, from scratch, every system the paper's
characterization depends on — physical memory with fragmentation and
compaction, a Linux-style transparent-huge-page policy, a two-level TLB
model, instrumented push-based graph kernels, DBG reordering — and the
paper's contribution on top: application-aware selective huge-page
management.

Quickstart::

    from repro import Machine, ThpPolicy, load_dataset, create_workload

    data = load_dataset("kron-s")
    machine = Machine(thp=ThpPolicy.always())
    metrics = machine.run(create_workload("bfs", data.graph),
                          dataset=data.name)
    print(metrics.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results; the ``benchmarks/`` directory regenerates
every table and figure.
"""

from .config import (
    MachineConfig,
    PROFILES,
    get_profile,
    paper_x86,
    scaled,
    tiny,
)
from .core import (
    AdvisorReport,
    PageSizeAdvisor,
    PlacementPlan,
    huge_page_budget,
    selective_property_plan,
)
from .errors import (
    AddressError,
    AllocationError,
    CellBudgetExceededError,
    ConfigError,
    DatasetError,
    ExperimentError,
    GraphError,
    InjectedFaultError,
    JournalError,
    OutOfMemoryError,
    ReproError,
    WatchdogExpiredError,
    WorkloadError,
)
from .faults import FaultInjector, FaultPlan, FaultSite, FaultSpec
from .graph import (
    CsrGraph,
    DATASETS,
    apply_order,
    dbg_order,
    load_dataset,
    power_law_graph,
    rmat_graph,
)
from .machine import Machine, RunMetrics
from .mem import ThpMode, ThpPolicy
from .runstate import CellWatchdog, RunJournal, spec_fingerprint
from .workloads import (
    AllocationOrder,
    Bfs,
    PageRank,
    Sssp,
    create_workload,
)

__version__ = "1.0.0"

__all__ = [
    "AddressError",
    "AdvisorReport",
    "AllocationError",
    "AllocationOrder",
    "Bfs",
    "CellBudgetExceededError",
    "CellWatchdog",
    "ConfigError",
    "CsrGraph",
    "DATASETS",
    "DatasetError",
    "ExperimentError",
    "FaultInjector",
    "FaultPlan",
    "FaultSite",
    "FaultSpec",
    "GraphError",
    "InjectedFaultError",
    "JournalError",
    "Machine",
    "MachineConfig",
    "OutOfMemoryError",
    "PROFILES",
    "PageRank",
    "PageSizeAdvisor",
    "PlacementPlan",
    "ReproError",
    "RunJournal",
    "RunMetrics",
    "Sssp",
    "ThpMode",
    "ThpPolicy",
    "WatchdogExpiredError",
    "WorkloadError",
    "apply_order",
    "create_workload",
    "dbg_order",
    "get_profile",
    "huge_page_budget",
    "load_dataset",
    "paper_x86",
    "power_law_graph",
    "rmat_graph",
    "scaled",
    "selective_property_plan",
    "spec_fingerprint",
    "tiny",
    "__version__",
]
