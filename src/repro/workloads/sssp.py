"""Single-Source Shortest Paths (paper §3.2).

Push-based frontier Bellman-Ford: the worklist holds vertices whose
distance improved in the previous round; processing a vertex relaxes all
outgoing edges, reading the values array per edge and conditionally
updating the destination's distance in the property array.

SSSP touches one more large array than BFS/PR (the values array, read
once per edge in lockstep with the edge array), which is why its
footprints in Table 2 are ~1.5x the BFS footprints.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..errors import WorkloadError
from ..graph.csr import CsrGraph
from ..tlb.trace import AccessStream
from .base import (
    ARRAY_EDGE,
    ARRAY_PROPERTY,
    ARRAY_VALUES,
    ARRAY_VERTEX,
    Workload,
    default_root,
)

INFINITY = np.iinfo(np.int64).max
"""Property value for an unreached vertex."""


class Sssp(Workload):
    """Shortest weighted distances from a root vertex.

    Requires a weighted graph (a values array).  The result equals
    Dijkstra's output for non-negative weights; the frontier formulation
    may relax an edge more than once, exactly like the paper's push-based
    reference implementation.
    """

    name = "sssp"

    def __init__(self, graph: CsrGraph, root: Optional[int] = None) -> None:
        super().__init__(graph)
        if graph.weights is None:
            raise WorkloadError("SSSP needs a weighted graph (values array)")
        self.root = default_root(graph) if root is None else root
        self.distances = np.full(graph.num_vertices, INFINITY, dtype=np.int64)
        self.iterations = 0

    def array_ids(self) -> tuple[int, ...]:
        return (ARRAY_VERTEX, ARRAY_EDGE, ARRAY_VALUES, ARRAY_PROPERTY)

    def run(self) -> Iterator[AccessStream]:
        graph = self.graph
        weights = graph.weights
        distances = self.distances
        distances[:] = INFINITY
        distances[self.root] = 0
        frontier = np.array([self.root], dtype=np.int64)
        self.iterations = 0
        while frontier.size:
            edge_positions, targets = self.gather_frontier_edges(frontier)
            yield self.edge_phase_stream(
                frontier,
                edge_positions,
                targets,
                with_values=True,
                with_source_property=True,
            )
            self.iterations += 1
            degrees = graph.indptr[frontier + 1] - graph.indptr[frontier]
            sources = np.repeat(frontier, degrees)
            candidates = distances[sources] + weights[edge_positions]
            before = distances[targets]
            np.minimum.at(distances, targets, candidates)
            improved = targets[distances[targets] < before]
            frontier = (
                np.unique(improved)
                if improved.size
                else np.empty(0, dtype=np.int64)
            )

    def result(self) -> np.ndarray:
        """Weighted distances per vertex (``INFINITY`` if unreachable)."""
        return self.distances
