"""Workload registry: name-based construction for the harness and CLI."""

from __future__ import annotations

from typing import Callable

from ..errors import WorkloadError
from ..graph.csr import CsrGraph
from .base import Workload
from .bfs import Bfs
from .cc import ConnectedComponents
from .pagerank import PageRank
from .sssp import Sssp

WORKLOADS: dict[str, Callable[..., Workload]] = {
    "bfs": Bfs,
    "sssp": Sssp,
    "pagerank": PageRank,
    "cc": ConnectedComponents,
}
"""Name -> workload factory (the paper's three applications plus the
BFS-derived Connected Components extension)."""

PAPER_WORKLOAD_NAMES = {
    "bfs": "Breadth First Search (BFS)",
    "sssp": "Single Source Shortest Paths (SSSP)",
    "pagerank": "PageRank (PR)",
}
"""Registry name -> the paper's Table 2 label."""


def workload_names() -> tuple[str, ...]:
    """All registered workload names."""
    return tuple(WORKLOADS)


def create_workload(name: str, graph: CsrGraph, **kwargs: object) -> Workload:
    """Instantiate a workload by registry name.

    Raises:
        WorkloadError: if the name is unknown.
    """
    factory = WORKLOADS.get(name.lower())
    if factory is None:
        known = ", ".join(sorted(WORKLOADS))
        raise WorkloadError(f"unknown workload {name!r}; known: {known}")
    return factory(graph, **kwargs)


def workload_needs_weights(name: str) -> bool:
    """Whether the workload requires a values array (SSSP does)."""
    return name.lower() == "sssp"
