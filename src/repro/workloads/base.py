"""Workload interface and the shared access-trace builder.

A workload is an iterator of :class:`~repro.tlb.trace.AccessStream`
objects, one per algorithm iteration (frontier/worklist pass), plus the
metadata the machine needs to lay its arrays out in simulated virtual
memory.

The trace builder reproduces the access interleaving of the paper's
Fig. 4 inner loops: for each worklist vertex ``u`` the kernel reads
``vertex_array[u]`` and ``vertex_array[u+1]``, then for each of ``u``'s
edges reads the edge array entry (and the values array entry for
weighted algorithms) and performs the pointer-indirect property access
``prop_array[edge_array[e]]`` — the access highlighted gray in Fig. 4
that the paper identifies as the dominant source of TLB misses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Optional

import numpy as np

from ..graph.csr import CsrGraph, concat_ranges
from ..tlb.trace import AccessStream, merge_streams

ARRAY_VERTEX = 0
"""CSR vertex array (``indptr``): sequential, small."""

ARRAY_EDGE = 1
"""CSR edge array (``indices``): sequential within a vertex, large."""

ARRAY_VALUES = 2
"""CSR values array (edge weights): parallels the edge array (SSSP)."""

ARRAY_PROPERTY = 3
"""Per-vertex property array: pointer-indirect, the TLB-miss hot spot."""

ARRAY_RANK = 4
"""PageRank's per-vertex source-rank array (read sequentially)."""

ARRAY_NAMES = {
    ARRAY_VERTEX: "vertex_array",
    ARRAY_EDGE: "edge_array",
    ARRAY_VALUES: "values_array",
    ARRAY_PROPERTY: "property_array",
    ARRAY_RANK: "rank_array",
}
"""Array id -> report name."""


class Workload(ABC):
    """A graph kernel that can be simulated on a machine.

    Subclasses define the data structures they map (:meth:`array_ids`
    and element counts via :meth:`array_elements`) and generate their
    access streams in :meth:`run`.
    """

    name: str = "workload"

    def __init__(self, graph: CsrGraph) -> None:
        self.graph = graph

    @abstractmethod
    def array_ids(self) -> tuple[int, ...]:
        """The data structures this kernel uses, in natural allocation
        order (the order the initialization code allocates them; the
        property array comes last, as in the paper's reference code)."""

    def array_elements(self, array_id: int) -> int:
        """Number of elements in the given array."""
        graph = self.graph
        if array_id == ARRAY_VERTEX:
            return graph.num_vertices + 1
        if array_id == ARRAY_EDGE:
            return graph.num_edges
        if array_id == ARRAY_VALUES:
            return graph.num_edges
        if array_id in (ARRAY_PROPERTY, ARRAY_RANK):
            return graph.num_vertices
        raise ValueError(f"unknown array id {array_id}")

    @abstractmethod
    def run(self) -> Iterator[AccessStream]:
        """Execute the kernel, yielding one access stream per iteration.

        Implementations must also compute the *semantic* result so
        correctness can be checked against reference oracles."""

    @abstractmethod
    def result(self) -> np.ndarray:
        """The final property array (after :meth:`run` is exhausted)."""

    # ------------------------------------------------------------------
    # Shared trace construction
    # ------------------------------------------------------------------

    def edge_phase_stream(
        self,
        frontier: np.ndarray,
        edge_positions: np.ndarray,
        property_targets: np.ndarray,
        with_values: bool = False,
        with_source_property: bool = False,
        source_rank_reads: bool = False,
    ) -> AccessStream:
        """Build one frontier pass's interleaved access stream.

        Args:
            frontier: worklist vertex ids, in processing order.
            edge_positions: edge-array indices of every processed edge,
                grouped by frontier vertex (``concat_ranges`` output).
            property_targets: property-array index accessed per edge
                (the indirect ``edge_array[e]`` destination).
            with_values: also read the values array per edge (SSSP).
            with_source_property: read ``prop[u]`` once per worklist
                vertex before its edges (SSSP reads the source distance).
            source_rank_reads: read ``rank[u]`` once per worklist vertex
                (PageRank's contribution fetch).

        Returns:
            The merged, program-ordered access stream.
        """
        graph = self.graph
        degrees = np.diff(graph.indptr)[frontier]
        num_edges = int(edge_positions.size)
        per_edge = 3 if with_values else 2

        # Per-edge accesses occupy integer positions; accesses belonging
        # to vertex u are woven in just before u's first edge using
        # fractional positions.
        edge_pos = (
            np.arange(num_edges, dtype=np.float64) * per_edge
        )
        parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = [
            (
                edge_pos,
                np.full(num_edges, ARRAY_EDGE, dtype=np.uint8),
                edge_positions,
            ),
            (
                edge_pos + (per_edge - 1),
                np.full(num_edges, ARRAY_PROPERTY, dtype=np.uint8),
                property_targets,
            ),
        ]
        if with_values:
            parts.append(
                (
                    edge_pos + 1,
                    np.full(num_edges, ARRAY_VALUES, dtype=np.uint8),
                    edge_positions,
                )
            )

        # Vertex-array reads: indptr[u] and indptr[u+1] per worklist
        # vertex, placed before that vertex's edge burst.
        edge_offsets = np.zeros(frontier.size, dtype=np.float64)
        np.cumsum(degrees[:-1], out=edge_offsets[1:])
        base = edge_offsets * per_edge
        vertex_ids = frontier.astype(np.int64)
        parts.append(
            (
                base - 0.9,
                np.full(frontier.size, ARRAY_VERTEX, dtype=np.uint8),
                vertex_ids,
            )
        )
        parts.append(
            (
                base - 0.8,
                np.full(frontier.size, ARRAY_VERTEX, dtype=np.uint8),
                vertex_ids + 1,
            )
        )
        if with_source_property:
            parts.append(
                (
                    base - 0.5,
                    np.full(frontier.size, ARRAY_PROPERTY, dtype=np.uint8),
                    vertex_ids,
                )
            )
        if source_rank_reads:
            parts.append(
                (
                    base - 0.5,
                    np.full(frontier.size, ARRAY_RANK, dtype=np.uint8),
                    vertex_ids,
                )
            )
        return merge_streams(parts)

    def gather_frontier_edges(
        self, frontier: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Edge-array positions and destinations for a worklist.

        Returns ``(edge_positions, destinations)`` grouped by frontier
        vertex in order.
        """
        graph = self.graph
        starts = graph.indptr[frontier]
        counts = graph.indptr[frontier + 1] - starts
        edge_positions = concat_ranges(starts, counts)
        return edge_positions, graph.indices[edge_positions]

    def sequential_pass_stream(
        self, array_id: int, count: Optional[int] = None
    ) -> AccessStream:
        """A sequential sweep over one array (initialization passes,
        PageRank's end-of-iteration rank swap)."""
        if count is None:
            count = self.array_elements(array_id)
        return AccessStream(
            np.full(count, array_id, dtype=np.uint8),
            np.arange(count, dtype=np.int64),
        )


def default_root(graph: CsrGraph) -> int:
    """Deterministic traversal root: the highest out-degree vertex.

    The paper picks roots that reach most of the network; the biggest
    hub is a reproducible stand-in.
    """
    return int(np.argmax(np.diff(graph.indptr)))
