"""Connected Components (extension workload).

§3.2 of the paper notes BFS "forms the basic building block of many
other graph applications such as ... Connected Components".  This module
implements CC as a push-based label-propagation kernel over the
symmetrized network — the standard formulation in graph suites (GAPBS's
``cc``), with the same data-structure shape the paper studies: CSR
arrays read sequentially, per-vertex labels updated pointer-indirectly
in the property array.

Because propagation must flow both ways, the kernel builds the
symmetrized edge array (forward plus reverse edges) during
initialization; the traced footprint reflects that doubled edge array,
just as a real CC implementation's would.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..graph.csr import CsrGraph
from ..tlb.trace import AccessStream
from .base import (
    ARRAY_EDGE,
    ARRAY_PROPERTY,
    ARRAY_VERTEX,
    Workload,
)


def symmetrize(graph: CsrGraph) -> CsrGraph:
    """The undirected view: every edge plus its reverse."""
    src, dst = graph.edge_endpoints()
    return CsrGraph.from_edges(
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
        graph.num_vertices,
    )


class ConnectedComponents(Workload):
    """Label propagation: every vertex adopts the minimum label among
    itself and its (undirected) neighbors until no label changes.

    The result assigns each vertex the minimum original vertex id in its
    weakly connected component.
    """

    name = "cc"

    def __init__(self, graph: CsrGraph) -> None:
        super().__init__(graph)
        self.sym = symmetrize(graph)
        self.labels = np.arange(graph.num_vertices, dtype=np.int64)
        self.iterations = 0

    def array_ids(self) -> tuple[int, ...]:
        return (ARRAY_VERTEX, ARRAY_EDGE, ARRAY_PROPERTY)

    def array_elements(self, array_id: int) -> int:
        # The traced arrays belong to the symmetrized CSR.
        if array_id == ARRAY_EDGE:
            return self.sym.num_edges
        if array_id == ARRAY_VERTEX:
            return self.sym.num_vertices + 1
        return super().array_elements(array_id)

    def run(self) -> Iterator[AccessStream]:
        sym = self.sym
        labels = self.labels
        labels[:] = np.arange(sym.num_vertices, dtype=np.int64)
        frontier = np.arange(sym.num_vertices, dtype=np.int64)
        self.iterations = 0
        while frontier.size:
            starts = sym.indptr[frontier]
            counts = sym.indptr[frontier + 1] - starts
            from ..graph.csr import concat_ranges

            edge_positions = concat_ranges(starts, counts)
            targets = sym.indices[edge_positions]
            yield self.edge_phase_stream(
                frontier,
                edge_positions,
                targets,
                with_source_property=True,
            )
            self.iterations += 1
            sources = np.repeat(frontier, counts)
            candidates = labels[sources]
            before = labels[targets]
            np.minimum.at(labels, targets, candidates)
            improved = targets[labels[targets] < before]
            frontier = (
                np.unique(improved)
                if improved.size
                else np.empty(0, dtype=np.int64)
            )

    def result(self) -> np.ndarray:
        """Component label per vertex (min vertex id in the component)."""
        return self.labels

    def num_components(self) -> int:
        """Number of weakly connected components found."""
        return int(np.unique(self.labels).size)
