"""Memory layout: array specs and allocation order (paper §4.3, Fig. 7).

The order in which a graph application allocates (and first touches) its
arrays decides which data structures win the race for scarce huge pages.
The paper contrasts:

- **natural order** — the reference implementation's order: CSR arrays
  are allocated while the input is parsed, the property array last;
- **optimized order** — "optimized for graph analytics": the property
  array is allocated *first*, so the performance-critical structure is
  prioritized for huge page allocation.

:class:`MemoryLayout` captures both, plus the element size used to map
logical element indices to simulated virtual addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import WorkloadError
from .base import ARRAY_NAMES, ARRAY_PROPERTY, ARRAY_RANK, Workload

ELEMENT_BYTES = 8
"""Simulated bytes per array element (8-byte records, as in the paper's
inputs)."""


class AllocationOrder(Enum):
    """Which array gets first claim on huge pages."""

    NATURAL = "natural"
    """Property array allocated last (the common reference code shape)."""

    PROPERTY_FIRST = "property-first"
    """Property array allocated first (the paper's optimized order)."""


@dataclass(frozen=True)
class ArraySpec:
    """One data structure to map into the process's address space."""

    array_id: int
    name: str
    num_elements: int
    element_bytes: int = ELEMENT_BYTES

    @property
    def length_bytes(self) -> int:
        """Mapping size in bytes."""
        return self.num_elements * self.element_bytes


class MemoryLayout:
    """The set of arrays a workload maps, with an allocation order."""

    def __init__(
        self,
        workload: Workload,
        order: AllocationOrder = AllocationOrder.NATURAL,
    ) -> None:
        self.order = order
        self.specs = {
            array_id: ArraySpec(
                array_id,
                ARRAY_NAMES[array_id],
                workload.array_elements(array_id),
            )
            for array_id in workload.array_ids()
        }
        if ARRAY_PROPERTY not in self.specs:
            raise WorkloadError(
                f"workload {workload.name!r} declares no property array"
            )

    def allocation_sequence(self) -> list[ArraySpec]:
        """Array specs in the order they are mmapped and first-touched.

        Natural order is the workload's declared order (property last);
        property-first hoists the per-vertex property arrays (property,
        then rank if present) to the front, leaving the rest in natural
        order.
        """
        natural = list(self.specs.values())
        if self.order is AllocationOrder.NATURAL:
            return natural
        hot_ids = (ARRAY_PROPERTY, ARRAY_RANK)
        hot = [s for i in hot_ids for s in natural if s.array_id == i]
        cold = [s for s in natural if s.array_id not in hot_ids]
        return hot + cold

    @property
    def total_bytes(self) -> int:
        """Application working-set size (sum of all mapped arrays)."""
        return sum(spec.length_bytes for spec in self.specs.values())

    def spec(self, array_id: int) -> ArraySpec:
        """The spec for one array id.

        Raises:
            WorkloadError: if the workload does not map that array.
        """
        try:
            return self.specs[array_id]
        except KeyError:
            raise WorkloadError(
                f"workload maps no array with id {array_id}"
            ) from None
