"""Instrumented graph-analytic workloads (paper §2.1, §3.2).

Each workload implements the push-based, frontier-iterative programming
model of the paper's Fig. 4 and *emits its memory access stream* — the
interleaved sequence of sequential vertex/edge array reads and
pointer-indirect property array accesses — which the machine translates
and runs through the TLB model.

- :mod:`repro.workloads.bfs` — Breadth-First Search.
- :mod:`repro.workloads.sssp` — Single-Source Shortest Paths
  (push-based/frontier Bellman-Ford).
- :mod:`repro.workloads.pagerank` — PageRank (push-style power
  iteration).
- :mod:`repro.workloads.layout` — array specs and allocation order
  (natural vs. graph-analytics-optimized).
"""

from .base import (
    ARRAY_EDGE,
    ARRAY_NAMES,
    ARRAY_PROPERTY,
    ARRAY_RANK,
    ARRAY_VALUES,
    ARRAY_VERTEX,
    Workload,
)
from .layout import AllocationOrder, ArraySpec, MemoryLayout
from .bfs import Bfs
from .cc import ConnectedComponents
from .sssp import Sssp
from .pagerank import PageRank
from .registry import WORKLOADS, create_workload, workload_names

__all__ = [
    "ARRAY_EDGE",
    "ARRAY_NAMES",
    "ARRAY_PROPERTY",
    "ARRAY_RANK",
    "ARRAY_VALUES",
    "ARRAY_VERTEX",
    "AllocationOrder",
    "ArraySpec",
    "Bfs",
    "ConnectedComponents",
    "MemoryLayout",
    "PageRank",
    "Sssp",
    "WORKLOADS",
    "Workload",
    "create_workload",
    "workload_names",
]
