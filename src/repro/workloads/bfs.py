"""Breadth-First Search (paper §3.2).

Level-synchronous push-based BFS: the worklist holds the current
frontier; processing a vertex scans its neighbor list and conditionally
updates unvisited neighbors' hop counts in the property array — one
pointer-indirect property access per edge, the access pattern the paper
identifies as the primary TLB bottleneck.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..graph.csr import CsrGraph
from ..tlb.trace import AccessStream
from .base import (
    ARRAY_EDGE,
    ARRAY_PROPERTY,
    ARRAY_VERTEX,
    Workload,
    default_root,
)

UNVISITED = -1
"""Property value for a vertex that has not been reached."""


class Bfs(Workload):
    """Breadth-first search from a root vertex.

    The property array holds hop counts (``UNVISITED`` initially); the
    result equals the shortest unweighted distance for every reachable
    vertex.
    """

    name = "bfs"

    def __init__(self, graph: CsrGraph, root: Optional[int] = None) -> None:
        super().__init__(graph)
        self.root = default_root(graph) if root is None else root
        self.distances = np.full(graph.num_vertices, UNVISITED, dtype=np.int64)
        self.iterations = 0

    def array_ids(self) -> tuple[int, ...]:
        return (ARRAY_VERTEX, ARRAY_EDGE, ARRAY_PROPERTY)

    def run(self) -> Iterator[AccessStream]:
        graph = self.graph
        distances = self.distances
        distances[:] = UNVISITED
        distances[self.root] = 0
        frontier = np.array([self.root], dtype=np.int64)
        level = 0
        self.iterations = 0
        while frontier.size:
            edge_positions, targets = self.gather_frontier_edges(frontier)
            yield self.edge_phase_stream(frontier, edge_positions, targets)
            level += 1
            self.iterations += 1
            unvisited = targets[distances[targets] == UNVISITED]
            if unvisited.size:
                frontier = np.unique(unvisited)
                distances[frontier] = level
            else:
                frontier = np.empty(0, dtype=np.int64)

    def result(self) -> np.ndarray:
        """Hop counts per vertex (``UNVISITED`` if unreachable)."""
        return self.distances
