"""PageRank (paper §3.2).

Push-style power iteration: every vertex distributes ``rank[u] /
out_degree[u]`` to its outgoing neighbors, accumulating into the property
array (the next-iteration scores).  Property accesses are pointer
indirect and occur once per edge per iteration, so total property traffic
scales with iterations — the paper notes PR's property access count
depends on the iteration count to convergence and the threshold ε.

The source rank array is read sequentially (once per vertex per
iteration) and modeled as its own data structure (``ARRAY_RANK``).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..graph.csr import CsrGraph
from ..tlb.trace import AccessStream
from .base import (
    ARRAY_EDGE,
    ARRAY_PROPERTY,
    ARRAY_RANK,
    ARRAY_VERTEX,
    Workload,
)


class PageRank(Workload):
    """Iterative PageRank with damping.

    Args:
        graph: the network.
        damping: damping factor (0.85 in the original formulation).
        epsilon: convergence threshold on the L1 score delta.
        max_iterations: hard iteration cap — benchmarks use a small cap
            so trace volume stays proportional across datasets; examples
            run to convergence.
    """

    name = "pagerank"

    def __init__(
        self,
        graph: CsrGraph,
        damping: float = 0.85,
        epsilon: float = 1e-4,
        max_iterations: int = 3,
    ) -> None:
        super().__init__(graph)
        self.damping = damping
        self.epsilon = epsilon
        self.max_iterations = max_iterations
        self.scores = np.full(
            graph.num_vertices, 1.0 / max(1, graph.num_vertices)
        )
        self.iterations = 0
        self.converged = False

    def array_ids(self) -> tuple[int, ...]:
        return (ARRAY_VERTEX, ARRAY_EDGE, ARRAY_RANK, ARRAY_PROPERTY)

    def run(self) -> Iterator[AccessStream]:
        graph = self.graph
        num_vertices = graph.num_vertices
        out_degrees = np.diff(graph.indptr)
        all_vertices = np.arange(num_vertices, dtype=np.int64)
        # Precompute the full edge sweep once: every iteration touches
        # every edge in the same order.
        edge_positions, targets = self.gather_frontier_edges(all_vertices)
        sources = np.repeat(all_vertices, out_degrees)
        base_score = (1.0 - self.damping) / max(1, num_vertices)
        self.scores[:] = 1.0 / max(1, num_vertices)
        self.iterations = 0
        self.converged = False
        for _ in range(self.max_iterations):
            yield self.edge_phase_stream(
                all_vertices,
                edge_positions,
                targets,
                source_rank_reads=True,
            )
            contributions = np.where(
                out_degrees > 0, self.scores / np.maximum(out_degrees, 1), 0.0
            )
            dangling = float(self.scores[out_degrees == 0].sum())
            next_scores = np.zeros(num_vertices)
            np.add.at(next_scores, targets, contributions[sources])
            next_scores = base_score + self.damping * (
                next_scores + dangling / max(1, num_vertices)
            )
            delta = float(np.abs(next_scores - self.scores).sum())
            self.scores = next_scores
            self.iterations += 1
            # End-of-iteration sweep: write the new scores back through
            # the property array and reload the rank array.
            yield AccessStream.concatenate(
                [
                    self.sequential_pass_stream(ARRAY_PROPERTY),
                    self.sequential_pass_stream(ARRAY_RANK),
                ]
            )
            if delta < self.epsilon:
                self.converged = True
                break

    def result(self) -> np.ndarray:
        """Final PageRank scores (sum ≈ 1)."""
        return self.scores
