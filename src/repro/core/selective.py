"""Selective THP helpers: plans and budget accounting (§5.2).

These are the building blocks the paper's selective-THP experiments use
directly: a plan backing ``s%`` of the property array with huge pages
(on top of DBG preprocessing and property-first allocation) and the
huge-page budget statistic.
"""

from __future__ import annotations

from ..workloads.base import ARRAY_PROPERTY
from ..workloads.layout import AllocationOrder
from .plan import PlacementPlan


def selective_property_plan(
    fraction: float,
    reorder: str = "dbg",
    order: AllocationOrder = AllocationOrder.PROPERTY_FIRST,
    label: str | None = None,
) -> PlacementPlan:
    """A plan that madvises the leading ``fraction`` of the property
    array (the paper's "THPs applied selectively to s% of the property
    array").

    ``fraction == 0`` yields a plan with no advice (pure 4KB run with the
    given reordering), matching the 0% end of the Fig. 11 sweep.
    """
    if label is None:
        label = f"selective(s={fraction:.0%},{reorder})"
    advise = {ARRAY_PROPERTY: fraction} if fraction > 0 else {}
    return PlacementPlan(
        order=order,
        advise_fractions=advise,
        reorder=reorder,
        label=label,
    )


def huge_page_budget(
    huge_bytes: int, footprint_bytes: int
) -> float:
    """Fraction of the application footprint backed by huge pages —
    the abstract's "0.58 – 2.92% of the memory resources"."""
    if footprint_bytes <= 0:
        return 0.0
    return huge_bytes / footprint_bytes
