"""Placement plans: the programmer-guided page-size decisions of §5.2.

A :class:`PlacementPlan` is the contract between the advisor (which data
deserves huge pages) and the machine (which simulated ``madvise`` calls
to issue and in which order to allocate arrays).  Plans are plain data so
experiments can construct them directly for sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..workloads.layout import AllocationOrder


@dataclass(frozen=True)
class PlacementPlan:
    """Huge-page guidance for one workload run.

    Attributes:
        order: allocation order (natural vs property-first).
        advise_fractions: per-array-id fraction (0..1] of the array's
            *leading* bytes to cover with ``MADV_HUGEPAGE``.  With DBG
            preprocessing the hottest vertices occupy the array prefix,
            so a leading fraction is exactly the paper's "apply THPs to
            s% of the property array".  Arrays absent from the mapping
            get no advice.
        hugetlb_fractions: per-array-id fraction of the array's leading
            bytes to back from a boot-time hugetlbfs reservation
            instead of THP (§2.3's explicit mechanism).  The harness
            sizes and reserves the pool *before* memory pressure is
            applied, modeling ``vm.nr_hugepages`` at boot.
        reorder: named vertex ordering to apply before the run
            ("original", "dbg", "degree-sort", "random").
        label: human-readable plan name for reports.
    """

    order: AllocationOrder = AllocationOrder.NATURAL
    advise_fractions: dict[int, float] = field(default_factory=dict)
    hugetlb_fractions: dict[int, float] = field(default_factory=dict)
    reorder: str = "original"
    label: str = "plan"

    def __post_init__(self) -> None:
        for source in (self.advise_fractions, self.hugetlb_fractions):
            for array_id, fraction in source.items():
                if not 0.0 < fraction <= 1.0:
                    raise ConfigError(
                        f"fraction for array {array_id} must be in "
                        f"(0, 1], got {fraction}"
                    )
        overlap = set(self.advise_fractions) & set(self.hugetlb_fractions)
        if overlap:
            raise ConfigError(
                f"arrays {sorted(overlap)} cannot use both madvise THP "
                "and a hugetlb reservation"
            )

    @staticmethod
    def none() -> "PlacementPlan":
        """No guidance: the 4KB baseline / pure-THP-mode runs."""
        return PlacementPlan(label="none")

    def advised_bytes(self, array_lengths: dict[int, int]) -> int:
        """Total bytes covered by ``MADV_HUGEPAGE`` under this plan."""
        total = 0
        for array_id, fraction in self.advise_fractions.items():
            length = array_lengths.get(array_id, 0)
            total += int(length * fraction)
        return total

    def hugetlb_regions_needed(
        self, array_lengths: dict[int, int], huge_page_size: int
    ) -> int:
        """Pool size (in regions) a boot-time reservation must hold to
        satisfy this plan's hugetlb-backed ranges."""
        regions = 0
        for array_id, fraction in self.hugetlb_fractions.items():
            length = array_lengths.get(array_id, 0)
            regions += -(-int(length * fraction) // huge_page_size)
        return regions
