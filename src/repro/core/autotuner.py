"""Online page-size autotuning: the paper's future work, implemented.

The conclusion of the paper calls for "automated software and hardware
co-designed runtime systems" that combine *application behaviour
knowledge* with *real-time memory system resource tracking*.
:class:`OnlineAdvisor` is exactly that runtime, built from the pieces
this library already has:

- application knowledge: push-based graph kernels concentrate their
  irregular traffic in the property array, so only the per-vertex
  arrays are promotion targets;
- runtime tracking: a :class:`~repro.mem.profiler.PageProfiler` watches
  the first ``warmup_iterations`` access streams;
- action: after warmup, the advisor ranks the target arrays' chunks by
  observed hotness and promotes the smallest set covering
  ``coverage_target`` of the observed property traffic (bounded by
  ``max_chunks``), using the khugepaged promotion machinery — paying
  copy costs and TLB shootdowns like any run-time promotion.

Unlike the static :class:`~repro.core.advisor.PageSizeAdvisor`, this
needs no preprocessing and no prior knowledge of the input graph: it
discovers the hot pages of *this* run, including skew that only emerges
from the traversal order.  The price is the unaccelerated warmup and
the promotion copies — which is the paper's point about fault-time
allocation being preferable when the programmer already knows.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..mem.heuristics import HugePageManager
from ..mem.vmm import Vma
from ..workloads.base import ARRAY_PROPERTY, ARRAY_RANK


class OnlineAdvisor(HugePageManager):
    """Profile-then-promote runtime for the per-vertex arrays."""

    def __init__(
        self,
        target_array_ids: tuple[int, ...] = (ARRAY_PROPERTY, ARRAY_RANK),
        warmup_iterations: int = 1,
        coverage_target: float = 0.85,
        max_chunks: Optional[int] = None,
        promotions_per_pass: int = 64,
    ) -> None:
        """
        Args:
            target_array_ids: arrays eligible for promotion (application
                knowledge: the pointer-indirect per-vertex arrays).
            warmup_iterations: access streams observed before acting.
            coverage_target: fraction of observed target-array accesses
                the promoted chunks must cover.
            max_chunks: hard cap on promoted chunks (huge-page budget);
                ``None`` = bounded only by coverage.
            promotions_per_pass: promotion rate limit per iteration
                (khugepaged-style batching).
        """
        super().__init__(promotions_per_pass)
        self.target_array_ids = target_array_ids
        self.warmup_iterations = warmup_iterations
        self.coverage_target = coverage_target
        self.max_chunks = max_chunks
        self._iterations_seen = 0

    def candidate_chunks(self, vma: Vma) -> np.ndarray:  # pragma: no cover
        raise AssertionError("OnlineAdvisor overrides on_iteration")

    # ------------------------------------------------------------------

    def on_iteration(self) -> int:
        """Adaptive re-planning: the hot set is recomputed from the
        *cumulative* profile every pass, so early iterations' sparse
        samples (a BFS run's first frontiers touch only a sliver of the
        graph) are corrected as observations accumulate."""
        self._iterations_seen += 1
        if self._iterations_seen < self.warmup_iterations:
            return 0
        promoted = 0
        for vma, chunk in self._hot_set():
            if promoted >= self.promotions_per_pass:
                break
            if self.max_chunks is not None and (
                self.total_promotions >= self.max_chunks
            ):
                break
            if not self._promotable(vma, chunk):
                continue  # already huge (still counts toward coverage)
            if not self.vmm.promote_chunk(vma, chunk):
                break  # out of huge regions; retry next pass
            promoted += 1
            self.total_promotions += 1
        return promoted

    def _hot_set(self) -> list[tuple[Vma, int]]:
        """The smallest hottest-first chunk set covering the coverage
        target of all observed target-array accesses (huge or not)."""
        entries: list[tuple[int, Vma, int]] = []
        total = 0
        for array_id in self.target_array_ids:
            vma = self.process.vma_by_array.get(array_id)
            if vma is None:
                continue
            counts = self.profiler.chunk_counts(vma)
            total += int(counts.sum())
            for chunk in np.flatnonzero(counts > 0):
                entries.append((int(counts[chunk]), vma, int(chunk)))
        entries.sort(key=lambda item: -item[0])
        hot: list[tuple[Vma, int]] = []
        covered = 0
        for count, vma, chunk in entries:
            if total and covered / total >= self.coverage_target:
                break
            hot.append((vma, chunk))
            covered += count
        return hot
