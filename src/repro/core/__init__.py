"""The paper's primary contribution: application-aware page size
management for graph analytics.

- :mod:`repro.core.plan` — :class:`PlacementPlan`: which arrays to back
  with huge pages, how much of the (reordered) property array to advise,
  and the allocation order.
- :mod:`repro.core.advisor` — :class:`PageSizeAdvisor`: derives a plan
  from the workload's layout and the graph's degree profile (§5).
- :mod:`repro.core.selective` — applies plans and reports the huge-page
  budget statistics (the 0.58–2.92% headline).
"""

from .plan import PlacementPlan
from .advisor import AdvisorReport, PageSizeAdvisor
from .autotuner import OnlineAdvisor
from .selective import huge_page_budget, selective_property_plan

__all__ = [
    "AdvisorReport",
    "OnlineAdvisor",
    "PageSizeAdvisor",
    "PlacementPlan",
    "huge_page_budget",
    "selective_property_plan",
]
