"""The page-size advisor: the paper's manual tuning, codified (§5).

The paper's optimization is performed by a programmer who (1) knows the
property array is the TLB-miss hot spot, (2) reorders vertices with DBG
so hot property entries share pages, and (3) madvises only the hot prefix
of the property array.  :class:`PageSizeAdvisor` derives those decisions
from the graph itself:

- property-access frequency per vertex is its in-degree (push-based
  kernels update ``prop[dst]`` once per incoming edge);
- the *hot set* is chosen as the smallest group of hottest vertices
  covering a target fraction of all property accesses;
- DBG is recommended when the hot set is scattered across the id space
  (Kronecker-like inputs); skipped when the input already clusters hubs
  (Twitter/Wikipedia-like inputs, §5.2);
- the madvise fraction ``s`` is the hot set's share of the (reordered)
  property array, rounded up to whole huge pages.

This is the "first step towards automatically identifying and exploiting
the asymmetric value of huge page allocations" the paper calls for in its
conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import MachineConfig, scaled
from ..graph.csr import CsrGraph
from ..graph.reorder import dbg_order
from ..workloads.base import ARRAY_PROPERTY
from ..workloads.layout import ELEMENT_BYTES, AllocationOrder
from .plan import PlacementPlan


@dataclass(frozen=True)
class AdvisorReport:
    """The advisor's decision and the evidence behind it.

    Attributes:
        plan: the placement plan to run with.
        hot_vertex_fraction: fraction of vertices in the chosen hot set.
        access_coverage: fraction of property accesses the hot set
            receives.
        natural_clustering: fraction of the hot set already residing in
            the leading ``hot_vertex_fraction`` of the id space (1.0 =
            perfectly clustered, ≈ ``hot_vertex_fraction`` = random).
        reorder_recommended: whether DBG preprocessing is worth it.
        advise_fraction: ``s``, the property-array fraction to madvise.
        huge_pages_needed: huge pages covering the advised range.
        budget_fraction: advised bytes over the whole-graph footprint
            (compare with the paper's 0.58–2.92%).
    """

    plan: PlacementPlan
    hot_vertex_fraction: float
    access_coverage: float
    natural_clustering: float
    reorder_recommended: bool
    advise_fraction: float
    huge_pages_needed: int
    budget_fraction: float


class PageSizeAdvisor:
    """Derive huge-page guidance from a graph's degree profile."""

    def __init__(
        self,
        graph: CsrGraph,
        config: MachineConfig | None = None,
        coverage_target: float = 0.8,
        clustering_threshold: float = 0.6,
    ) -> None:
        """
        Args:
            graph: the input network.
            config: machine profile (for huge-page rounding); defaults to
                the SCALED profile.
            coverage_target: fraction of property accesses the advised
                range must cover.
            clustering_threshold: if at least this fraction of the hot
                set already sits in the leading id range, skip DBG.
        """
        self.graph = graph
        self.config = config if config is not None else scaled()
        self.coverage_target = coverage_target
        self.clustering_threshold = clustering_threshold

    def advise(self, footprint_bytes: int | None = None) -> AdvisorReport:
        """Produce a placement plan for a push-based kernel on this graph.

        Args:
            footprint_bytes: the application footprint used for the
                budget statistic; defaults to the CSR + property footprint.
        """
        graph = self.graph
        num_vertices = graph.num_vertices
        in_degrees = graph.in_degrees().astype(np.int64)
        total_accesses = max(1, int(in_degrees.sum()))

        # Smallest hottest-first set covering the access target.
        order = np.argsort(-in_degrees, kind="stable")
        covered = np.cumsum(in_degrees[order]) / total_accesses
        hot_count = int(np.searchsorted(covered, self.coverage_target) + 1)
        hot_count = min(hot_count, num_vertices)
        hot_fraction = hot_count / max(1, num_vertices)
        coverage = float(covered[hot_count - 1])

        # How clustered is the hot set already?  Count hot vertices whose
        # id falls inside the leading hot_count ids.
        hot_ids = order[:hot_count]
        clustering = float(np.count_nonzero(hot_ids < hot_count)) / max(
            1, hot_count
        )
        reorder_needed = clustering < self.clustering_threshold

        # Advise the prefix that will hold the hot set after (optional)
        # DBG.  DBG's bins are coarser than an exact top-k cut, so size
        # the prefix by where the coverage target lands in the DBG order.
        if reorder_needed:
            perm = dbg_order(graph)
            degrees_by_new_id = np.empty(num_vertices, dtype=np.int64)
            degrees_by_new_id[perm] = in_degrees
        else:
            degrees_by_new_id = in_degrees
        prefix_cover = np.cumsum(degrees_by_new_id) / total_accesses
        prefix_count = int(
            np.searchsorted(prefix_cover, self.coverage_target) + 1
        )
        prefix_count = min(prefix_count, num_vertices)

        huge = self.config.pages.huge_page_size
        advised_bytes = prefix_count * ELEMENT_BYTES
        huge_pages = max(1, -(-advised_bytes // huge))
        property_bytes = num_vertices * ELEMENT_BYTES
        fraction = min(1.0, huge_pages * huge / property_bytes)

        if footprint_bytes is None:
            footprint_bytes = (
                (num_vertices + 1 + graph.num_edges) * ELEMENT_BYTES
                + property_bytes
            )
        budget = min(1.0, (huge_pages * huge) / max(1, footprint_bytes))

        plan = PlacementPlan(
            order=AllocationOrder.PROPERTY_FIRST,
            advise_fractions={ARRAY_PROPERTY: fraction},
            reorder="dbg" if reorder_needed else "original",
            label=f"advisor(s={fraction:.0%}"
            + (",dbg" if reorder_needed else "")
            + ")",
        )
        return AdvisorReport(
            plan=plan,
            hot_vertex_fraction=hot_fraction,
            access_coverage=coverage,
            natural_clustering=clustering,
            reorder_recommended=reorder_needed,
            advise_fraction=fraction,
            huge_pages_needed=huge_pages,
            budget_fraction=budget,
        )
