"""Exception hierarchy for the repro package.

Every error raised by the simulator derives from :class:`ReproError` so
callers can catch simulator failures without masking programming errors
(``TypeError``, ``ValueError`` from misuse are still raised directly where
appropriate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all simulator errors."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class OutOfMemoryError(ReproError):
    """A physical memory allocation could not be satisfied.

    Raised when neither free frames, compaction, nor reclaim can produce
    the requested pages and swap is not enabled for the machine.
    """


class AllocationError(ReproError):
    """A virtual memory operation failed (bad range, overlap, misuse)."""


class AddressError(ReproError):
    """An access touched an unmapped or out-of-range virtual address."""


class GraphError(ReproError):
    """A graph structure is malformed or an operation is unsupported."""


class DatasetError(GraphError):
    """A named dataset is unknown or could not be materialized."""


class WorkloadError(ReproError):
    """A workload was configured or driven incorrectly."""


class ExperimentError(ReproError):
    """An experiment harness cell could not be configured or run."""
