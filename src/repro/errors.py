"""Exception hierarchy for the repro package.

Every error raised by the simulator derives from :class:`ReproError` so
callers can catch simulator failures without masking programming errors
(``TypeError``, ``ValueError`` from misuse are still raised directly where
appropriate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all simulator errors."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class OutOfMemoryError(ReproError):
    """A physical memory allocation could not be satisfied.

    Raised when neither free frames, compaction, nor reclaim can produce
    the requested pages and swap is not enabled for the machine.
    """


class AllocationError(ReproError):
    """A virtual memory operation failed (bad range, overlap, misuse)."""


class AddressError(ReproError):
    """An access touched an unmapped or out-of-range virtual address."""


class GraphError(ReproError):
    """A graph structure is malformed or an operation is unsupported."""


class DatasetError(GraphError):
    """A named dataset is unknown or could not be materialized."""


class WorkloadError(ReproError):
    """A workload was configured or driven incorrectly."""


class ExperimentError(ReproError):
    """An experiment harness cell could not be configured or run."""


class InjectedFaultError(ReproError):
    """A deterministic injected fault fired at a named site.

    Raised by :class:`repro.faults.FaultInjector` when a site's trigger
    matches.  Carries enough context for the harness to attribute the
    failure (``CellFailure`` site labels) and for tests to assert
    determinism.

    Attributes:
        site: the :class:`repro.faults.FaultSite` that fired.
        hit: 1-based fire count at that site within the injector.
        evaluation: 1-based site-evaluation index that fired, if known.
    """

    def __init__(self, site, hit: int, evaluation=None) -> None:
        self.site = site
        self.hit = hit
        self.evaluation = evaluation
        label = getattr(site, "value", site)
        detail = f"fire #{hit}"
        if evaluation is not None:
            detail += f", evaluation {evaluation}"
        super().__init__(f"injected fault at site {label!r} ({detail})")


class MemSanError(ReproError):
    """The runtime memory sanitizer (MemSan) detected a broken invariant.

    Raised by :class:`repro.analysis.sanitizer.MemSanitizer` hooks when a
    simulated-memory operation violates frame-state discipline
    (double-alloc/free, illegal transitions, huge-region preconditions)
    or when a sweep finds the frame map, VMM page tables and page cache
    out of sync.  This always indicates a simulator bug, never a modeled
    adverse condition — it is deliberately *not* absorbed by the
    experiment harness's failure handling.
    """


class CellBudgetExceededError(ExperimentError):
    """A cell exceeded its simulated-access budget.

    The harness's runaway guard: raised by the machine's compute loop
    when a cell's simulated accesses pass the configured cap, so a
    misbehaving workload degrades into a structured ``CellFailure``
    instead of burning a figure batch's time budget.
    """


class WatchdogExpiredError(ExperimentError):
    """The cell watchdog fired: a cell ran past its simulated-cycle
    budget or its wall-clock deadline.

    Raised by :class:`repro.runstate.watchdog.CellWatchdog` from inside
    the machine's compute loop.  The harness absorbs it into a
    ``CellFailure`` labelled ``FAILED(watchdog)`` without retrying — a
    hung or runaway cell cannot be fixed by replaying it, only bounded.

    Attributes:
        reason: ``"cycles"`` or ``"wall-clock"`` — which bound tripped.
    """

    cause_label = "watchdog"
    """Rendered into ``CellFailure`` markers instead of the class name."""

    def __init__(self, reason: str, detail: str) -> None:
        self.reason = reason
        super().__init__(f"watchdog expired ({reason}): {detail}")


class JournalError(ReproError):
    """A run journal could not be read or is being misused.

    Torn or corrupt *records* never raise this — they are detected via
    the per-record integrity hash and treated as never-run.  This error
    covers structural misuse: a journal path that exists but is a
    directory, an unreadable file, or recording to a closed journal.
    """


class JournalLockedError(JournalError):
    """A journal is owned by another *live* process.

    Raised by :class:`repro.runstate.lock.PidLock` when a different
    running process holds a journal's pidfile lock — e.g. ``repro runs
    gc`` pointed at the journal of a live sweep or server.  Stale locks
    (dead owners) never raise this; they are broken silently so crash
    recovery needs no manual cleanup.
    """


class ServiceError(ReproError):
    """The sweep service could not accept or complete a request.

    Base class for daemon-side request failures (:mod:`repro.serve`).
    Transport-level problems raise normal ``OSError``s; this hierarchy
    covers protocol-level outcomes the service *chose* — rejecting,
    quarantining, or refusing work.
    """


class AdmissionError(ServiceError):
    """The service rejected a submission at admission time.

    Backpressure (queue full → retry later) and drain-mode / cached-only
    refusals both land here.  Carries ``retry_after`` (seconds, or
    ``None`` when retrying will not help, e.g. the server is draining).
    """

    def __init__(self, message: str, retry_after=None) -> None:
        self.retry_after = retry_after
        super().__init__(message)


class MergeConflictError(JournalError):
    """A journal merge found conflicting results for one fingerprint.

    Split-brain: two shards hold ``done`` records for the same spec
    fingerprint whose semantic content (cell coordinates, payload,
    attempts, kernel cycles) differs.  Identical duplicates — the normal
    outcome of a cell re-leased after a worker partition — merge
    silently; a genuine divergence means the shards were produced under
    different settings or one of them is corrupt, and the merge refuses
    rather than guessing which side to keep.

    Attributes:
        conflicts: one dict per conflicting fingerprint —
            ``{"spec", "label", "variants": [{"source", "digest",
            "status"}]}`` — so the refusal report can name exactly what
            diverged and where each variant came from.
    """

    def __init__(self, conflicts) -> None:
        self.conflicts = list(conflicts)
        specs = ", ".join(c["spec"] for c in self.conflicts)
        super().__init__(
            f"conflicting results for {len(self.conflicts)} "
            f"fingerprint(s): {specs}"
        )


class DistError(ServiceError):
    """The distributed sweep layer could not dispatch or collect a cell.

    Raised by :mod:`repro.dist` for coordinator/worker protocol
    failures the layer *chose* to surface (a lease the coordinator no
    longer recognizes, an integrity-hash mismatch on a streamed
    result).  Transport-level failures stay ``OSError`` so the bounded
    retry loop can treat them uniformly.
    """


class ChaosError(ReproError):
    """A chaos scenario's invariant did not hold.

    Raised by :mod:`repro.chaos.harness` when a post-adversity assertion
    fails — e.g. a restarted server served different bytes for a
    previously completed spec, or a duplicate submission executed twice.
    A chaos *action* firing is never an error; only a broken recovery
    invariant is.
    """


class QuarantinedError(ServiceError):
    """A spec is quarantined by the circuit breaker.

    The spec failed repeatedly (possibly across restarts — breaker state
    is persisted next to the journal) and new executions are refused
    until the cooldown admits a probe.

    Attributes:
        spec: the quarantined spec fingerprint.
        retry_after: seconds until the next probe is admitted.
    """

    def __init__(self, spec: str, retry_after=None) -> None:
        self.spec = spec
        self.retry_after = retry_after
        super().__init__(f"spec {spec!r} is quarantined by the circuit breaker")
