"""Machine configuration profiles.

A :class:`MachineConfig` fully describes the simulated machine: page sizes,
TLB geometry, NUMA-node memory capacity, and the cycle cost model used to
convert event counts into runtime estimates.

Three named profiles are provided:

``PAPER_X86``
    The paper's Table 1 system (Intel Xeon E5-2667 v3): 4KB/2MB pages,
    64+32-entry split L1 DTLB, 1536-entry STLB, 64GB per NUMA node.  Useful
    for documentation and unit tests of the geometry itself; running
    billion-edge traces through a Python simulator at this scale is not
    practical.

``SCALED``
    The default evaluation profile.  Every capacity is scaled down by
    roughly the same factor (see DESIGN.md §3) so that the *ratios* that
    drive the paper's phenomena — memory footprint versus TLB coverage, and
    huge pages needed versus huge pages available — are preserved while
    traces stay small enough to simulate in seconds.

``TINY``
    A minimal profile for fast unit tests: small TLBs, 64KB "huge" pages,
    4MB nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigError
from .faults.spec import FaultPlan
from .units import GiB, KiB, MiB, is_power_of_two


@dataclass(frozen=True)
class TlbGeometry:
    """Geometry of one set-associative TLB structure.

    Attributes:
        entries: total number of entries; must be a multiple of ``ways``.
        ways: associativity.  ``ways == entries`` models a fully
            associative structure.
    """

    entries: int
    ways: int

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.ways <= 0:
            raise ConfigError("TLB entries and ways must be positive")
        if self.entries % self.ways != 0:
            raise ConfigError(
                f"TLB entries ({self.entries}) must be a multiple of "
                f"ways ({self.ways})"
            )
        if not is_power_of_two(self.sets):
            raise ConfigError(
                f"number of sets ({self.sets}) must be a power of two"
            )

    @property
    def sets(self) -> int:
        """Number of sets (entries / ways)."""
        return self.entries // self.ways


@dataclass(frozen=True)
class TlbConfig:
    """The two-level translation-caching hierarchy.

    The L1 data TLB is split by page size (as on the paper's Haswell part);
    the L2 "STLB" is unified across page sizes.
    """

    l1_base: TlbGeometry
    l1_huge: TlbGeometry
    l2: TlbGeometry

    @staticmethod
    def paper_x86() -> "TlbConfig":
        """Table 1: Haswell-era split L1 DTLB and unified 1536-entry STLB."""
        return TlbConfig(
            l1_base=TlbGeometry(entries=64, ways=4),
            l1_huge=TlbGeometry(entries=32, ways=4),
            l2=TlbGeometry(entries=1536, ways=12),
        )


@dataclass(frozen=True)
class PageConfig:
    """Base and huge page sizes.

    ``huge_page_size`` must be a power-of-two multiple of
    ``base_page_size``; the ratio is the number of base frames per huge
    region (512 on x86-64 with 4KB/2MB).
    """

    base_page_size: int
    huge_page_size: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.base_page_size):
            raise ConfigError("base page size must be a power of two")
        if not is_power_of_two(self.huge_page_size):
            raise ConfigError("huge page size must be a power of two")
        if self.huge_page_size <= self.base_page_size:
            raise ConfigError("huge page must be larger than base page")

    @property
    def frames_per_huge(self) -> int:
        """Number of base frames in one huge page region."""
        return self.huge_page_size // self.base_page_size

    @property
    def base_shift(self) -> int:
        """log2(base page size)."""
        return self.base_page_size.bit_length() - 1

    @property
    def huge_shift(self) -> int:
        """log2(huge page size)."""
        return self.huge_page_size.bit_length() - 1


@dataclass(frozen=True)
class CostModel:
    """Cycle costs for the runtime estimate.

    The kernel-compute estimate charges ``mem_access`` per memory access
    plus translation overheads; initialization charges fault handling,
    huge-page preparation (zeroing/copy), compaction work and swap I/O.
    Values are calibrated so the SCALED profile lands in the paper's
    reported speedup bands (Fig. 1: THP gives roughly 1.2-1.8x on a fresh
    machine; §4.3.1: oversubscription costs ~24x).
    """

    mem_access: float = 100.0
    """Average non-translation cost of one instrumented memory access,
    covering compute and the data-cache hierarchy."""

    l1_tlb_hit: float = 0.0
    """Extra cycles when the L1 DTLB hits (translation fully hidden)."""

    l2_tlb_hit: float = 9.0
    """Extra cycles when the L1 misses but the STLB hits."""

    page_walk: float = 140.0
    """Extra cycles for a page table walk (STLB miss)."""

    minor_fault: float = 2_500.0
    """Kernel entry/exit plus PTE setup for a base-page demand fault."""

    base_page_prep: float = 600.0
    """Zeroing/preparation cost of one base frame."""

    huge_fault_extra: float = 4_000.0
    """Extra fault-path cost of allocating a huge page (eligibility checks,
    region allocation) beyond per-frame preparation."""

    promotion_copy_per_frame: float = 900.0
    """khugepaged promotion: copy + PTE rewrite cost per constituent
    base frame."""

    compaction_per_frame: float = 1_200.0
    """Migrating one movable frame during memory compaction."""

    reclaim_per_frame: float = 800.0
    """Reclaiming (dropping/writing back) one page-cache frame."""

    swap_in: float = 5_000_000.0
    """Reading one page back from the swap device (disk I/O).  Sized so
    that oversubscribing memory by 0.5 "GB" collapses the 4KB baseline
    by roughly the paper's 24.6x (§4.3.1)."""

    swap_out: float = 3_000_000.0
    """Writing one page to the swap device."""

    tlb_flush: float = 500.0
    """Cost of a TLB shootdown (promotion/demotion/remap)."""


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of a simulated machine.

    Attributes:
        name: profile name used in reports.
        pages: base/huge page sizes.
        tlb: TLB hierarchy geometry.
        cost: cycle cost model.
        node_memory_bytes: physical memory per NUMA node.
        num_nodes: number of NUMA nodes (the paper's setup has 2: the
            application binds to one, tmpfs/page-cache may live on the
            other).
        khugepaged_scan_interval: simulated accesses between background
            promotion scans; ``0`` disables khugepaged.
        swap_enabled: whether oversubscription swaps instead of failing.
        fault_plan: optional deterministic fault-injection plan; every
            :class:`~repro.machine.machine.Machine` built from this
            config arms a fresh injector from it (see
            :mod:`repro.faults`).  ``None`` (the default) keeps the
            fault-free hot path.
    """

    name: str
    pages: PageConfig
    tlb: TlbConfig
    cost: CostModel = field(default_factory=CostModel)
    node_memory_bytes: int = 64 * MiB
    num_nodes: int = 2
    khugepaged_scan_interval: int = 1_000_000
    swap_enabled: bool = True
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError("need at least one NUMA node")
        if self.node_memory_bytes % self.pages.huge_page_size != 0:
            raise ConfigError(
                "node memory must be a whole number of huge page regions"
            )

    @property
    def frames_per_node(self) -> int:
        """Base frames per NUMA node."""
        return self.node_memory_bytes // self.pages.base_page_size

    @property
    def huge_regions_per_node(self) -> int:
        """Huge page regions per NUMA node."""
        return self.node_memory_bytes // self.pages.huge_page_size

    @property
    def gb_equivalent(self) -> int:
        """Bytes corresponding to "1 GB" in the paper's 64GB-node setup.

        The paper expresses memory-pressure levels in absolute GB on a
        64GB node; scaled profiles keep the same *fractions* of node
        memory, so "+0.5GB" becomes ``0.5 * gb_equivalent`` bytes
        (exactly 0.5GB on ``paper-x86``, 0.5MB on ``scaled``).
        """
        return self.node_memory_bytes // 64

    def with_overrides(self, **kwargs: object) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


def paper_x86() -> MachineConfig:
    """The paper's Table 1 machine (one 64GB NUMA node of two)."""
    return MachineConfig(
        name="paper-x86",
        pages=PageConfig(base_page_size=4 * KiB, huge_page_size=2 * MiB),
        tlb=TlbConfig.paper_x86(),
        node_memory_bytes=64 * GiB,
    )


def scaled() -> MachineConfig:
    """Default evaluation profile (see DESIGN.md §3).

    Huge pages are 32KB (8 base frames instead of 512), TLBs are scaled
    by 8-24x, and nodes hold 64MB, so that graphs with 64K-164K vertices
    reproduce the paper's footprint-to-coverage ratios: a 1MB property
    array spans 256 base pages (vs. 32KB of L1 reach and 256KB of STLB
    reach — heavily over-committed, like the paper's 3-25GB footprints
    against 6MB of STLB reach) but only 32 huge pages (fully covered,
    like 2MB pages covering the paper's hot data).
    """
    return MachineConfig(
        name="scaled",
        pages=PageConfig(base_page_size=4 * KiB, huge_page_size=32 * KiB),
        tlb=TlbConfig(
            l1_base=TlbGeometry(entries=8, ways=4),
            l1_huge=TlbGeometry(entries=8, ways=4),
            l2=TlbGeometry(entries=64, ways=4),
        ),
        node_memory_bytes=64 * MiB,
    )


def scaled_1m() -> MachineConfig:
    """Million-vertex scale tier (the ``*-m`` datasets).

    The ``scaled`` profile's ratio discipline applied to 1M-2M-vertex
    graphs: 16x the vertices means 16x the node memory and 16x the TLB
    reach, keeping the same footprint-to-coverage regime — an 8MB
    property array spans 2048 base pages against 512KB of L1 reach and
    4MB of STLB reach (over-committed, as in the paper), but only 256
    of its 32KB huge pages (covered).  L2 associativity grows to 8 ways
    alongside capacity, mirroring how real STLBs add ways as they grow
    (Table 1's STLB is 12-way at 1536 entries).
    """
    return MachineConfig(
        name="scaled-1m",
        pages=PageConfig(base_page_size=4 * KiB, huge_page_size=32 * KiB),
        tlb=TlbConfig(
            l1_base=TlbGeometry(entries=128, ways=4),
            l1_huge=TlbGeometry(entries=128, ways=4),
            l2=TlbGeometry(entries=1024, ways=8),
        ),
        node_memory_bytes=1 * GiB,
    )


def tiny() -> MachineConfig:
    """Minimal profile for fast unit tests."""
    return MachineConfig(
        name="tiny",
        pages=PageConfig(base_page_size=4 * KiB, huge_page_size=64 * KiB),
        tlb=TlbConfig(
            l1_base=TlbGeometry(entries=4, ways=2),
            l1_huge=TlbGeometry(entries=2, ways=2),
            l2=TlbGeometry(entries=16, ways=4),
        ),
        node_memory_bytes=4 * MiB,
        khugepaged_scan_interval=10_000,
    )


PROFILES = {
    "paper-x86": paper_x86,
    "scaled": scaled,
    "scaled-1m": scaled_1m,
    "tiny": tiny,
}
"""Registry of named machine profiles."""


def get_profile(name: str) -> MachineConfig:
    """Look up a machine profile by name.

    Raises:
        ConfigError: if the profile name is unknown.
    """
    try:
        factory = PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise ConfigError(f"unknown profile {name!r}; known: {known}") from None
    return factory()
