"""Access streams and TLB traces.

Workloads emit *logical* access streams: parallel arrays of
``(array_id, element_index)`` in program order, exactly following the
paper's Fig. 4 pseudocode (sequential vertex/edge array reads interleaved
with pointer-indirect property accesses).  The machine translates a
stream against the process's memory layout into a *TLB trace*: page keys
annotated with page-size class, run-length compressed.

Page keys pack the page number and size class into one integer::

    key = (page_number << 1) | size_class      # size: 0 = base, 1 = huge

so keys are unique across sizes and cheap to split in the simulation
loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

MAX_ARRAY_IDS = 8
"""Upper bound on distinct data-structure ids in one workload."""


@dataclass
class AccessStream:
    """A program-order sequence of logical array accesses.

    Attributes:
        array_ids: ``uint8`` array naming which data structure each access
            touches (workload-defined ids, e.g. 0=vertex, 1=edge,
            2=values, 3=property).
        indices: ``int64`` element index within that array.
    """

    array_ids: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        if self.array_ids.shape != self.indices.shape:
            raise ValueError("array_ids and indices must have equal length")

    def __len__(self) -> int:
        return int(self.array_ids.size)

    @staticmethod
    def concatenate(streams: list["AccessStream"]) -> "AccessStream":
        """Concatenate streams in order."""
        if not streams:
            return AccessStream(
                np.empty(0, dtype=np.uint8), np.empty(0, dtype=np.int64)
            )
        return AccessStream(
            np.concatenate([s.array_ids for s in streams]),
            np.concatenate([s.indices for s in streams]),
        )


def merge_streams(
    parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]]
) -> AccessStream:
    """Merge sub-streams by program position into one stream.

    Each part is ``(positions, array_ids, indices)`` where ``positions``
    are fractional program-order coordinates.  A stable argsort interleaves
    them — used by kernels to weave per-vertex accesses (vertex array
    reads) between the per-edge access pairs at the correct points.
    """
    positions = np.concatenate([p[0] for p in parts])
    array_ids = np.concatenate([p[1] for p in parts])
    indices = np.concatenate([p[2] for p in parts])
    order = np.argsort(positions, kind="stable")
    return AccessStream(array_ids[order].astype(np.uint8), indices[order])


@dataclass
class TlbTrace:
    """A page-granular, run-length-compressed translation trace.

    Attributes:
        keys: packed page keys (``(page << 1) | size``).
        counts: run length of each key (consecutive repeats collapsed;
            hits after the first access in a run are L1 hits by
            construction).
        array_ids: data-structure id of each run (runs never span
            array-id changes).
    """

    keys: np.ndarray
    counts: np.ndarray
    array_ids: np.ndarray
    # Coalesced lookup view (see :meth:`lookup_view`): built eagerly by
    # :func:`compress_trace`, lazily for hand-assembled traces.
    _lookup_keys: Optional[np.ndarray] = field(default=None, repr=False)
    _lookup_array_ids: Optional[np.ndarray] = field(default=None, repr=False)
    # Per-array access totals (see :meth:`access_totals`), same policy.
    _access_totals: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def total_accesses(self) -> int:
        """Number of represented accesses (sum of run lengths)."""
        return int(self.counts.sum())

    def __len__(self) -> int:
        return int(self.keys.size)

    def lookup_view(self) -> tuple[np.ndarray, np.ndarray]:
        """The trace with adjacent same-key runs coalesced — the only
        runs the TLB simulation loop must actually look up.

        Runs split on array-id changes even when the page key stays the
        same (two arrays sharing one huge page at a boundary), but every
        run after the first in such a group is a guaranteed L1 hit: the
        entry was installed or refreshed at MRU by the group's first
        run.  The simulation loop therefore only needs one lookup per
        *key group*; per-array access attribution stays exact because it
        is computed from the full run arrays, and the (potential) miss
        is attributed to the group's leading run — exactly what the
        uncoalesced loop did.

        Returns ``(keys, array_ids)`` of the group-leading runs.
        """
        if self._lookup_keys is None:
            self._lookup_keys, self._lookup_array_ids = _coalesce_lookups(
                self.keys, self.array_ids
            )
        assert self._lookup_array_ids is not None
        return self._lookup_keys, self._lookup_array_ids

    def access_totals(self) -> np.ndarray:
        """Accesses attributed per array id (length ``MAX_ARRAY_IDS``).

        A trace property, not a simulation result: attribution depends
        only on the run arrays, never on TLB state, so it is computed
        once at trace build time and shared by every engine that
        simulates the trace.
        """
        if self._access_totals is None:
            self._access_totals = _access_totals(self.array_ids, self.counts)
        return self._access_totals


def _access_totals(array_ids: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Per-array access totals (build-time helper).

    bincount is a single C pass; run lengths are integers, so the
    float64 accumulation is exact (totals are far below 2**53).
    """
    if counts.size == 0:
        return np.zeros(MAX_ARRAY_IDS, dtype=np.int64)
    return np.bincount(
        array_ids, weights=counts, minlength=MAX_ARRAY_IDS
    ).astype(np.int64)


def _coalesce_lookups(
    keys: np.ndarray, array_ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Leading run of each adjacent same-key group (build-time helper)."""
    n = keys.size
    if n == 0:
        return keys, array_ids
    lead = np.empty(n, dtype=bool)
    lead[0] = True
    np.not_equal(keys[1:], keys[:-1], out=lead[1:])
    if bool(lead.all()):
        return keys, array_ids
    return keys[lead], array_ids[lead]


def compress_trace(
    keys: np.ndarray, array_ids: np.ndarray
) -> TlbTrace:
    """Run-length encode a raw key sequence.

    Consecutive accesses to the same page (with the same array id) are
    collapsed into one run.  Sequential scans of an array compress by up
    to the page size over the element size; pointer-indirect traffic stays
    nearly uncompressed — which is exactly why it dominates TLB pressure.
    """
    n = keys.size
    if n == 0:
        return TlbTrace(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.uint8),
        )
    change = np.empty(n, dtype=bool)
    change[0] = True
    np.not_equal(keys[1:], keys[:-1], out=change[1:])
    change[1:] |= array_ids[1:] != array_ids[:-1]
    starts = np.flatnonzero(change)
    counts = np.diff(np.append(starts, n))
    run_keys = keys[starts].astype(np.int64)
    run_array_ids = array_ids[starts].astype(np.uint8)
    run_counts = counts.astype(np.int64)
    lookup_keys, lookup_array_ids = _coalesce_lookups(run_keys, run_array_ids)
    return TlbTrace(
        run_keys,
        run_counts,
        run_array_ids,
        lookup_keys,
        lookup_array_ids,
        _access_totals(run_array_ids, run_counts),
    )
