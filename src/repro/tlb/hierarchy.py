"""Two-level translation hierarchy with per-data-structure attribution.

Mirrors the paper's Table 1 hardware: a first-level data TLB split by page
size (separate 4KB and huge-page structures) backed by a unified
second-level "STLB".  A first-level miss probes the STLB; an STLB miss
costs a page table walk.

The batch :meth:`TranslationHierarchy.simulate` loop is the simulator's
hot path — it processes run-length-compressed traces (millions of runs)
in optimized pure Python, attributing accesses, first-level misses and
walks to the data structure (array id) that issued them, which is how the
paper's Fig. 4/5 per-structure analysis is produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import CostModel, TlbConfig
from .tlb import SetAssociativeTlb
from .trace import MAX_ARRAY_IDS, TlbTrace

__all__ = [
    "MAX_ARRAY_IDS",
    "TranslationHierarchy",
    "TranslationStats",
]


@dataclass
class TranslationStats:
    """Event counts from trace simulation, attributable per array id."""

    accesses: np.ndarray = field(
        default_factory=lambda: np.zeros(MAX_ARRAY_IDS, dtype=np.int64)
    )
    l1_misses: np.ndarray = field(
        default_factory=lambda: np.zeros(MAX_ARRAY_IDS, dtype=np.int64)
    )
    walks: np.ndarray = field(
        default_factory=lambda: np.zeros(MAX_ARRAY_IDS, dtype=np.int64)
    )

    @property
    def total_accesses(self) -> int:
        """All simulated memory accesses."""
        return int(self.accesses.sum())

    @property
    def total_l1_misses(self) -> int:
        """All first-level DTLB misses."""
        return int(self.l1_misses.sum())

    @property
    def total_walks(self) -> int:
        """All page table walks (STLB misses)."""
        return int(self.walks.sum())

    @property
    def l1_miss_rate(self) -> float:
        """DTLB miss rate: L1 misses / accesses."""
        total = self.total_accesses
        return self.total_l1_misses / total if total else 0.0

    @property
    def walk_rate(self) -> float:
        """Page-walk rate: STLB misses / accesses."""
        total = self.total_accesses
        return self.total_walks / total if total else 0.0

    @property
    def stlb_hit_rate_of_l1_misses(self) -> float:
        """Fraction of DTLB misses that the STLB absorbed."""
        misses = self.total_l1_misses
        if not misses:
            return 0.0
        return 1.0 - self.total_walks / misses

    def translation_cycles(self, cost: CostModel) -> int:
        """Cycles spent on address translation under ``cost``."""
        l2_hits = self.total_l1_misses - self.total_walks
        return int(
            l2_hits * cost.l2_tlb_hit
            + self.total_walks * cost.page_walk
            + (self.total_accesses - self.total_l1_misses) * cost.l1_tlb_hit
        )

    def per_array(self, names: dict[int, str]) -> dict[str, dict[str, int]]:
        """Counts broken down by data structure, using workload names."""
        out: dict[str, dict[str, int]] = {}
        for array_id, name in names.items():
            out[name] = {
                "accesses": int(self.accesses[array_id]),
                "l1_misses": int(self.l1_misses[array_id]),
                "walks": int(self.walks[array_id]),
            }
        return out

    def merge(self, other: "TranslationStats") -> None:
        """Accumulate another stats block into this one."""
        self.accesses += other.accesses
        self.l1_misses += other.l1_misses
        self.walks += other.walks


class TranslationHierarchy:
    """Split L1 DTLB + unified STLB, simulated over compressed traces."""

    engine = "exact"
    """Engine name stamped on ``tlb.stream`` observability events."""

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        self.l1_base = SetAssociativeTlb(config.l1_base)
        self.l1_huge = SetAssociativeTlb(config.l1_huge)
        self.l2 = SetAssociativeTlb(config.l2)
        # Observability tracer, attached by the machine (None = off).
        # One event per simulated access *stream*, never per access, so
        # the tracer stays off the per-access hot loop entirely.
        self.tracer = None
        self._stream = 0

    def flush(self) -> None:
        """Full shootdown of every level."""
        self.l1_base.flush()
        self.l1_huge.flush()
        self.l2.flush()

    def access_one(self, key: int) -> str:
        """Reference single-access path for tests.

        Returns ``"l1"``, ``"l2"`` or ``"walk"`` describing where the
        translation was found.
        """
        l1 = self.l1_huge if key & 1 else self.l1_base
        if l1.probe(key):
            l1.access(key)
            return "l1"
        l1.insert(key)
        if self.l2.probe(key):
            self.l2.access(key)
            return "l2"
        self.l2.insert(key)
        return "walk"

    def simulate(self, trace: TlbTrace, stats: TranslationStats) -> None:
        """Run a compressed trace through the hierarchy, updating
        ``stats`` in place.

        A run of length ``c`` on one page costs one real lookup; the
        remaining ``c - 1`` accesses are guaranteed L1 hits (the entry was
        just installed or refreshed), so only counts are updated for them.
        Access attribution is vectorized over the full run arrays; the
        lookup loop walks the coalesced view (adjacent same-key runs are
        a single lookup — see :meth:`TlbTrace.lookup_view`).
        """
        stats.accesses += trace.access_totals()
        lookup_keys, lookup_array_ids = trace.lookup_view()

        l1b_sets = self.l1_base.sets
        l1b_mask = self.l1_base.set_mask
        l1b_ways = self.l1_base.geometry.ways
        l1b_res = self.l1_base.resident
        l1h_sets = self.l1_huge.sets
        l1h_mask = self.l1_huge.set_mask
        l1h_ways = self.l1_huge.geometry.ways
        l1h_res = self.l1_huge.resident
        l2_sets = self.l2.sets
        l2_mask = self.l2.set_mask
        l2_ways = self.l2.geometry.ways
        l2_res = self.l2.resident

        # Accumulate into plain int lists inside the loop; fold into the
        # numpy counters once at the end.  Hits test the O(1) resident
        # view and pay at most one list scan (the LRU reorder, skipped
        # when the entry is already MRU); misses scan nothing.
        l1m_l = [0] * MAX_ARRAY_IDS
        wlk_l = [0] * MAX_ARRAY_IDS

        for k, a in zip(lookup_keys.tolist(), lookup_array_ids.tolist()):
            if k & 1:
                if k in l1h_res:
                    entries = l1h_sets[(k >> 1) & l1h_mask]
                    if entries[0] != k:
                        entries.remove(k)
                        entries.insert(0, k)
                    continue
                res = l1h_res
                entries = l1h_sets[(k >> 1) & l1h_mask]
                ways = l1h_ways
            else:
                if k in l1b_res:
                    entries = l1b_sets[(k >> 1) & l1b_mask]
                    if entries[0] != k:
                        entries.remove(k)
                        entries.insert(0, k)
                    continue
                res = l1b_res
                entries = l1b_sets[(k >> 1) & l1b_mask]
                ways = l1b_ways
            l1m_l[a] += 1
            res.add(k)
            entries.insert(0, k)
            if len(entries) > ways:
                res.discard(entries.pop())
            entries2 = l2_sets[(k >> 1) & l2_mask]
            if k in l2_res:
                if entries2[0] != k:
                    entries2.remove(k)
                    entries2.insert(0, k)
                continue
            wlk_l[a] += 1
            l2_res.add(k)
            entries2.insert(0, k)
            if len(entries2) > l2_ways:
                l2_res.discard(entries2.pop())

        stats.l1_misses += np.asarray(l1m_l, dtype=np.int64)
        stats.walks += np.asarray(wlk_l, dtype=np.int64)
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "tlb.stream",
                stream=self._stream,
                engine=self.engine,
                accesses=int(trace.counts.sum()) if trace.counts.size else 0,
                l1_misses=sum(l1m_l),
                walks=sum(wlk_l),
            )
            self._stream += 1
