"""Address-translation hardware model.

- :mod:`repro.tlb.trace` — logical access streams emitted by workloads and
  their translation into page-granular TLB traces.
- :mod:`repro.tlb.tlb` — a set-associative, LRU TLB structure.
- :mod:`repro.tlb.hierarchy` — the paper's two-level hierarchy: split L1
  DTLB (separate structures per page size, Table 1) over a unified STLB,
  with per-data-structure miss attribution.
- :mod:`repro.tlb.engine` — the vectorized batch translation engine: a
  set-wise LRU decision procedure producing counts identical to the
  exact simulator, at a fraction of the per-lookup cost
  (docs/performance.md).
"""

from .trace import AccessStream, TlbTrace, merge_streams
from .tlb import SetAssociativeTlb
from .hierarchy import TranslationHierarchy, TranslationStats
from .engine import (
    TLB_ENGINES,
    BatchTranslationHierarchy,
    batch_engine_matches,
    make_hierarchy,
)

__all__ = [
    "AccessStream",
    "BatchTranslationHierarchy",
    "SetAssociativeTlb",
    "TLB_ENGINES",
    "TlbTrace",
    "TranslationHierarchy",
    "TranslationStats",
    "batch_engine_matches",
    "make_hierarchy",
    "merge_streams",
]
