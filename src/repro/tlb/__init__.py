"""Address-translation hardware model.

- :mod:`repro.tlb.trace` — logical access streams emitted by workloads and
  their translation into page-granular TLB traces.
- :mod:`repro.tlb.tlb` — a set-associative, LRU TLB structure.
- :mod:`repro.tlb.hierarchy` — the paper's two-level hierarchy: split L1
  DTLB (separate structures per page size, Table 1) over a unified STLB,
  with per-data-structure miss attribution.
"""

from .trace import AccessStream, TlbTrace, merge_streams
from .tlb import SetAssociativeTlb
from .hierarchy import TranslationHierarchy, TranslationStats

__all__ = [
    "AccessStream",
    "SetAssociativeTlb",
    "TlbTrace",
    "TranslationHierarchy",
    "TranslationStats",
    "merge_streams",
]
