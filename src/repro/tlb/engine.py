"""Vectorized batch translation engine.

Drop-in replacement for :class:`~repro.tlb.hierarchy.TranslationHierarchy`
that processes a whole coalesced lookup stream with NumPy set-wise passes
instead of a per-lookup Python loop, producing *bit-identical*
``accesses`` / ``l1_misses`` / ``walks`` counts.

Why this is exact
-----------------

A true-LRU set is *outcome independent*: every access leaves its key at
MRU whether it hit or missed, so the set's content after any prefix is
simply the ``ways`` most-recently-used distinct keys mapping to it, and

    hit(t)  <=>  reuse distance of t  <  ways

where the reuse distance is the number of *distinct* same-set keys
between an access and the previous access ``P(t)`` to the same key.  The
same holds for the STLB over the sub-stream of L1 misses (the L2 is only
probed and updated on an L1 miss), so the hierarchy decomposes into two
independent passes: L1 hit/miss per structure, then L2 over the L1-miss
sub-stream.

Reuse distances are counted through the first-occurrence identity: the
number of distinct keys in the window ``(P(t), t)`` equals the number of
positions ``y`` inside it whose own previous occurrence lies at or
before ``P(t)`` — each distinct key is counted exactly once, at its
first in-window appearance.  That turns hit/miss into window *counts*
over the already-computed previous-occurrence array:

1. *cold* (no previous occurrence): always a miss.
2. ``gap < ways`` (fewer than ``ways`` same-set lookups in between):
   a hit — the distinct count cannot reach ``ways``.
3. Everything else: in set-sorted coordinates each window is a
   contiguous slice, and position ``a + c`` is a first occurrence of a
   window starting at ``a`` iff its back-distance exceeds its depth,
   ``d[a + c] > c``.  A 1D column walk over the leading window
   columns counts short windows exactly, and a count reaching ``ways``
   in *any* subset of columns is a sound miss certificate for long
   windows (first occurrences only accumulate) — the dominant outcome
   in high-entropy streams.  The same count anchored at the window's
   *tail* is a mirror certificate; survivors go through geometrically
   widening matrix passes and the rare holdouts get exact per-query
   counts.

Cross-call state (the hierarchy is live across the workload's streams
and flushed on promotions) is carried by replaying each set's resident
keys, LRU-first, as uncounted warm-up lookups prepended to the batch.
Large batches are split into cache-sized chunks — exact under any
split, because the carried state replays between chunks.
"""

from __future__ import annotations

import numpy as np

from ..config import TlbConfig, TlbGeometry
from .hierarchy import MAX_ARRAY_IDS, TranslationHierarchy, TranslationStats
from .trace import TlbTrace, compress_trace

_CHUNK = 1 << 17
"""Lookups per internal batch: large enough to amortize pass setup,
small enough that a chunk's working arrays stay cache-resident."""

_iota_cache = np.empty(0, dtype=np.int32)


def _iota(n: int) -> np.ndarray:
    """Cached ``arange(n, dtype=int32)`` view (read-only use only)."""
    global _iota_cache
    if _iota_cache.size < n:
        _iota_cache = np.arange(
            max(n, _CHUNK + 8192), dtype=np.int32
        )
    return _iota_cache[:n]


def _stable_order(keys: np.ndarray) -> np.ndarray:
    """Stable ascending argsort of non-negative integer keys.

    NumPy's ``kind="stable"`` is a radix sort for 16-bit integers
    (O(n)) but a comparison sort for wider types, so sort 16 bits at a
    time, least-significant digit first.
    """
    if keys.size == 0:
        return np.empty(0, dtype=np.intp)
    if keys.dtype == np.uint16:
        return np.argsort(keys, kind="stable")
    hi = int(keys.max())
    if hi < (1 << 16):
        return np.argsort(keys.astype(np.uint16), kind="stable")
    order = np.argsort((keys & 0xFFFF).astype(np.uint16), kind="stable")
    shift = 16
    while (hi >> shift) > 0:
        digit = ((keys >> shift) & 0xFFFF).astype(np.uint16)
        order = order[np.argsort(digit[order], kind="stable")]
        shift += 16
    return order


class _BatchLru:
    """One set-associative structure simulated batch-at-a-time.

    ``key_shift``/``num_sets`` let a caller re-index the set bits: the
    default drops the page-size parity bit (``key >> 1``) like the
    exact structures do, while ``key_shift=0`` with doubled sets folds
    the parity bit *into* the set index — two identical-geometry L1s
    fused into one structure whose sets never interact.
    """

    def __init__(
        self,
        geometry: TlbGeometry,
        *,
        num_sets: int | None = None,
        key_shift: int = 1,
    ) -> None:
        self.geometry = geometry
        self.ways = geometry.ways
        self.num_sets = geometry.sets if num_sets is None else num_sets
        self.key_shift = key_shift
        self.set_mask = self.num_sets - 1
        # Per-set resident keys carried between batches as one flat
        # array: set-major ascending, LRU-first within each set — the
        # exact layout the warm-up prepend needs.
        self.state_keys = np.empty(0, dtype=np.int64)
        # Aggregate counters, mirroring SetAssociativeTlb bookkeeping.
        self.hits = 0
        self.misses = 0
        # Window-count buckets: smallest matrix width, and the widest
        # before queries fall back to per-query counting.  The first
        # bucket also serves as the long-window miss-certificate width.
        self.cap0 = max(16, 2 * self.ways)
        self.cap_max = 64 * self.cap0

    def flush(self) -> None:
        self.state_keys = np.empty(0, dtype=np.int64)

    def simulate(self, keys: np.ndarray) -> np.ndarray:
        """Return the boolean miss mask for ``keys`` (program order),
        updating carried per-set state exactly as sequential true-LRU
        access/insert would.

        Large batches are processed in cache-sized chunks: the engine
        is exact under any batch split (carried state replays each
        set's residents), chunked passes stay in cache instead of
        thrashing DRAM with multi-million-element scatters, and reuse
        windows are bounded by the chunk — a key evicted before a chunk
        boundary simply restarts cold, which is the same miss the full
        window would have produced.
        """
        n = keys.size
        if n > _CHUNK + (_CHUNK >> 1):
            out = np.empty(n, dtype=bool)
            for lo in range(0, n, _CHUNK):
                hi = min(n, lo + _CHUNK)
                out[lo:hi] = self._simulate_batch(keys[lo:hi])
            return out
        return self._simulate_batch(keys)

    def _simulate_batch(self, keys: np.ndarray) -> np.ndarray:
        n = keys.size
        if n == 0:
            return np.zeros(0, dtype=bool)
        ways = self.ways
        m0 = self.state_keys.size
        if m0:
            # Mixed-dtype concatenate promotes, so carried keys can
            # never be truncated by a narrower incoming batch.
            allk = np.concatenate([self.state_keys, keys])
        else:
            allk = keys
        mx = int(allk.max())
        if mx < 1 << 16:
            if allk.dtype != np.uint16:
                allk = allk.astype(np.uint16)
        elif mx < 1 << 31 and allk.dtype != np.int32:
            allk = allk.astype(np.int32)
        total = allk.size

        sidx = ((allk >> self.key_shift) & self.set_mask).astype(
            np.uint16
        )
        set_order = np.argsort(sidx, kind="stable")
        set_counts = np.bincount(sidx, minlength=self.num_sets)
        seg_start = np.concatenate(([0], np.cumsum(set_counts)))

        # Set-sorted layout: contiguous per-set subsequences, so every
        # reuse window is a contiguous slice and position differences
        # within a segment count intervening same-set lookups directly
        # (no per-segment rank needed).
        keys_ss = allk[set_order]

        # Previous occurrence of the same key, in set-sorted
        # coordinates: same key => same set, so one stable key sort of
        # the set-sorted stream pairs consecutive occurrences.
        key_order = _stable_order(keys_ss)
        sk = keys_ss[key_order]
        dup = np.flatnonzero(sk[1:] == sk[:-1])
        prev_pos = np.full(total, -1, dtype=np.int32)
        if dup.size:
            prev_pos[key_order[dup + 1]] = key_order[dup]

        # d = back-distance to the same key's previous occurrence; a
        # cold position's d reaches past the segment start, so it
        # qualifies at any window depth (as a first occurrence must).
        d_ss = _iota(total) - prev_pos
        cold = prev_pos < 0
        gap = d_ss - 1  # intervening same-set lookups
        miss_ss = cold.copy()  # cold => miss; hits need no write
        undecided = np.flatnonzero(~cold & (gap >= ways))
        if undecided.size:
            miss_ss[undecided] = self._resolve_windows(
                d_ss, gap[undecided], starts=prev_pos[undecided] + 1
            )

        # Batch-final occurrence of each distinct key: everything the
        # key sort already paired as having a later duplicate is not
        # one.  Sorted positions, so per-set residents are slices.
        last = np.ones(total, dtype=bool)
        last[key_order[dup]] = False
        self._extract_state(keys_ss, np.flatnonzero(last), seg_start)

        miss = np.empty(total, dtype=bool)
        miss[set_order] = miss_ss
        out = miss[m0:]
        nm = int(np.count_nonzero(out))
        self.misses += nm
        self.hits += out.size - nm
        return out

    def _resolve_windows(
        self,
        d_ss: np.ndarray,
        gaps: np.ndarray,
        starts: np.ndarray,
    ) -> np.ndarray:
        """Exactly decide hit/miss for lookups whose gap reaches the
        associativity, by counting distinct keys in their reuse windows
        (module docstring, steps 3-4).

        Every count reduces to one comparison form: position ``a + c``
        is the first occurrence of its key within a window starting at
        ``a`` iff its back-distance exceeds its depth, ``d > c``.  So a
        pass is a gather of the static ``d`` array plus a broadcast
        compare against ``arange(cap)`` — no per-query thresholds.
        Anchoring ``a`` at a *tail* of the window counts that
        sub-window's distinct keys, a mirror-image miss certificate.
        """
        ways = self.ways
        nq = gaps.size
        miss_out = np.zeros(nq, dtype=bool)

        # Leading-run pass: count just the first `ways` window columns
        # with plain 1D gathers — every window has at least that many
        # columns (gap >= ways here), so no mask, no matrix, and no
        # padding; column 0 always qualifies (d >= 1).  All-distinct
        # certifies a miss outright (the dominant case in high-entropy
        # streams), and gap == ways windows are decided exactly.
        if ways <= 16:
            cnt = np.ones(nq, dtype=np.uint8)
            idx = starts.copy()
            for c in range(1, ways):
                idx += 1
                cnt += d_ss[idx] > c
            certA = cnt >= ways
            miss_out[certA] = True
            done = certA | (gaps == ways)
            if bool(done.all()):
                return miss_out
            # Second tier: continue the column walk to 2*ways on the
            # survivors only.  These columns can fall past a short
            # window's end, so the depth test gains a gap mask (the pad
            # keeps the gather in bounds); a window of <= 2*ways
            # columns is now fully counted, and reaching `ways` still
            # certifies any longer window.
            pad = np.concatenate(
                (d_ss, np.zeros(self.cap_max, dtype=d_ss.dtype))
            )
            sel = np.flatnonzero(~done)
            scnt = cnt[sel].astype(np.int32)
            sgaps = gaps[sel]
            idx = starts[sel] + ways
            for c in range(ways, 2 * ways):
                scnt += (pad[idx] > c) & (c < sgaps)
                idx += 1
            sub = scnt >= ways
            miss_out[sel[sub]] = True
            done[sel] = sub | (sgaps <= 2 * ways)
        else:
            pad = np.concatenate(
                (d_ss, np.zeros(self.cap_max, dtype=d_ss.dtype))
            )
            done = np.zeros(nq, dtype=bool)
        if bool(done.all()):
            return miss_out

        # Matrix pass over the survivors: exact for short windows; for
        # longer ones a count already at `ways` is a sound miss
        # certificate (first occurrences only accumulate as the window
        # widens).  Pad keeps start + cap in bounds; the pad value 0
        # never exceeds a column offset.
        sel = np.flatnonzero(~done)
        cols = np.arange(self.cap0, dtype=np.int32)
        quals = (pad[starts[sel][:, None] + cols] > cols) & (
            cols[None, :] < gaps[sel][:, None]
        )
        is_miss = np.count_nonzero(quals, axis=1) >= ways
        miss_out[sel] = is_miss
        done[sel] = is_miss | (gaps[sel] <= self.cap0)

        if not bool(done.all()):
            # Mirror certificate: distinct keys bunched just before the
            # access (a burst after a long monotone run) escape the
            # prefix but not the tail sub-window.  Survivors have
            # gap > cap0, so the tail lies in-window: no mask, no pad.
            sel = np.flatnonzero(~done)
            anchor = starts[sel] + gaps[sel] - self.cap0
            tail = d_ss[anchor[:, None] + cols] > cols
            cert_idx = sel[np.count_nonzero(tail, axis=1) >= ways]
            miss_out[cert_idx] = True
            done[cert_idx] = True

        cap = self.cap0 * 4
        while cap <= self.cap_max:
            sel = np.flatnonzero(~done)
            if sel.size == 0:
                break
            cols = np.arange(cap, dtype=np.int32)
            quals = (pad[starts[sel][:, None] + cols] > cols) & (
                cols[None, :] < gaps[sel][:, None]
            )
            is_miss = np.count_nonzero(quals, axis=1) >= ways
            miss_out[sel] = is_miss
            done[sel] = is_miss | (gaps[sel] <= cap)
            cap *= 4
        # Survivors: very long windows dominated by re-references to a
        # few hot keys.  Count each outright; qualification is still
        # just distance-vs-depth.
        rest = np.flatnonzero(~done)
        if rest.size:
            iota = np.arange(int(gaps[rest].max()), dtype=d_ss.dtype)
            for i in rest:
                window = d_ss[starts[i] : starts[i] + gaps[i]]
                miss_out[i] = (
                    int(np.count_nonzero(window > iota[: window.size]))
                    >= ways
                )
        return miss_out

    # -- carried state ----------------------------------------------

    def _extract_state(
        self,
        keys_ss: np.ndarray,
        last_pos: np.ndarray,
        seg_start: np.ndarray,
    ) -> None:
        """Recover each set's resident keys: the content of a true-LRU
        set is its `ways` most recently used distinct keys — the
        highest-positioned batch-final occurrences in its segment.

        ``last_pos`` holds every batch-final occurrence position in
        ascending order, so each segment's residents are one slice
        (ascending position = LRU-first, the carried-state layout).
        Warm-up replay re-injects every carried key, so a set absent
        from the batch genuinely holds nothing.
        """
        ways = self.ways
        bounds = np.searchsorted(last_pos, seg_start)
        cnt = np.minimum(bounds[1:] - bounds[:-1], ways)
        total = int(cnt.sum())
        offs = np.cumsum(cnt) - cnt
        r = np.arange(total, dtype=np.int64) - np.repeat(offs, cnt)
        take = last_pos[np.repeat(bounds[1:] - cnt, cnt) + r]
        self.state_keys = keys_ss[take].astype(np.int64)


class BatchTranslationHierarchy:
    """Split L1 DTLB + unified STLB over batched NumPy passes.

    Interface-compatible with
    :class:`~repro.tlb.hierarchy.TranslationHierarchy` for everything
    the machine uses (``simulate`` / ``flush`` / ``tracer``) and
    produces bit-identical :class:`TranslationStats`.
    """

    engine = "batch"

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        if config.l1_base == config.l1_huge:
            # Identical L1 geometries: the parity bit can serve as an
            # extra set-index bit instead of a structure selector —
            # one fused structure with doubled sets behaves exactly
            # like the two split L1s (sets never interact), and the
            # per-chunk parity partition disappears entirely.
            self.l1_fused = _BatchLru(
                config.l1_base,
                num_sets=2 * config.l1_base.sets,
                key_shift=0,
            )
            self.l1_base = self.l1_huge = None
            self._l1_structures = (self.l1_fused,)
        else:
            self.l1_fused = None
            self.l1_base = _BatchLru(config.l1_base)
            self.l1_huge = _BatchLru(config.l1_huge)
            self._l1_structures = (self.l1_base, self.l1_huge)
        self.l2 = _BatchLru(config.l2)
        self.tracer = None
        self._stream = 0

    def flush(self) -> None:
        """Full shootdown of every level."""
        for structure in self._l1_structures:
            structure.flush()
        self.l2.flush()

    def _l1_groups(
        self, dk: np.ndarray
    ) -> tuple[tuple[_BatchLru, np.ndarray], ...]:
        """Distinct keys routed to their L1 structure."""
        if self.l1_fused is not None:
            return ((self.l1_fused, dk),)
        parity = (dk & 1) != 0
        return (
            (self.l1_base, dk[~parity]),
            (self.l1_huge, dk[parity]),
        )

    def _l1_closed(self, seen: np.ndarray, base: int) -> bool:
        """True if every L1 set's distinct keys fit within its ways."""
        dk = np.flatnonzero(seen) + base
        for structure, keys in self._l1_groups(dk):
            if keys.size == 0:
                continue
            sets = (keys >> structure.key_shift) & structure.set_mask
            counts = np.bincount(sets, minlength=structure.num_sets)
            if int(counts.max()) > structure.ways:
                return False
        return True

    def _closed_l1_decide(
        self, lk: np.ndarray, kmax: int
    ) -> "np.ndarray | None":
        """Whole-stream closed-sets fast path.

        If every L1 set's distinct keys — carried residents included —
        fit within its associativity, no L1 eviction can ever occur:
        once a key is resident it stays resident, so the only misses
        are the first occurrences of keys not already carried.  That
        reduces the entire L1 simulation to a few streaming passes over
        key-indexed tables — no sorting, no page-size partition (keys
        are unique across size classes, so one table serves both L1s).
        This is the regime huge-page-backed placements produce: a
        handful of distinct pages under constant ping-pong reuse.

        Small keys index the tables directly; otherwise the stream is
        rebased by its minimum key, which works whenever the key *span*
        fits a 2^16-entry table (page keys cluster within the process's
        mapped range, so huge-page streams qualify even on machines
        whose absolute page numbers are large).

        Returns the sorted positions of the L1 misses (first
        occurrences of non-carried keys, in program order), or None
        when any set can overflow — those streams go to the chunked
        engine.
        """
        state0 = [s.state_keys for s in self._l1_structures]
        hi = kmax
        for a in state0:
            if a.size:
                hi = max(hi, int(a.max()))
        if hi < (1 << 16):
            base = 0
            size = hi + 1
        else:
            lo = int(lk.min())
            for a in state0:
                if a.size:
                    lo = min(lo, int(a.min()))
            if hi - lo < (1 << 16):
                base = lo
                size = 1 << 16
            elif hi < (1 << 24):
                # Wide span but small absolute keys: a direct-indexed
                # table (≤16M entries) beats declining the fast path.
                base = 0
                size = hi + 1
            else:
                return None
        seen = np.zeros(size, dtype=bool)
        for a in state0:
            seen[a - base] = True
        # Screen on a short prefix first: open streams overflow their
        # sets within a few thousand lookups, long before a full-stream
        # table pass is worth paying for.
        pre = lk[: 1 << 14]
        seen[pre if base == 0 else np.subtract(pre, base, dtype=np.intp)] = (
            True
        )
        if not self._l1_closed(seen, base):
            return None
        idx = lk if base == 0 else np.subtract(lk, base, dtype=np.intp)
        seen[idx] = True
        if not self._l1_closed(seen, base):
            return None

        n = lk.size
        pos = np.full(size, -1, dtype=np.int32)
        pos[idx[::-1]] = _iota(n)[::-1]  # first occurrence wins
        # Carried keys are resident throughout, so they can never be a
        # counted first occurrence — mark them after the scatter so a
        # recurring carried key cannot reclaim a position.
        for a in state0:
            pos[a - base] = -2
        dkidx = np.flatnonzero(seen)
        fp = pos[dkidx]
        fp = fp[fp >= 0]
        fp.sort()  # program order; one miss per non-carried key

        # Exit state per structure: all of its distinct keys (nothing
        # was evicted), ordered by last access; carried keys never
        # re-accessed stay oldest, in carried order.
        for a in state0:
            pos[a - base] = np.arange(-a.size, 0, dtype=np.int32)
        pos[idx] = _iota(n)  # last occurrence wins
        dk = dkidx + base
        for structure, keys in self._l1_groups(dk):
            sets = (keys >> structure.key_shift) & structure.set_mask
            lp = pos[keys - base]
            order = np.argsort(lp, kind="stable")
            order = order[np.argsort(sets[order], kind="stable")]
            structure.state_keys = keys[order].astype(np.int64)
        nm = fp.size
        if self.l1_fused is not None:
            self.l1_fused.misses += nm
            self.l1_fused.hits += n - nm
        else:
            n_huge = int(np.count_nonzero(lk & 1))
            nm_huge = int(np.count_nonzero(lk[fp] & 1))
            self.l1_huge.misses += nm_huge
            self.l1_huge.hits += n_huge - nm_huge
            self.l1_base.misses += nm - nm_huge
            self.l1_base.hits += (n - n_huge) - (nm - nm_huge)
        return fp

    def simulate(self, trace: TlbTrace, stats: TranslationStats) -> None:
        """Run a compressed trace through the hierarchy, updating
        ``stats`` in place (same contract, and same resulting counts,
        as the exact simulator's loop).

        Streams whose L1 working set provably fits (huge-page-backed
        cells) are decided in one whole-stream pass; everything else
        runs chunk by chunk — page-size split, L1 probes, L2 over the
        L1-miss sub-stream, per-array attribution — so every
        intermediate array stays cache-resident, with LRU state carried
        across chunks exactly.
        """
        stats.accesses += trace.access_totals()
        lookup_keys, lookup_array_ids = trace.lookup_view()
        n = lookup_keys.size

        l1m = np.zeros(MAX_ARRAY_IDS, dtype=np.int64)
        wlk = np.zeros(MAX_ARRAY_IDS, dtype=np.int64)
        fp = None
        if n:
            kmax = int(lookup_keys.max())
            # Closed-sets fast path first, on the un-downcast keys: its
            # table passes index with the stream directly, so a narrow
            # dtype would only add hidden intp casts.
            fp = self._closed_l1_decide(lookup_keys, kmax)
        if fp is not None:
            if fp.size:
                miss_aids = lookup_array_ids[fp]
                l1m += np.bincount(miss_aids, minlength=MAX_ARRAY_IDS)
                walk_mask = self.l2.simulate(lookup_keys[fp])
                if bool(walk_mask.any()):
                    wlk += np.bincount(
                        miss_aids[walk_mask], minlength=MAX_ARRAY_IDS
                    )
            n = 0  # chunk loop skipped
        elif n:
            if kmax < 1 << 16 and lookup_keys.dtype != np.uint16:
                lookup_keys = lookup_keys.astype(np.uint16)
            elif (
                kmax < 1 << 31
                and lookup_keys.dtype.itemsize > 4
            ):
                lookup_keys = lookup_keys.astype(np.int32)
        for lo in range(0, n, _CHUNK):
            keys = lookup_keys[lo : lo + _CHUNK]
            aids = lookup_array_ids[lo : lo + _CHUNK]
            if self.l1_fused is not None:
                miss = self.l1_fused.simulate(keys)
            else:
                huge = (keys & 1) != 0
                miss = np.empty(keys.size, dtype=bool)
                for structure, mask in (
                    (self.l1_base, ~huge),
                    (self.l1_huge, huge),
                ):
                    if bool(mask.any()):
                        miss[mask] = structure.simulate(keys[mask])
            if not bool(miss.any()):
                continue
            miss_aids = aids[miss]
            l1m += np.bincount(miss_aids, minlength=MAX_ARRAY_IDS)
            walk_mask = self.l2.simulate(keys[miss])
            if bool(walk_mask.any()):
                wlk += np.bincount(
                    miss_aids[walk_mask], minlength=MAX_ARRAY_IDS
                )
        stats.l1_misses += l1m
        stats.walks += wlk

        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "tlb.stream",
                stream=self._stream,
                engine=self.engine,
                accesses=(
                    int(trace.counts.sum()) if trace.counts.size else 0
                ),
                l1_misses=int(l1m.sum()),
                walks=int(wlk.sum()),
            )
            self._stream += 1


# ----------------------------------------------------------------------
# Engine selection
# ----------------------------------------------------------------------

TLB_ENGINES = ("exact", "batch", "auto")

_auto_cache: dict[tuple, bool] = {}


def _probe_trace(config: TlbConfig, seed: int = 20220904) -> TlbTrace:
    """Deterministic probe exercising both page-size classes, set
    aliasing, capacity churn and ping-pong reuse."""
    rng = np.random.default_rng(seed)
    span = 4 * config.l2.entries
    pages = rng.integers(0, max(span, 8), size=4096)
    size_class = (rng.random(4096) < 0.25).astype(np.int64)
    keys = (pages << 1) | size_class
    hot = keys[: 8 * max(config.l1_base.ways, 1)]
    keys[rng.integers(0, keys.size, size=keys.size // 3)] = hot[
        rng.integers(0, hot.size, size=keys.size // 3)
    ]
    array_ids = rng.integers(0, 4, size=keys.size).astype(np.uint8)
    return compress_trace(keys, array_ids)


def batch_engine_matches(config: TlbConfig) -> bool:
    """Self-check: run the probe trace through both engines (split in
    two batches, re-run with a flush in between) and compare counts.
    Cached per TLB geometry."""
    cache_key = (
        config.l1_base.entries,
        config.l1_base.ways,
        config.l1_huge.entries,
        config.l1_huge.ways,
        config.l2.entries,
        config.l2.ways,
    )
    hit = _auto_cache.get(cache_key)
    if hit is not None:
        return hit
    trace = _probe_trace(config)
    half = trace.keys.size // 2
    parts = [
        TlbTrace(
            trace.keys[:half],
            trace.counts[:half],
            trace.array_ids[:half],
        ),
        TlbTrace(
            trace.keys[half:],
            trace.counts[half:],
            trace.array_ids[half:],
        ),
    ]
    exact = TranslationHierarchy(config)
    batch = BatchTranslationHierarchy(config)
    ok = True
    for flush_between in (False, True):
        s_exact = TranslationStats()
        s_batch = TranslationStats()
        for part in parts:
            exact.simulate(part, s_exact)
            batch.simulate(part, s_batch)
            if flush_between:
                exact.flush()
                batch.flush()
        ok = ok and (
            np.array_equal(s_exact.accesses, s_batch.accesses)
            and np.array_equal(s_exact.l1_misses, s_batch.l1_misses)
            and np.array_equal(s_exact.walks, s_batch.walks)
        )
    _auto_cache[cache_key] = ok
    return ok


def make_hierarchy(
    engine: str, config: TlbConfig
) -> "TranslationHierarchy | BatchTranslationHierarchy":
    """Build the requested translation engine.

    ``auto`` selects the batch engine after a one-time equivalence
    self-check against the exact simulator on a probe trace, falling
    back to ``exact`` if the check fails (counts must never drift).
    """
    if engine == "exact":
        return TranslationHierarchy(config)
    if engine == "batch":
        return BatchTranslationHierarchy(config)
    if engine == "auto":
        if batch_engine_matches(config):
            return BatchTranslationHierarchy(config)
        return TranslationHierarchy(config)
    raise ValueError(
        f"unknown tlb engine {engine!r}; expected one of {TLB_ENGINES}"
    )
