"""A set-associative TLB with true-LRU replacement.

This class provides the reference object API used by unit and property
tests; the batch simulation hot path in :mod:`repro.tlb.hierarchy`
manipulates the same ``sets`` representation directly for speed (lists
ordered MRU-first), so the two always agree.
"""

from __future__ import annotations

from ..config import TlbGeometry


class SetAssociativeTlb:
    """One TLB structure: ``geometry.sets`` sets of ``geometry.ways``
    entries, LRU within each set.

    Entries are opaque integer *keys*; the set index is taken from the
    key's page-number bits (``key >> 1``, see :mod:`repro.tlb.trace`).
    """

    def __init__(self, geometry: TlbGeometry) -> None:
        self.geometry = geometry
        self.set_mask = geometry.sets - 1
        self.sets: list[list[int]] = [[] for _ in range(geometry.sets)]
        # Hash view of every key currently cached, kept in sync by all
        # mutators.  Membership tests are O(1) instead of a set-list
        # scan, so a hit needs exactly one list scan (the LRU reorder)
        # and a miss needs none — the batch loop in
        # :mod:`repro.tlb.hierarchy` leans on this.
        self.resident: set[int] = set()
        self.hits = 0
        self.misses = 0

    def set_index(self, key: int) -> int:
        """Set index for a packed page key."""
        return (key >> 1) & self.set_mask

    def access(self, key: int) -> bool:
        """Look up ``key``; on miss, insert it (filling from L2/walk is
        the hierarchy's concern).  Returns True on hit.

        Maintains LRU: hits move the entry to the MRU position, misses
        insert at MRU and evict the LRU entry if the set is full.
        """
        entries = self.sets[(key >> 1) & self.set_mask]
        if key in self.resident:
            if entries[0] != key:
                entries.remove(key)
                entries.insert(0, key)
            self.hits += 1
            return True
        self.resident.add(key)
        entries.insert(0, key)
        if len(entries) > self.geometry.ways:
            self.resident.discard(entries.pop())
        self.misses += 1
        return False

    def probe(self, key: int) -> bool:
        """Check presence without updating LRU state or counters."""
        return key in self.resident

    def insert(self, key: int) -> int | None:
        """Insert ``key`` at MRU; returns the evicted key, if any."""
        entries = self.sets[(key >> 1) & self.set_mask]
        if key in self.resident:
            entries.remove(key)
        else:
            self.resident.add(key)
        entries.insert(0, key)
        if len(entries) > self.geometry.ways:
            evicted = entries.pop()
            self.resident.discard(evicted)
            return evicted
        return None

    def invalidate(self, key: int) -> bool:
        """Remove ``key`` (TLB shootdown for one page); True if present."""
        if key in self.resident:
            self.resident.discard(key)
            self.sets[(key >> 1) & self.set_mask].remove(key)
            return True
        return False

    def flush(self) -> None:
        """Invalidate every entry (full shootdown)."""
        for entries in self.sets:
            entries.clear()
        self.resident.clear()

    @property
    def occupancy(self) -> int:
        """Number of valid entries."""
        return sum(len(entries) for entries in self.sets)

    @property
    def accesses(self) -> int:
        """Total lookups through :meth:`access`."""
        return self.hits + self.misses

    def reset_counters(self) -> None:
        """Zero hit/miss counters without flushing contents."""
        self.hits = 0
        self.misses = 0
