"""Simulated memory-management substrate.

This subpackage models the parts of the Linux memory-management stack that
the paper's characterization exercises:

- :mod:`repro.mem.physical` — per-NUMA-node physical frame map with
  movable/non-movable/pinned mobility classes, huge-page-region accounting,
  compaction and reclaim.
- :mod:`repro.mem.vmm` — per-process virtual address spaces, VMAs, demand
  paging and ``madvise``.
- :mod:`repro.mem.thp` — a Linux-style transparent-huge-page policy engine
  (fault-time allocation, khugepaged promotion, demotion).
- :mod:`repro.mem.frag` / :mod:`repro.mem.memhog` — the paper's memory
  fragmentation and memory pressure tools.
- :mod:`repro.mem.page_cache` — single-use page-cache interference (§4.3).
- :mod:`repro.mem.swap` — the oversubscription cliff.
"""

from .physical import FrameState, NodeMemory, PhysicalMemory
from .stats import KernelLedger
from .thp import ThpMode, ThpPolicy
from .vmm import VirtualMemoryManager, Vma
from .frag import Fragmenter
from .heuristics import (
    BloatControlManager,
    HotnessManager,
    HugePageManager,
    UtilizationManager,
)
from .hugetlb import HugetlbPool
from .memhog import Memhog
from .noise import BackgroundNoise
from .page_cache import PageCache
from .profiler import PageProfiler
from .swap import SwapDevice

__all__ = [
    "BackgroundNoise",
    "BloatControlManager",
    "FrameState",
    "Fragmenter",
    "HotnessManager",
    "HugePageManager",
    "HugetlbPool",
    "KernelLedger",
    "Memhog",
    "NodeMemory",
    "PageCache",
    "PageProfiler",
    "PhysicalMemory",
    "SwapDevice",
    "ThpMode",
    "ThpPolicy",
    "UtilizationManager",
    "Vma",
    "VirtualMemoryManager",
]
