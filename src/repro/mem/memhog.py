"""The paper's memory-pressure tool: ``memhog`` + ``mlock``.

§4.3.1: "*we utilize the memhog program to occupy a specified amount of
memory M on the same NUMA node as the application ... To prevent the OS
from swapping out memory allocated by memhog, we use mlock to pin the
program's memory in physical memory.*"

:class:`Memhog` allocates and pins frames so they can be neither migrated
by compaction, reclaimed, nor swapped — precisely the residual-pressure
state the paper's constrained-memory experiments set up.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .physical import FrameState, NodeMemory


class Memhog:
    """Occupy and pin a fixed amount of memory on one node."""

    def __init__(self, node: NodeMemory) -> None:
        self.node = node
        self.owner_id = node.register_owner(self)
        self.frames: np.ndarray = np.empty(0, dtype=np.int64)

    def occupy_bytes(self, num_bytes: int) -> int:
        """Pin ``num_bytes`` of memory; returns the number of frames.

        Frames are taken broken-regions-first so the *remaining* free
        memory stays as contiguous as possible — matching the paper's
        setup where memhog runs on an otherwise idle node and the leftover
        memory is contiguous ("limited but large contiguous chunks are
        available") until ``frag`` is applied.
        """
        if num_bytes < 0:
            raise ConfigError(f"cannot occupy negative bytes: {num_bytes}")
        page = self.node.config.pages.base_page_size
        count = num_bytes // page
        if count == 0:
            return 0
        frames = self.node.alloc_frames(
            count, self.owner_id, state=FrameState.MOVABLE
        )
        self.node.pin_frames(frames)  # mlock
        self.frames = np.concatenate([self.frames, frames])
        return count

    def leave_free_bytes(self, free_bytes: int) -> int:
        """Occupy everything except ``free_bytes`` of the node's memory.

        This is the paper's usage pattern: "to constrain BFS on Kronecker
        (8.5GB footprint) by 1x, run memhog with 55.5GB on the 64GB node" —
        i.e. leave exactly WSS + Δ free.  Returns frames pinned.
        """
        current_free = self.node.free_bytes
        to_occupy = max(0, current_free - free_bytes)
        return self.occupy_bytes(to_occupy)

    def release(self) -> None:
        """Unpin and free all hogged memory."""
        if self.frames.size:
            self.node.free_frames(self.frames)
            self.frames = np.empty(0, dtype=np.int64)

    # FrameOwner protocol: pinned pages are never migrated or reclaimed.
    def relocate_frame(self, old_frame: int, new_frame: int) -> None:  # pragma: no cover
        raise AssertionError("pinned (mlocked) pages cannot be migrated")

    def reclaim_frame(self, frame: int) -> None:  # pragma: no cover
        raise AssertionError("pinned (mlocked) pages cannot be reclaimed")
