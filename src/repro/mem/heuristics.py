"""Heuristic huge-page managers: the state-of-the-art baselines.

The paper's related-work section (§6) contrasts its programmer-guided
approach with kernel-side heuristic managers:

- **Ingens-style** (`UtilizationManager`): promote a region once enough
  of its base pages have been touched (a utilization threshold), in
  address order, rate-limited per pass.  Utilization says nothing about
  *access frequency*, which is why it spends huge pages on the
  sequentially-touched CSR arrays as readily as on the hot property
  array.
- **HawkEye-style** (`HotnessManager`): rank candidate regions by
  observed access counts and promote the hottest first, rate-limited
  per pass.  With an exact access signal this is the strongest
  app-unaware policy — it converges on the property array, but only
  after paying profiling latency and promotion copies at run time,
  whereas the programmer-guided plan had the huge pages in place at
  initialization.

Managers run between workload iterations (the paper's khugepaged-like
asynchrony): the machine calls :meth:`HugePageManager.on_iteration`
after each simulated access stream, and promotions invalidate the TLB.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Protocol

import numpy as np

from ..config import MachineConfig
from .profiler import PageProfiler
from .vmm import Vma, VirtualMemoryManager


class ManagedProcess(Protocol):
    """What a manager needs to see of the running process (duck-typed to
    avoid a dependency cycle with :mod:`repro.machine.process`)."""

    vmm: VirtualMemoryManager
    vma_by_array: dict[int, Vma]


class HugePageManager(ABC):
    """Interface for run-time huge-page management policies."""

    def __init__(self, promotions_per_pass: int = 8) -> None:
        self.promotions_per_pass = promotions_per_pass
        self.total_promotions = 0
        self.total_demotions = 0

    def attach(
        self,
        process: ManagedProcess,
        profiler: PageProfiler,
        config: MachineConfig,
    ) -> None:
        """Bind to a process at the start of its run."""
        self.process = process
        self.vmm = process.vmm
        self.profiler = profiler
        self.config = config

    @abstractmethod
    def candidate_chunks(self, vma: Vma) -> np.ndarray:
        """Chunk indices to consider for promotion, in policy order."""

    def on_iteration(self) -> int:
        """One management pass; returns the number of promotions.

        Promotes up to ``promotions_per_pass`` eligible chunks across
        all tracked VMAs, in the policy's preference order, stopping
        early when huge regions run out.
        """
        promoted = 0
        for vma in list(self.vmm.iter_vmas()):
            if promoted >= self.promotions_per_pass:
                break
            for chunk in self.candidate_chunks(vma):
                if promoted >= self.promotions_per_pass:
                    break
                chunk = int(chunk)
                if not self._promotable(vma, chunk):
                    continue
                if not self.vmm.promote_chunk(vma, chunk):
                    return promoted  # no regions left anywhere
                promoted += 1
                self.total_promotions += 1
        return promoted

    def _promotable(self, vma: Vma, chunk: int) -> bool:
        if vma.huge_region[chunk] >= 0:
            return False
        if not vma.chunk_is_full(chunk):
            return False
        pages = vma.chunk_pages(chunk)
        return bool((vma.frame[pages] >= 0).all())


class UtilizationManager(HugePageManager):
    """Ingens-style: promote well-utilized regions in address order."""

    def __init__(
        self,
        utilization_threshold: float = 0.9,
        promotions_per_pass: int = 8,
    ) -> None:
        super().__init__(promotions_per_pass)
        self.utilization_threshold = utilization_threshold

    def candidate_chunks(self, vma: Vma) -> np.ndarray:
        util = self.profiler.chunk_utilization(vma)
        return np.flatnonzero(util >= self.utilization_threshold)


class HotnessManager(HugePageManager):
    """HawkEye-style: promote the most-accessed regions first."""

    def __init__(
        self,
        min_accesses: int = 1,
        promotions_per_pass: int = 8,
    ) -> None:
        super().__init__(promotions_per_pass)
        self.min_accesses = min_accesses

    def candidate_chunks(self, vma: Vma) -> np.ndarray:
        counts = self.profiler.chunk_counts(vma)
        order = self.profiler.hottest_chunks(vma)
        return order[counts[order] >= self.min_accesses]

    def on_iteration(self) -> int:
        """Rank across *all* VMAs jointly (HawkEye's global hotness
        list), then promote the global hottest."""
        entries: list[tuple[int, Vma, int]] = []
        for vma in self.vmm.iter_vmas():
            counts = self.profiler.chunk_counts(vma)
            for chunk in np.flatnonzero(counts >= self.min_accesses):
                chunk = int(chunk)
                if self._promotable(vma, chunk):
                    entries.append((int(counts[chunk]), vma, chunk))
        entries.sort(key=lambda item: -item[0])
        promoted = 0
        for _, vma, chunk in entries[: self.promotions_per_pass]:
            if not self.vmm.promote_chunk(vma, chunk):
                break
            promoted += 1
            self.total_promotions += 1
        return promoted


class BloatControlManager(HotnessManager):
    """HawkEye-style promotion plus bloat control: demote huge pages
    whose utilization fell below a threshold so their frames can be
    reclaimed — the memory-bloat mitigation of §6's related work."""

    def __init__(
        self,
        min_accesses: int = 1,
        promotions_per_pass: int = 8,
        demote_utilization: float = 0.25,
    ) -> None:
        super().__init__(min_accesses, promotions_per_pass)
        self.demote_utilization = demote_utilization

    def on_iteration(self) -> int:
        for vma in list(self.vmm.iter_vmas()):
            util = self.profiler.chunk_utilization(vma)
            demoted = self.vmm.demote_underutilized(
                vma, util, self.demote_utilization
            )
            self.total_demotions += demoted
        return super().on_iteration()
