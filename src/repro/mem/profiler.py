"""Page-access profiling.

The paper's related work (Ingens, HawkEye) manages huge pages from
*observed access behaviour*: utilization bits and access frequencies
tracked by the kernel.  :class:`PageProfiler` provides that signal in
the simulator — per-base-page and per-huge-chunk access counts per VMA,
accumulated from the same compressed TLB traces the hierarchy consumes —
and feeds both the heuristic managers (:mod:`repro.mem.heuristics`) and
the online autotuner (:mod:`repro.core.autotuner`).

Counts are exact (every access is simulated), which makes the heuristic
baselines *stronger* than their real implementations: if exact-signal
Ingens/HawkEye still lose to the programmer-guided plan, sampling-based
ones only lose harder.
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..tlb.trace import TlbTrace
from ..mem.vmm import Vma


class PageProfiler:
    """Accumulates per-page access counts for a set of VMAs."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self._counts: dict[int, np.ndarray] = {}
        self._start_vpn: dict[int, int] = {}
        self._start_hvpn: dict[int, int] = {}
        self._vmas: dict[int, Vma] = {}
        self.total_observed = 0

    def track(self, vma: Vma) -> None:
        """Register a mapping for profiling."""
        pages = self.config.pages
        self._counts[vma.vma_id] = np.zeros(vma.npages, dtype=np.int64)
        self._start_vpn[vma.vma_id] = vma.start >> pages.base_shift
        self._start_hvpn[vma.vma_id] = vma.start >> pages.huge_shift
        self._vmas[vma.vma_id] = vma

    def observe(self, trace: TlbTrace, vma_of_array: dict[int, Vma]) -> None:
        """Fold one compressed trace into the counters.

        Huge-mapped accesses are attributed to the chunk's first base
        page (the profiler reports at chunk granularity for huge pages,
        matching what real hardware access bits can tell the kernel).
        """
        fph = self.config.pages.frames_per_huge
        keys = trace.keys
        counts = trace.counts
        aids = trace.array_ids
        for array_id in np.unique(aids):
            vma = vma_of_array.get(int(array_id))
            if vma is None or vma.vma_id not in self._counts:
                continue
            mask = aids == array_id
            k = keys[mask]
            c = counts[mask]
            huge = (k & 1) == 1
            store = self._counts[vma.vma_id]
            base_pages = (k[~huge] >> 1) - self._start_vpn[vma.vma_id]
            np.add.at(store, base_pages, c[~huge])
            if huge.any():
                chunk_pages = (
                    (k[huge] >> 1) - self._start_hvpn[vma.vma_id]
                ) * fph
                np.add.at(store, chunk_pages, c[huge])
        self.total_observed += int(counts.sum())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def page_counts(self, vma: Vma) -> np.ndarray:
        """Access count per base page of ``vma``."""
        return self._counts[vma.vma_id]

    def chunk_counts(self, vma: Vma) -> np.ndarray:
        """Access count per huge chunk of ``vma``."""
        fph = self.config.pages.frames_per_huge
        counts = self._counts[vma.vma_id]
        padded = np.zeros(vma.nchunks * fph, dtype=np.int64)
        padded[: counts.size] = counts
        return padded.reshape(vma.nchunks, fph).sum(axis=1)

    def chunk_utilization(self, vma: Vma) -> np.ndarray:
        """Fraction of each chunk's base pages that were accessed at all
        — the Ingens-style utilization signal.  Chunks currently mapped
        huge report 1.0 when touched (per-subpage residency is invisible
        inside a THP, as on real hardware)."""
        fph = self.config.pages.frames_per_huge
        counts = self._counts[vma.vma_id]
        touched = np.zeros(vma.nchunks * fph, dtype=np.float64)
        touched[: counts.size] = counts > 0
        util = touched.reshape(vma.nchunks, fph).mean(axis=1)
        huge_touched = (self.chunk_counts(vma) > 0) & (
            vma.huge_region >= 0
        )
        util[huge_touched] = 1.0
        return util

    def hottest_chunks(self, vma: Vma) -> np.ndarray:
        """Chunk indices of ``vma`` sorted by access count, hottest
        first — the HawkEye-style promotion order."""
        return np.argsort(-self.chunk_counts(vma), kind="stable")

    def reset(self) -> None:
        """Zero all counters (start of a new profiling window)."""
        for counts in self._counts.values():
            counts[:] = 0
        self.total_observed = 0
