"""The paper's ``frag`` tool: controlled non-movable fragmentation.

§4.4.1 describes the mechanism precisely: allocate huge-page regions until
F% of the *available* memory is covered, split each region into base
pages, free every page except the first, and leave that first page
allocated **non-movable** (``alloc_pages_node`` without ``__GFP_MOVABLE``).

The result: F% of available memory contains no contiguous huge-page-sized
free region, and — because the surviving page is non-movable — compaction
can never repair it.  This is exactly the fragmentation state this class
produces on the simulated frame map.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, OutOfMemoryError
from .physical import FrameState, NodeMemory


class Fragmenter:
    """Fragment a node's free memory with non-movable sentinel pages."""

    def __init__(self, node: NodeMemory) -> None:
        self.node = node
        self.owner_id = node.register_owner(self)
        self.sentinel_frames: np.ndarray = np.empty(0, dtype=np.int64)

    def fragment(self, level: float) -> int:
        """Fragment ``level`` (0.0–1.0) of the currently free memory.

        Returns the number of regions fragmented.  Following the paper's
        tool, regions are taken greedily from fully free regions only; the
        call must happen while the target memory is still unfragmented
        (i.e. right after ``memhog`` sets up memory pressure).

        Raises:
            ConfigError: if ``level`` is outside [0, 1].
            OutOfMemoryError: if fewer pristine regions exist than the
                requested level requires.
        """
        if not 0.0 <= level <= 1.0:
            raise ConfigError(f"fragmentation level must be in [0,1], got {level}")
        if level == 0.0:
            return 0
        node = self.node
        fpr = node.frames_per_region
        free_frames = node.free_frame_count
        target_frames = int(free_frames * level)
        regions_needed = target_frames // fpr
        counts = node.region_free_counts()
        pristine = np.flatnonzero(counts == fpr)
        if pristine.size < regions_needed:
            raise OutOfMemoryError(
                f"need {regions_needed} pristine regions to fragment "
                f"{level:.0%} of free memory, only {pristine.size} exist"
            )
        sentinels = []
        for region in pristine[:regions_needed]:
            frames = node.region_frames(int(region))
            first = frames.start
            # Claim the whole region, then free all but the first page,
            # leaving a non-movable sentinel (the paper's mechanism).
            node.state[frames] = int(FrameState.NONMOVABLE)
            node.owner_id[frames] = self.owner_id
            rest = np.arange(first + 1, frames.stop, dtype=np.int64)
            node.free_frames(rest)
            sentinels.append(first)
        self.sentinel_frames = np.concatenate(
            [self.sentinel_frames, np.array(sentinels, dtype=np.int64)]
        )
        return regions_needed

    def release(self) -> None:
        """Free all sentinel pages (undo the fragmentation)."""
        if self.sentinel_frames.size:
            self.node.free_frames(self.sentinel_frames)
            self.sentinel_frames = np.empty(0, dtype=np.int64)

    # FrameOwner protocol: sentinels are non-movable and non-reclaimable,
    # so neither callback should ever fire.
    def relocate_frame(self, old_frame: int, new_frame: int) -> None:  # pragma: no cover
        raise AssertionError("non-movable sentinel pages cannot be migrated")

    def reclaim_frame(self, frame: int) -> None:  # pragma: no cover
        raise AssertionError("non-movable sentinel pages cannot be reclaimed")
