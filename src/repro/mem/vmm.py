"""Virtual memory manager: address spaces, VMAs, demand paging, madvise.

One :class:`VirtualMemoryManager` models the address space of one process
bound (``numactl --membind``) to one NUMA node.  Virtual memory areas
(:class:`Vma`) are created with :meth:`VirtualMemoryManager.mmap`, advised
with :meth:`~VirtualMemoryManager.madvise_huge`, and populated with
:meth:`~VirtualMemoryManager.touch` — which simulates the first-touch
fault storm of the application's initialization phase, consulting the THP
policy chunk by chunk exactly as the kernel's fault handler does.

Page-size state is tracked per base page so the TLB model can classify
every access.  Swapped-out pages are marked and transparently faulted back
in by the machine's access loop, which reproduces the paper's
oversubscription cliff (§4.3.1).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..config import MachineConfig
from ..errors import AddressError, AllocationError, OutOfMemoryError
from ..faults.sites import FaultSite
from ..policy.hooks import DemoteCandidate, FaultContext, PromotionCandidate
from ..policy.view import PolicyView
from .physical import NodeMemory
from .thp import ThpPolicy

FRAME_UNMAPPED = -1
"""Sentinel in ``Vma.frame``: page never touched."""

FRAME_SWAPPED = -2
"""Sentinel in ``Vma.frame``: page resident on the swap device."""


class Vma:
    """One virtual memory area (an anonymous mapping).

    Attributes:
        name: label used in reports ("property_array", ...).
        start: virtual start address; always huge-page aligned.
        length: requested length in bytes.
        npages: number of base pages covering the mapping.
        nchunks: number of huge-page-sized chunks covering the mapping
            (the last chunk may be partial and is never huge-eligible
            unless it is full).
        frame: per-base-page physical frame (or a ``FRAME_*`` sentinel).
            For huge-mapped pages this holds the page's frame *within* the
            huge region so compaction bookkeeping stays uniform.
        huge_region: per-chunk physical region index or -1.
        is_huge: per-base-page flag, kept consistent with ``huge_region``.
        advised: per-chunk ``MADV_HUGEPAGE`` flag.
    """

    def __init__(
        self,
        vma_id: int,
        name: str,
        start: int,
        length: int,
        base_page_size: int,
        frames_per_huge: int,
    ) -> None:
        self.vma_id = vma_id
        self.name = name
        self.start = start
        self.length = length
        self._base_page_size = base_page_size
        self._frames_per_huge = frames_per_huge
        self.npages = -(-length // base_page_size)
        self.nchunks = -(-self.npages // frames_per_huge)
        self.frame = np.full(self.npages, FRAME_UNMAPPED, dtype=np.int64)
        self.huge_region = np.full(self.nchunks, -1, dtype=np.int64)
        self.is_huge = np.zeros(self.npages, dtype=bool)
        self.advised = np.zeros(self.nchunks, dtype=bool)
        # chunk -> HugetlbPool for chunks backed by an explicit
        # reservation (those regions return to the pool on unmap and
        # are never demoted or swapped).
        self.pool_regions: dict[int, object] = {}

    # ------------------------------------------------------------------

    def chunk_pages(self, chunk: int) -> slice:
        """Base-page index range covered by huge chunk ``chunk``."""
        lo = chunk * self._frames_per_huge
        return slice(lo, min(lo + self._frames_per_huge, self.npages))

    def chunk_is_full(self, chunk: int) -> bool:
        """Whether the chunk spans a complete huge page worth of pages."""
        pages = self.chunk_pages(chunk)
        return pages.stop - pages.start == self._frames_per_huge

    @property
    def end(self) -> int:
        """One past the last mapped virtual address."""
        return self.start + self.length

    @property
    def resident_pages(self) -> int:
        """Base pages currently backed by physical memory."""
        return int(np.count_nonzero(self.frame >= 0) )

    @property
    def huge_chunk_count(self) -> int:
        """Number of chunks currently backed by huge pages."""
        return int(np.count_nonzero(self.huge_region >= 0))

    @property
    def huge_backed_bytes(self) -> int:
        """Bytes of the mapping backed by huge pages."""
        return (
            self.huge_chunk_count
            * self._frames_per_huge
            * self._base_page_size
        )

    @property
    def huge_backed_fraction(self) -> float:
        """Fraction of the mapping's pages that live in huge pages."""
        if self.npages == 0:
            return 0.0
        return float(np.count_nonzero(self.is_huge)) / self.npages

    @property
    def swapped_pages(self) -> int:
        """Base pages currently on the swap device."""
        return int(np.count_nonzero(self.frame == FRAME_SWAPPED))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Vma({self.name!r}, start={self.start:#x}, "
            f"length={self.length}, huge_chunks={self.huge_chunk_count})"
        )


class VirtualMemoryManager:
    """Address space of one simulated process.

    The VMM registers itself as a frame owner with its NUMA node so that
    compaction can migrate its pages (updating the page tables here) —
    anonymous pages are movable but not reclaimable.
    """

    def __init__(
        self,
        node: NodeMemory,
        policy: ThpPolicy,
        config: MachineConfig,
    ) -> None:
        self.node = node
        self.policy = policy
        self.config = config
        self.sanitizer = node.sanitizer
        self.tracer = node.tracer
        # Read-only window the policy hooks observe the machine through
        # (docs/policies.md); shared by every decision point below.
        self.policy_view = PolicyView(self)
        self.owner_id = node.register_owner(self)
        self.vmas: list[Vma] = []
        self._next_vma_id = 0
        self._next_addr = config.pages.huge_page_size  # skip page 0
        # Reverse map frame -> (vma, page index) for compaction callbacks.
        self._frame_map: dict[int, tuple[Vma, int]] = {}
        # FIFO of (vma, page) in touch order: swap victim selection.
        self._touch_order: list[tuple[Vma, int]] = []
        self._swap_hand = 0
        self.swap_device = None  # attached by the machine when enabled

    # ------------------------------------------------------------------
    # Mapping lifecycle
    # ------------------------------------------------------------------

    def mmap(self, name: str, length: int) -> Vma:
        """Create an anonymous mapping of ``length`` bytes.

        The mapping is huge-page aligned (as glibc's allocator arranges
        for large allocations) so that every full chunk is THP-eligible.
        No physical memory is allocated until the pages are touched.
        """
        if length <= 0:
            raise AllocationError(f"mmap length must be positive, got {length}")
        pages = self.config.pages
        start = self._next_addr
        vma = Vma(
            self._next_vma_id,
            name,
            start,
            length,
            pages.base_page_size,
            pages.frames_per_huge,
        )
        self._next_vma_id += 1
        span = vma.nchunks * pages.huge_page_size
        # Leave one guard huge page between mappings.
        self._next_addr = start + span + pages.huge_page_size
        self.vmas.append(vma)
        return vma

    def madvise_huge(
        self, vma: Vma, offset: int = 0, length: Optional[int] = None
    ) -> None:
        """``madvise(addr+offset, length, MADV_HUGEPAGE)``.

        Marks every chunk that *overlaps* the byte range as advised, which
        matches the kernel's VMA-flag granularity after range splitting.
        """
        if length is None:
            length = vma.length - offset
        if offset < 0 or length < 0 or offset + length > vma.length:
            raise AddressError(
                f"madvise range [{offset}, {offset + length}) outside "
                f"{vma.name} of length {vma.length}"
            )
        if length == 0:
            return
        huge = self.config.pages.huge_page_size
        first = offset // huge
        last = (offset + length - 1) // huge
        vma.advised[first : last + 1] = True

    def unmap(self, vma: Vma) -> None:
        """Release the mapping and all physical memory backing it.

        hugetlbfs-backed chunks return to their reservation pool instead
        of the general free pool."""
        resident = vma.frame[vma.frame >= 0]
        for chunk in range(vma.nchunks):
            region = int(vma.huge_region[chunk])
            if region >= 0:
                pool = vma.pool_regions.pop(chunk, None)
                if pool is not None:
                    pool.give_back(region)
                else:
                    self.node.free_huge_region(region)
                vma.huge_region[chunk] = -1
        base_frames = vma.frame[(vma.frame >= 0) & ~vma.is_huge]
        if base_frames.size:
            self.node.free_frames(base_frames)
        # Huge-backed frames live in the reverse map too (installed by
        # _install_huge), so drop every resident frame — not just the
        # base-mapped ones — or stale entries outlive the mapping.
        for frame in resident:
            self._frame_map.pop(int(frame), None)
        vma.frame[:] = FRAME_UNMAPPED
        vma.is_huge[:] = False
        self.vmas.remove(vma)

    # ------------------------------------------------------------------
    # Demand paging (initialization fault storm)
    # ------------------------------------------------------------------

    def touch(self, vma: Vma) -> None:
        """First-touch the whole mapping in address order.

        Walks the mapping chunk by chunk, letting the THP policy try a
        huge allocation for each eligible chunk and falling back to base
        pages otherwise — the same decision the kernel makes per faulting
        address.  Charges fault costs to the kernel ledger.
        """
        for chunk in range(vma.nchunks):
            self._touch_chunk(vma, chunk)

    def _touch_chunk(self, vma: Vma, chunk: int) -> None:
        pages = vma.chunk_pages(chunk)
        already = vma.frame[pages] != FRAME_UNMAPPED
        if already.all():
            return
        policy = self.policy
        ledger = self.node.ledger
        decision = policy.fault_decision(
            FaultContext(
                vma_name=vma.name,
                chunk=chunk,
                advised=bool(vma.advised[chunk]),
                chunk_full=vma.chunk_is_full(chunk),
                partially_mapped=bool(already.any()),
            ),
            self.policy_view,
        )
        if policy.hooks is not None:
            tracer = self.tracer
            if tracer is not None:
                tracer.emit(
                    "policy.fault",
                    policy=policy.hooks.name,
                    vma=vma.name,
                    chunk=chunk,
                    huge=int(decision.huge),
                )
        if decision.huge and vma.chunk_is_full(chunk) and not already.any():
            region = self.node.alloc_huge_region(
                self.owner_id,
                allow_compaction=decision.allow_compaction,
                allow_reclaim=decision.allow_reclaim,
            )
            if region is not None:
                self._install_huge(vma, chunk, region)
                ledger.huge_fault(self.config.pages.frames_per_huge)
                tracer = self.tracer
                if tracer is not None:
                    tracer.emit(
                        "thp.fault.grant",
                        vma=vma.name,
                        chunk=chunk,
                        frames=self.config.pages.frames_per_huge,
                    )
                return
            tracer = self.tracer
            if tracer is not None:
                # Eligible chunk the fault path could not back hugely:
                # the paper's fault-time allocation failure under
                # pressure/fragmentation.
                tracer.emit("thp.fault.deny", vma=vma.name, chunk=chunk)
        self._install_base(vma, pages)

    def _install_huge(self, vma: Vma, chunk: int, region: int) -> None:
        pages = vma.chunk_pages(chunk)
        frames = np.arange(
            self.node.region_frames(region).start,
            self.node.region_frames(region).stop,
            dtype=np.int64,
        )
        vma.huge_region[chunk] = region
        vma.frame[pages] = frames[: pages.stop - pages.start]
        vma.is_huge[pages] = True
        for offset, frame in enumerate(frames[: pages.stop - pages.start]):
            self._frame_map[int(frame)] = (vma, pages.start + offset)
            self._touch_order.append((vma, pages.start + offset))

    def _install_base(self, vma: Vma, pages: slice) -> None:
        """Fault in the chunk's untouched pages as base pages.

        Under memory pressure the fault storm proceeds in batches:
        when free memory runs out, already-touched pages (FIFO) are
        swapped out to make room — so the *earliest-allocated* data ends
        up on swap, as in a real first-touch loop.
        """
        untouched = np.flatnonzero(vma.frame[pages] == FRAME_UNMAPPED)
        if untouched.size == 0:
            return
        count = int(untouched.size)
        idx = pages.start + untouched
        ledger = self.node.ledger
        pos = 0
        while pos < count:
            free = self.node.free_frame_count
            batch = min(count - pos, free)
            if batch == 0:
                # Reclaim-before-swap, as the kernel's direct reclaim
                # does: single-use page-cache contents are dropped before
                # any anonymous page is written to disk.
                if self.node.injector is not None:
                    self.node.injector.check(FaultSite.RECLAIM)
                if self.node.reclaim_frames(min(64, count - pos)):
                    continue
                if self.swap_device is None:
                    raise OutOfMemoryError(
                        f"node {self.node.node_id}: out of memory touching "
                        f"{vma.name} and no swap device attached"
                    )
                self.swap_out_pages(min(64, count - pos))
                continue
            frames = self.node.alloc_frames(batch, self.owner_id)
            batch_idx = idx[pos : pos + batch]
            vma.frame[batch_idx] = frames
            vma.is_huge[batch_idx] = False
            for page, frame in zip(batch_idx, frames):
                self._frame_map[int(frame)] = (vma, int(page))
                self._touch_order.append((vma, int(page)))
            pos += batch
        ledger.minor_fault(count)
        ledger.base_prep(count)

    # ------------------------------------------------------------------
    # Swap
    # ------------------------------------------------------------------

    def swap_out_pages(self, count: int) -> int:
        """Swap out ``count`` of this process's resident pages (FIFO).

        Huge-mapped victims are demoted first (as the kernel splits THPs
        before swapping them); hugetlbfs-backed pages are skipped
        (unswappable).  Returns the number of pages actually swapped out
        — possibly fewer than requested when the eviction FIFO runs dry
        (callers loop on allocation progress).

        Raises:
            OutOfMemoryError: if not a single page could be evicted.
        """
        if self.swap_device is None:
            raise OutOfMemoryError("no swap device attached")
        done = 0
        ledger = self.node.ledger
        while done < count:
            if self._swap_hand >= len(self._touch_order):
                if done:
                    return done
                raise OutOfMemoryError(
                    "swap exhausted: no resident pages left to evict"
                )
            vma, page = self._touch_order[self._swap_hand]
            self._swap_hand += 1
            frame = int(vma.frame[page])
            if frame < 0:
                continue
            if vma.is_huge[page]:
                chunk = page // self.config.pages.frames_per_huge
                if chunk in vma.pool_regions:
                    continue  # hugetlbfs pages are unswappable
                self.demote_chunk(vma, chunk)
                frame = int(vma.frame[page])
            self.node.free_frames(np.array([frame], dtype=np.int64))
            self._frame_map.pop(frame, None)
            vma.frame[page] = FRAME_SWAPPED
            self.swap_device.page_out()
            ledger.swap_out()
            done += 1
        return done

    def swap_in_page(self, vma: Vma, page: int) -> None:
        """Fault a swapped page back in, evicting another if necessary."""
        if vma.frame[page] != FRAME_SWAPPED:
            return
        if self.node.free_frame_count == 0:
            self.swap_out_pages(1)
        frame = int(self.node.alloc_frames(1, self.owner_id)[0])
        vma.frame[page] = frame
        vma.is_huge[page] = False
        self._frame_map[frame] = (vma, page)
        self._touch_order.append((vma, page))
        self.swap_device.page_in()
        self.node.ledger.swap_in()
        self.node.ledger.minor_fault()

    # ------------------------------------------------------------------
    # Promotion / demotion
    # ------------------------------------------------------------------

    def khugepaged_pass(self, max_promotions: Optional[int] = None) -> int:
        """Background promotion scan over all VMAs.

        Upgrades fully resident, base-mapped, THP-eligible chunks to huge
        pages by allocating a region and copying (the kernel's
        ``collapse_huge_page``).  Returns the number of promotions.
        """
        policy = self.policy
        if not policy.khugepaged_enabled:
            return 0
        policy.check_khugepaged()
        # Collect every collapse-eligible chunk in the daemon's address-
        # order walk, then let the policy hook pick.  Promotions cannot
        # change a *different* chunk's eligibility (compaction only
        # renumbers frames, residency is preserved), so the up-front
        # collection selects exactly the chunks the historical
        # interleaved walk promoted.
        vmas = list(self.vmas)
        candidates: list[PromotionCandidate] = []
        raw_index = 0
        for vma_index, vma in enumerate(vmas):
            for chunk in range(vma.nchunks):
                eligible = (
                    vma.huge_region[chunk] < 0
                    and vma.chunk_is_full(chunk)
                    and bool((vma.frame[vma.chunk_pages(chunk)] >= 0).all())
                )
                if eligible:
                    candidates.append(
                        PromotionCandidate(
                            vma_index=vma_index,
                            vma_name=vma.name,
                            chunk=chunk,
                            advised=bool(vma.advised[chunk]),
                            raw_index=raw_index,
                        )
                    )
                raw_index += 1
        total_raw = raw_index
        selected = policy.khugepaged_selection(
            tuple(candidates), self.policy_view
        )
        if policy.hooks is not None:
            tracer = self.tracer
            if tracer is not None:
                tracer.emit(
                    "policy.khugepaged",
                    policy=policy.hooks.name,
                    candidates=len(candidates),
                    selected=len(selected),
                )
        promoted = 0
        last_raw = -1
        for candidate in selected:
            if max_promotions is not None and promoted >= max_promotions:
                break
            vma = vmas[candidate.vma_index]
            chunk = candidate.chunk
            # Re-validate: a no-op for the built-in hook (candidates are
            # eligible by construction and stay so), a guard against
            # custom hooks returning stale or fabricated picks.
            if vma.huge_region[chunk] >= 0 or not vma.chunk_is_full(chunk):
                continue
            if not (vma.frame[vma.chunk_pages(chunk)] >= 0).all():
                continue
            if self.promote_chunk(vma, chunk):
                promoted += 1
                last_raw = candidate.raw_index
        if (
            max_promotions is not None
            and promoted >= max_promotions
            and last_raw < total_raw - 1
        ):
            # Historical cap semantics: the interleaved walk returned
            # mid-scan once the cap was reached (skipping the trailing
            # verify/emit) unless the capping promotion landed on the
            # very last chunk of the walk.
            return promoted
        if self.sanitizer is not None:
            self.sanitizer.verify_vmm(self)
        tracer = self.tracer
        if tracer is not None:
            tracer.emit("thp.khugepaged", promoted=promoted)
        return promoted

    def promote_chunk(self, vma: Vma, chunk: int) -> bool:
        """Promote one base-mapped chunk to a huge page (copy collapse)."""
        self.policy.check_promotion(vma, chunk)
        region = self.node.alloc_huge_region(
            self.owner_id,
            allow_compaction=self.policy.khugepaged_compact,
            allow_reclaim=self.policy.khugepaged_compact,
        )
        if region is None:
            return False
        pages = vma.chunk_pages(chunk)
        old_frames = vma.frame[pages].copy()
        for frame in old_frames:
            self._frame_map.pop(int(frame), None)
        self.node.free_frames(old_frames)
        self._install_huge_frames_only(vma, chunk, region)
        self.node.ledger.promotion(self.config.pages.frames_per_huge)
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "thp.promotion",
                vma=vma.name,
                chunk=chunk,
                frames=self.config.pages.frames_per_huge,
            )
        return True

    def _install_huge_frames_only(
        self, vma: Vma, chunk: int, region: int
    ) -> None:
        """Like :meth:`_install_huge` but without touch-order bookkeeping
        (the pages were already touched)."""
        pages = vma.chunk_pages(chunk)
        frames = np.arange(
            self.node.region_frames(region).start,
            self.node.region_frames(region).stop,
            dtype=np.int64,
        )[: pages.stop - pages.start]
        vma.huge_region[chunk] = region
        vma.frame[pages] = frames
        vma.is_huge[pages] = True
        for offset, frame in enumerate(frames):
            self._frame_map[int(frame)] = (vma, pages.start + offset)

    def back_chunk_from_pool(self, vma: Vma, chunk: int, pool) -> None:
        """Map one chunk from a hugetlbfs reservation (prefaulted).

        Raises:
            AllocationError: if the chunk is partial or already mapped.
            OutOfMemoryError: if the pool is exhausted.
        """
        if not vma.chunk_is_full(chunk):
            raise AllocationError(
                f"{vma.name} chunk {chunk} is partial; hugetlbfs mappings "
                "are whole huge pages"
            )
        pages = vma.chunk_pages(chunk)
        if (vma.frame[pages] != FRAME_UNMAPPED).any():
            raise AllocationError(
                f"{vma.name} chunk {chunk} is already (partially) mapped"
            )
        region = pool.take()
        self._install_huge(vma, chunk, region)
        vma.pool_regions[chunk] = pool
        # hugetlbfs prefaults the whole page at mmap time: one fault,
        # full-page preparation.
        self.node.ledger.huge_fault(self.config.pages.frames_per_huge)

    def demote_chunk(self, vma: Vma, chunk: int) -> None:
        """Split a huge-mapped chunk back into base pages.

        The constituent frames stay in place (the region's frames become
        512 independently-freeable base frames, as in the kernel's
        ``split_huge_page``), so no copying is charged — only the page
        table rewrite and TLB shootdown.
        """
        region = int(vma.huge_region[chunk])
        if region < 0:
            return
        if chunk in vma.pool_regions:
            raise AllocationError(
                f"{vma.name} chunk {chunk} is hugetlbfs-backed; "
                "explicit reservations cannot be split"
            )
        self.policy.check_demotion(vma, chunk)
        pages = vma.chunk_pages(chunk)
        vma.huge_region[chunk] = -1
        vma.is_huge[pages] = False
        self.node.demote_region(region)
        self.node.ledger.demotion()
        tracer = self.tracer
        if tracer is not None:
            tracer.emit("thp.demotion", vma=vma.name, chunk=chunk)

    def demote_underutilized(self, vma: Vma, utilization: np.ndarray,
                             threshold: float) -> int:
        """Demote huge chunks whose access utilization is below
        ``threshold`` and free their never-used tail pages.

        ``utilization`` gives, per chunk, the fraction of constituent base
        pages the workload actually uses.  Models the huge-page-bloat
        mitigation of prior work (HawkEye-style) for the ablation benches.
        Returns the number of demotions.
        """
        policy = self.policy
        candidates = tuple(
            DemoteCandidate(
                vma_name=vma.name,
                chunk=chunk,
                utilization=float(utilization[chunk]),
                threshold=threshold,
            )
            for chunk in range(vma.nchunks)
            if vma.huge_region[chunk] >= 0 and chunk not in vma.pool_regions
        )
        selected = policy.demote_selection(candidates, self.policy_view)
        if policy.hooks is not None:
            tracer = self.tracer
            if tracer is not None:
                tracer.emit(
                    "policy.demote",
                    policy=policy.hooks.name,
                    candidates=len(candidates),
                    selected=len(selected),
                )
        demoted = 0
        for candidate in selected:
            chunk = candidate.chunk
            # Re-validate (no-op for the built-in threshold hook).
            if vma.huge_region[chunk] < 0 or chunk in vma.pool_regions:
                continue
            self.demote_chunk(vma, chunk)
            demoted += 1
        return demoted

    # ------------------------------------------------------------------
    # FrameOwner protocol
    # ------------------------------------------------------------------

    def relocate_frame(self, old_frame: int, new_frame: int) -> None:
        """Compaction migrated one of our base pages."""
        vma, page = self._frame_map.pop(old_frame)
        vma.frame[page] = new_frame
        self._frame_map[new_frame] = (vma, page)

    def reclaim_frame(self, frame: int) -> None:  # pragma: no cover
        raise AssertionError(
            "anonymous process pages are not reclaimable; "
            "reclaim should only target the page cache"
        )

    # ------------------------------------------------------------------
    # Metrics helpers
    # ------------------------------------------------------------------

    def find_vma(self, name: str) -> Vma:
        """Look up a mapping by name.

        Raises:
            AddressError: if no VMA has that name.
        """
        for vma in self.vmas:
            if vma.name == name:
                return vma
        raise AddressError(f"no VMA named {name!r}")

    def total_mapped_bytes(self) -> int:
        """Sum of all mapping lengths."""
        return sum(vma.length for vma in self.vmas)

    def total_huge_bytes(self) -> int:
        """Bytes currently backed by huge pages across all mappings."""
        return sum(vma.huge_backed_bytes for vma in self.vmas)

    def iter_vmas(self) -> Iterable[Vma]:
        """All live mappings in creation order."""
        return iter(self.vmas)
