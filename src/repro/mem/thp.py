"""Transparent huge page (THP) policy engine.

Models the Linux THP machinery the paper characterizes (§2.3):

- **Modes** mirror ``/sys/kernel/mm/transparent_hugepage/enabled``:
  ``ALWAYS`` (system-wide THP), ``MADVISE`` (only regions advised with
  ``MADV_HUGEPAGE``), ``NEVER`` (the paper's 4KB baseline).
- **Fault-time allocation**: when a process first touches an eligible
  aligned chunk, the policy tries to back it with a huge page, optionally
  performing direct compaction/reclaim in the fault path (the latency the
  paper attributes to huge page creation under pressure).
- **khugepaged promotion**: a background pass that upgrades base-mapped
  eligible chunks to huge pages by copying, charged to the kernel ledger.
- **Demotion**: splitting an underutilized huge page back into base pages
  so unused tail pages can be reclaimed.

The policy itself is stateless apart from its configuration; all memory
state lives in the VMM and the physical frame map.  The one piece of
machinery the policy *does* carry is the fault-injection hook: the
machine attaches its :class:`~repro.faults.injector.FaultInjector`, and
the promotion / demotion / khugepaged paths consult it through the
``check_*`` gates below before doing any work — so injected THP-side
failures (a stalling daemon, a collapse that aborts, a split that
cannot complete) fire at well-defined points of the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Optional

from ..faults.injector import FaultInjector
from ..faults.sites import FaultSite

if TYPE_CHECKING:  # pragma: no cover - type-only imports (avoids cycles)
    from ..analysis.sanitizer import MemSanitizer
    from ..obs.tracer import Tracer
    from ..policy.hooks import (
        DemoteCandidate,
        FaultContext,
        PageDecision,
        PagePolicy,
        PromotionCandidate,
    )
    from ..policy.view import PolicyView
    from .vmm import Vma


class ThpMode(Enum):
    """System-wide THP setting."""

    NEVER = "never"
    MADVISE = "madvise"
    ALWAYS = "always"


@dataclass
class ThpPolicy:
    """Configuration of the THP machinery.

    Attributes:
        mode: system-wide enablement (see :class:`ThpMode`).
        fault_alloc: attempt huge allocation at first-touch fault time
            (``hugepage/defrag`` != ``never``).  When False, eligible
            chunks start as base pages and only khugepaged can upgrade
            them.
        fault_compact: allow direct compaction in the fault path to
            assemble a region (``defrag = always``); when False the fault
            path only takes pristine regions and defers the rest to
            khugepaged (``defrag = defer``).
        fault_reclaim: allow dropping reclaimable page-cache frames in the
            fault path.
        khugepaged_enabled: background promotion passes run between
            workload phases.
        khugepaged_compact: khugepaged may compact/reclaim to find regions.
        max_fault_retries: huge-region allocation attempts per chunk at
            fault time before falling back to base pages.
        injector: fault injector attached by the machine; ``None`` (the
            default) keeps every THP path fault-free.  Excluded from
            equality so configured policies still compare by settings.
        sanitizer: MemSan instance attached by the machine; ``None`` (the
            default) keeps every THP gate check-free.  Excluded from
            equality for the same reason as ``injector``.
        tracer: observability tracer attached by the machine; ``None``
            (the default) keeps every THP path emission-free — the
            zero-cost-when-off guard discipline of
            :mod:`repro.obs`.  Excluded from equality like the other
            attachments.
        hooks: an attached :class:`~repro.policy.hooks.PagePolicy`
            overriding the boolean knobs at every decision point
            (docs/policies.md).  ``None`` (the default) dispatches to
            the built-in hook derived from the knobs above — the same
            code path, pinned byte-identical to the historical
            hardwired logic.  Excluded from equality like the other
            attachments.
    """

    mode: ThpMode = ThpMode.NEVER
    fault_alloc: bool = True
    fault_compact: bool = True
    fault_reclaim: bool = True
    khugepaged_enabled: bool = True
    khugepaged_compact: bool = True
    max_fault_retries: int = 1
    injector: Optional[FaultInjector] = field(
        default=None, repr=False, compare=False
    )
    sanitizer: Optional["MemSanitizer"] = field(
        default=None, repr=False, compare=False
    )
    tracer: Optional["Tracer"] = field(
        default=None, repr=False, compare=False
    )
    hooks: Optional["PagePolicy"] = field(
        default=None, repr=False, compare=False
    )
    _builtin: Optional["PagePolicy"] = field(
        default=None, repr=False, compare=False, init=False
    )

    @staticmethod
    def never() -> "ThpPolicy":
        """The paper's baseline: 4KB pages only."""
        return ThpPolicy(mode=ThpMode.NEVER, khugepaged_enabled=False)

    @staticmethod
    def always() -> "ThpPolicy":
        """Linux's greedy system-wide THP policy."""
        return ThpPolicy(mode=ThpMode.ALWAYS)

    @staticmethod
    def madvise() -> "ThpPolicy":
        """Programmer-directed THP: only advised regions get huge pages."""
        return ThpPolicy(mode=ThpMode.MADVISE)

    def wants_huge(self, advised: bool) -> bool:
        """Whether a chunk with the given madvise state should be huge."""
        if self.mode is ThpMode.ALWAYS:
            return True
        if self.mode is ThpMode.MADVISE:
            return advised
        return False

    # ------------------------------------------------------------------
    # Policy-hook dispatch (docs/policies.md)
    # ------------------------------------------------------------------

    @property
    def effective_hooks(self) -> "PagePolicy":
        """The hook receiving every decision: the attached ``hooks``
        policy, or the lazily built adapter over this policy's knobs."""
        if self.hooks is not None:
            return self.hooks
        if self._builtin is None:
            from ..policy.builtin import BuiltinThpHook

            self._builtin = BuiltinThpHook(self)
        return self._builtin

    def fault_decision(
        self, ctx: "FaultContext", view: "PolicyView"
    ) -> "PageDecision":
        """Ask the hook how to back a first-touched chunk."""
        return self.effective_hooks.on_fault(ctx, view)

    def khugepaged_selection(
        self,
        candidates: tuple["PromotionCandidate", ...],
        view: "PolicyView",
    ) -> tuple["PromotionCandidate", ...]:
        """Ask the hook which eligible chunks khugepaged collapses."""
        return tuple(
            self.effective_hooks.on_khugepaged_scan(candidates, view)
        )

    def demote_selection(
        self,
        candidates: tuple["DemoteCandidate", ...],
        view: "PolicyView",
    ) -> tuple["DemoteCandidate", ...]:
        """Ask the hook which huge chunks the bloat scan splits."""
        return tuple(
            self.effective_hooks.on_demote_scan(candidates, view)
        )

    # ------------------------------------------------------------------
    # Fault-injection / sanitizer gates (no-ops without attachments)
    # ------------------------------------------------------------------

    def check_promotion(
        self, vma: Optional["Vma"] = None, chunk: Optional[int] = None
    ) -> None:
        """Gate one khugepaged collapse attempt.

        Raises:
            InjectedFaultError: when the ``promotion`` site fires.
            MemSanError: when MemSan is attached and the chunk is not a
                legal collapse candidate.
        """
        if self.sanitizer is not None and vma is not None and chunk is not None:
            self.sanitizer.verify_promotion(vma, chunk)
        if self.injector is not None:
            self.injector.check(FaultSite.PROMOTION)

    def check_demotion(
        self, vma: Optional["Vma"] = None, chunk: Optional[int] = None
    ) -> None:
        """Gate one huge-page split.

        Raises:
            InjectedFaultError: when the ``demotion`` site fires.
            MemSanError: when MemSan is attached and the chunk is not
                huge-mapped.
        """
        if self.sanitizer is not None and vma is not None and chunk is not None:
            self.sanitizer.verify_demotion(vma, chunk)
        if self.injector is not None:
            self.injector.check(FaultSite.DEMOTION)

    def check_khugepaged(self) -> None:
        """Gate one background daemon scan pass (a stalled khugepaged).

        Raises:
            InjectedFaultError: when the ``khugepaged`` site fires.
        """
        if self.injector is not None:
            self.injector.check(FaultSite.KHUGEPAGED)
        tracer = self.tracer
        if tracer is not None:
            tracer.emit("thp.khugepaged.scan")
