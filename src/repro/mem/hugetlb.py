"""hugetlbfs-style explicit huge page reservation.

§2.3 of the paper contrasts THP with ``hugetlbfs``: explicit huge pages
that "require boot-time or runtime page reservations, explicit source
code modifications, or memory allocation API interceptions" — less
programmer-friendly, but with a decisive property under pressure: a
reservation made at boot time is immune to later memory pressure and
fragmentation, because the regions are pinned before anything can
splinter them.

:class:`HugetlbPool` models that reservation: regions are allocated and
pinned up front; mappings explicitly back chunks from the pool.  The
ablation benchmark compares it against madvise-based selective THP under
fragmentation — same performance when THP finds regions, strictly more
reliable when it does not, at the cost of committing memory for the
machine's whole lifetime.
"""

from __future__ import annotations

from ..errors import AllocationError, OutOfMemoryError
from .physical import FrameState, NodeMemory


class HugetlbPool:
    """A boot-time reservation of huge page regions on one node."""

    def __init__(self, node: NodeMemory) -> None:
        self.node = node
        self.owner_id = node.register_owner(self)
        self._free_regions: list[int] = []
        self._taken_regions: list[int] = []

    def reserve(self, num_regions: int) -> int:
        """Reserve (and pin) ``num_regions`` huge regions.

        Mirrors ``vm.nr_hugepages``: the reservation succeeds only while
        whole free regions exist, and reserved memory is unavailable to
        everything else — including the THP policy, memhog and the
        fragmenter.  Returns the number of regions actually reserved.
        """
        reserved = 0
        for _ in range(num_regions):
            region = self.node.alloc_huge_region(
                self.owner_id,
                allow_compaction=True,
                allow_reclaim=True,
                state=FrameState.PINNED,
            )
            if region is None:
                break
            self._free_regions.append(region)
            reserved += 1
        return reserved

    @property
    def available(self) -> int:
        """Reserved regions not currently backing a mapping."""
        return len(self._free_regions)

    @property
    def reserved(self) -> int:
        """Total regions held by the pool."""
        return len(self._free_regions) + len(self._taken_regions)

    def take(self) -> int:
        """Claim one reserved region for a mapping.

        Raises:
            OutOfMemoryError: if the pool is empty (hugetlbfs mmap
            failure — reservations are a hard budget).
        """
        if not self._free_regions:
            raise OutOfMemoryError("hugetlb pool exhausted")
        region = self._free_regions.pop()
        self._taken_regions.append(region)
        return region

    def give_back(self, region: int) -> None:
        """Return a region to the pool (munmap of a hugetlbfs mapping)."""
        if region not in self._taken_regions:
            raise AllocationError(
                f"region {region} was not taken from this pool"
            )
        self._taken_regions.remove(region)
        self._free_regions.append(region)

    def release(self) -> None:
        """Drop the whole reservation (write 0 to ``nr_hugepages``)."""
        for region in self._free_regions + self._taken_regions:
            self.node.free_huge_region(region)
        self._free_regions.clear()
        self._taken_regions.clear()

    # FrameOwner protocol: pinned reservations never move or reclaim.
    def relocate_frame(self, old_frame: int, new_frame: int) -> None:  # pragma: no cover
        raise AssertionError("hugetlb reservations are pinned")

    def reclaim_frame(self, frame: int) -> None:  # pragma: no cover
        raise AssertionError("hugetlb reservations are pinned")
