"""Kernel-activity accounting.

The paper distinguishes application compute time from kernel time spent on
memory management (fault handling, compaction, reclaim, promotion, swap
I/O).  :class:`KernelLedger` accumulates both the *event counts* and the
*cycle costs* of every kernel-side activity so experiments can report where
time went.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..config import CostModel


@dataclass
class KernelLedger:
    """Accumulates kernel-side event counts and their cycle costs.

    Categories are free-form strings; the memory subsystem uses:

    - ``minor_fault`` — base-page demand faults,
    - ``huge_fault`` — huge-page fault-time allocations,
    - ``base_prep`` — base frames zeroed/prepared,
    - ``huge_prep_frames`` — frames prepared as part of a huge allocation,
    - ``compaction_migrate`` — frames migrated by compaction,
    - ``reclaim`` — page-cache frames reclaimed,
    - ``promotion_frames`` — frames copied by khugepaged promotion,
    - ``promotions`` / ``demotions`` — whole huge pages promoted/demoted,
    - ``swap_in`` / ``swap_out`` — pages moved across the swap device,
    - ``tlb_flush`` — TLB shootdowns.
    """

    cost: CostModel
    counts: Counter = field(default_factory=Counter)
    cycles: Counter = field(default_factory=Counter)

    def add(self, category: str, count: int, cycles_per_event: float) -> None:
        """Record ``count`` events of ``category`` at a given unit cost."""
        if count == 0:
            return
        self.counts[category] += count
        self.cycles[category] += int(count * cycles_per_event)

    # Convenience wrappers tied to the cost model -------------------------

    def minor_fault(self, count: int = 1) -> None:
        """A base-page demand fault (kernel entry + PTE install)."""
        self.add("minor_fault", count, self.cost.minor_fault)

    def base_prep(self, frames: int) -> None:
        """Base frames zeroed for an anonymous mapping."""
        self.add("base_prep", frames, self.cost.base_page_prep)

    def huge_fault(self, frames_per_huge: int) -> None:
        """A huge page allocated in the fault path (checks + zeroing)."""
        self.add("huge_fault", 1, self.cost.huge_fault_extra)
        self.add("huge_prep_frames", frames_per_huge, self.cost.base_page_prep)

    def compaction(self, frames_migrated: int) -> None:
        """Frames migrated while assembling a free huge region."""
        self.add(
            "compaction_migrate", frames_migrated, self.cost.compaction_per_frame
        )

    def reclaim(self, frames: int) -> None:
        """Page-cache frames reclaimed to free memory."""
        self.add("reclaim", frames, self.cost.reclaim_per_frame)

    def promotion(self, frames_per_huge: int) -> None:
        """khugepaged promoted one region (copy + PTE rewrite + flush)."""
        self.add("promotions", 1, 0.0)
        self.add(
            "promotion_frames",
            frames_per_huge,
            self.cost.promotion_copy_per_frame,
        )
        self.tlb_flush()

    def demotion(self) -> None:
        """One huge page split back into base pages."""
        self.add("demotions", 1, 0.0)
        self.tlb_flush()

    def swap_in(self, pages: int = 1) -> None:
        """Pages read back from the swap device."""
        self.add("swap_in", pages, self.cost.swap_in)

    def swap_out(self, pages: int = 1) -> None:
        """Pages written out to the swap device."""
        self.add("swap_out", pages, self.cost.swap_out)

    def tlb_flush(self, count: int = 1) -> None:
        """TLB shootdowns caused by mapping changes."""
        self.add("tlb_flush", count, self.cost.tlb_flush)

    # Aggregation ---------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        """Total kernel cycles across all categories."""
        return sum(self.cycles.values())

    def cycles_for(self, *categories: str) -> int:
        """Total cycles across the given categories."""
        return sum(self.cycles[c] for c in categories)

    def snapshot(self) -> dict[str, dict[str, int]]:
        """A plain-dict copy of counts and cycles (for metrics/reports)."""
        return {
            "counts": dict(self.counts),
            "cycles": dict(self.cycles),
        }

    def merge(self, other: "KernelLedger") -> None:
        """Fold another ledger's counters into this one."""
        self.counts.update(other.counts)
        self.cycles.update(other.cycles)
