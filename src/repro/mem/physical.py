"""Physical memory model: frames, huge regions, mobility, compaction.

Each NUMA node is a flat array of base-page *frames* grouped into aligned
*huge regions* (32 frames per 128KB region in the SCALED profile, 512 per
2MB region on real x86-64).  Frames carry a mobility class:

- ``FREE`` — available for allocation,
- ``MOVABLE`` — user memory; compaction may migrate it,
- ``NONMOVABLE`` — kernel memory; never migrated (the paper's ``frag``
  tool plants exactly these),
- ``PINNED`` — ``mlock``-ed memory (the paper's ``memhog``); neither
  migrated nor reclaimed.

Frames may additionally be *reclaimable* (page-cache contents that can be
dropped at a cost), which models the single-use-memory interference of
§4.3.

Huge page allocation requires one fully free region.  When none exists the
allocator mirrors the kernel's behaviour: it attempts *compaction*
(migrating movable frames out of an almost-free region) and *reclaim*
(dropping reclaimable frames), charging the cycle cost of both to the
kernel ledger — this is the "extra effort" the paper measures under
moderate memory pressure.
"""

from __future__ import annotations

from enum import IntEnum
from typing import TYPE_CHECKING, Optional, Protocol

import numpy as np

from ..config import MachineConfig
from ..errors import OutOfMemoryError
from ..faults.injector import FaultInjector
from ..faults.sites import FaultSite
from .stats import KernelLedger

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids a cycle)
    from ..analysis.sanitizer import MemSanitizer

_AMBIENT = object()
"""Sentinel: resolve the sanitizer from REPRO_SANITIZE / set_sanitize()."""


class FrameState(IntEnum):
    """Mobility class of one physical frame."""

    FREE = 0
    MOVABLE = 1
    NONMOVABLE = 2
    PINNED = 3
    HUGE = 4
    """Part of an allocated huge page.  Compaction never migrates
    individual frames out of a THP (the kernel would have to split it
    first); demotion returns the frames to ``MOVABLE``."""


class FrameOwner(Protocol):
    """Callbacks the allocator uses to coordinate with frame owners.

    Owners (the VMM, the page cache) register with a node and receive
    notifications when compaction migrates one of their frames or reclaim
    drops one.
    """

    def relocate_frame(self, old_frame: int, new_frame: int) -> None:
        """Compaction moved the owner's data from ``old_frame`` to
        ``new_frame``; the owner must repoint its mappings."""
        ...

    def reclaim_frame(self, frame: int) -> None:
        """Reclaim dropped the owner's (reclaimable) frame; the owner must
        forget it.  The allocator frees the frame itself."""
        ...


class NodeMemory:
    """Frame map for a single NUMA node."""

    def __init__(
        self,
        node_id: int,
        config: MachineConfig,
        ledger: KernelLedger,
        injector: Optional[FaultInjector] = None,
        sanitizer: Optional["MemSanitizer"] = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.ledger = ledger
        self.injector = injector
        self.sanitizer = sanitizer
        # Observability tracer, attached by the machine (None = off;
        # every emission site below guards on it — rule REP008).
        self.tracer = None
        self.frames_per_region = config.pages.frames_per_huge
        self.num_frames = config.frames_per_node
        self.num_regions = config.huge_regions_per_node
        self.state = np.zeros(self.num_frames, dtype=np.uint8)
        self.owner_id = np.full(self.num_frames, -1, dtype=np.int32)
        self.reclaimable = np.zeros(self.num_frames, dtype=bool)
        self._owners: dict[int, FrameOwner] = {}
        self._next_owner_id = 0
        self._region_starts = np.arange(
            0, self.num_frames, self.frames_per_region
        )

    # ------------------------------------------------------------------
    # Owner registry
    # ------------------------------------------------------------------

    def register_owner(self, owner: FrameOwner) -> int:
        """Register a frame owner; returns its id for allocation calls."""
        owner_id = self._next_owner_id
        self._next_owner_id += 1
        self._owners[owner_id] = owner
        return owner_id

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def free_frame_count(self) -> int:
        """Number of free frames on this node."""
        return int(np.count_nonzero(self.state == FrameState.FREE))

    @property
    def free_bytes(self) -> int:
        """Free memory in bytes."""
        return self.free_frame_count * self.config.pages.base_page_size

    def region_free_counts(self) -> np.ndarray:
        """Free-frame count per huge region (length ``num_regions``)."""
        free = (self.state == FrameState.FREE).astype(np.int64)
        return np.add.reduceat(free, self._region_starts)

    def pristine_region_count(self) -> int:
        """Number of fully free huge regions."""
        return int(
            np.count_nonzero(
                self.region_free_counts() == self.frames_per_region
            )
        )

    def region_of(self, frame: int) -> int:
        """Huge region index containing ``frame``."""
        return frame // self.frames_per_region

    def region_frames(self, region: int) -> slice:
        """Slice of frame indices covered by huge region ``region``."""
        start = region * self.frames_per_region
        return slice(start, start + self.frames_per_region)

    def fragmentation_level(self) -> float:
        """Fraction of *free* memory with no enclosing free huge region.

        This is the paper's fragmentation definition (§4.4.1): the
        percentage of available memory where no contiguous huge-page-sized
        region exists.  0.0 means all free memory is in pristine regions;
        1.0 means none of it is.
        """
        counts = self.region_free_counts()
        free_total = int(counts.sum())
        if free_total == 0:
            return 0.0
        pristine_free = int(
            counts[counts == self.frames_per_region].sum()
        )
        return 1.0 - pristine_free / free_total

    # ------------------------------------------------------------------
    # Base-page allocation
    # ------------------------------------------------------------------

    def alloc_frames(
        self,
        count: int,
        owner_id: int,
        state: FrameState = FrameState.MOVABLE,
        reclaimable: bool = False,
        prefer_broken: bool = True,
    ) -> np.ndarray:
        """Allocate ``count`` base frames; returns their indices.

        With ``prefer_broken`` (the default, mirroring the buddy
        allocator's preference for splitting already-broken blocks) frames
        are taken from partially used regions before pristine regions are
        broken up.

        Raises:
            OutOfMemoryError: if fewer than ``count`` frames are free.
        """
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if self.injector is not None:
            self.injector.check(FaultSite.ALLOC)
        free_mask = self.state == FrameState.FREE
        total_free = int(np.count_nonzero(free_mask))
        if total_free < count:
            raise OutOfMemoryError(
                f"node {self.node_id}: need {count} frames, "
                f"only {total_free} free"
            )
        if prefer_broken:
            chosen = self._pick_broken_first(free_mask, count)
        else:
            chosen = np.flatnonzero(free_mask)[:count]
        if self.sanitizer is not None:
            self.sanitizer.on_alloc_frames(self, chosen, state)
        self.state[chosen] = int(state)
        self.owner_id[chosen] = owner_id
        self.reclaimable[chosen] = reclaimable
        return chosen

    def _pick_broken_first(
        self, free_mask: np.ndarray, count: int
    ) -> np.ndarray:
        """Pick free frames from the most-used regions first."""
        counts = self.region_free_counts()
        # Regions with some free frames, ordered: partially-used regions
        # (fewest free frames first) before pristine regions.
        has_free = counts > 0
        pristine = counts == self.frames_per_region
        partial = has_free & ~pristine
        order = np.concatenate(
            [
                np.flatnonzero(partial)[np.argsort(counts[partial], kind="stable")],
                np.flatnonzero(pristine),
            ]
        )
        chosen_parts: list[np.ndarray] = []
        remaining = count
        fpr = self.frames_per_region
        for region in order:
            start = region * fpr
            local = np.flatnonzero(free_mask[start : start + fpr]) + start
            if local.size > remaining:
                local = local[:remaining]
            chosen_parts.append(local)
            remaining -= local.size
            if remaining == 0:
                break
        return np.concatenate(chosen_parts)

    # ------------------------------------------------------------------
    # Huge-page allocation
    # ------------------------------------------------------------------

    def alloc_huge_region(
        self,
        owner_id: int,
        allow_compaction: bool = True,
        allow_reclaim: bool = True,
        state: FrameState = FrameState.HUGE,
    ) -> Optional[int]:
        """Allocate one fully free huge region; returns the region index.

        Falls back to compaction (migrating movable frames out of the
        least-occupied eligible region) and reclaim (dropping reclaimable
        frames) when no pristine region exists, charging the work to the
        kernel ledger.  Returns ``None`` when no region can be assembled —
        the caller decides whether that means "fall back to base pages"
        (THP policy) or "out of memory".
        """
        counts = self.region_free_counts()
        pristine = np.flatnonzero(counts == self.frames_per_region)
        if pristine.size:
            region = int(pristine[0])
            return self._claim_region(region, owner_id, state)
        if not (allow_compaction or allow_reclaim):
            return None
        if self.injector is not None:
            # Region assembly — the compaction/reclaim effort the paper
            # measures under pressure — is the canonical injection site.
            self.injector.check(FaultSite.COMPACTION)
        region = self._assemble_region(allow_compaction, allow_reclaim)
        if region is None:
            return None
        return self._claim_region(region, owner_id, state)

    def _claim_region(
        self, region: int, owner_id: int, state: FrameState
    ) -> int:
        if self.sanitizer is not None:
            self.sanitizer.on_claim_region(self, region, state)
        frames = self.region_frames(region)
        self.state[frames] = int(state)
        self.owner_id[frames] = owner_id
        self.reclaimable[frames] = False
        return region

    def _assemble_region(
        self, allow_compaction: bool, allow_reclaim: bool
    ) -> Optional[int]:
        """Free up one region via reclaim and/or compaction.

        A region is a candidate if every used frame in it is either
        movable (and compaction is allowed) or reclaimable (and reclaim is
        allowed).  The candidate needing the least work is chosen, and its
        movable frames must fit in free frames *outside* the region.
        """
        fpr = self.frames_per_region
        state = self.state
        free_counts = self.region_free_counts()
        movable = (state == FrameState.MOVABLE).astype(np.int64)
        reclaim = (
            (state == FrameState.MOVABLE) & self.reclaimable
        ).astype(np.int64)
        blocked = (
            (state == FrameState.NONMOVABLE)
            | (state == FrameState.PINNED)
            | (state == FrameState.HUGE)
        ).astype(np.int64)
        movable_counts = np.add.reduceat(movable, self._region_starts)
        reclaim_counts = np.add.reduceat(reclaim, self._region_starts)
        blocked_counts = np.add.reduceat(blocked, self._region_starts)

        migrate_counts = movable_counts - reclaim_counts
        eligible = blocked_counts == 0
        if not allow_compaction:
            eligible &= migrate_counts == 0
        if not allow_reclaim:
            eligible &= reclaim_counts == 0
            migrate_counts = movable_counts  # nothing is droppable
        candidates = np.flatnonzero(eligible)
        if candidates.size == 0:
            return None
        # Least total work first: prefer dropping over migrating.
        work = migrate_counts[candidates] * 2 + reclaim_counts[candidates]
        order = candidates[np.argsort(work, kind="stable")]
        total_free = int(free_counts.sum())
        for region in order:
            region = int(region)
            need_migrate = int(migrate_counts[region])
            free_outside = total_free - int(free_counts[region])
            if need_migrate > free_outside:
                continue
            self._evacuate_region(region, allow_reclaim)
            return region
        return None

    def _evacuate_region(self, region: int, allow_reclaim: bool) -> None:
        """Drop reclaimable frames and migrate movable frames out."""
        frames = self.region_frames(region)
        start = frames.start
        local_states = self.state[frames]
        used = np.flatnonzero(local_states == FrameState.MOVABLE) + start
        reclaimed = 0
        migrated: list[int] = []
        for frame in used:
            frame = int(frame)
            if allow_reclaim and self.reclaimable[frame]:
                self._owners[int(self.owner_id[frame])].reclaim_frame(frame)
                self._release(frame)
                reclaimed += 1
            else:
                migrated.append(frame)
        if migrated:
            targets = self._migration_targets(len(migrated), region)
            if self.sanitizer is not None:
                self.sanitizer.on_migrate_frames(self, migrated, targets)
            for old, new in zip(migrated, targets):
                new = int(new)
                self.state[new] = self.state[old]
                self.owner_id[new] = self.owner_id[old]
                self.reclaimable[new] = self.reclaimable[old]
                self._owners[int(self.owner_id[old])].relocate_frame(old, new)
                self._release(old)
            self.ledger.compaction(len(migrated))
            self.ledger.tlb_flush()
            tracer = self.tracer
            if tracer is not None:
                tracer.emit(
                    "mem.compaction",
                    region=region,
                    migrated_frames=len(migrated),
                )
        if reclaimed:
            self.ledger.reclaim(reclaimed)
            tracer = self.tracer
            if tracer is not None:
                tracer.emit("mem.reclaim", frames=reclaimed)

    def _migration_targets(self, count: int, exclude_region: int) -> np.ndarray:
        """Free frames outside ``exclude_region``, broken regions first."""
        free_mask = self.state == FrameState.FREE
        frames = self.region_frames(exclude_region)
        free_mask[frames] = False
        return self._pick_broken_first_masked(free_mask, count)

    def _pick_broken_first_masked(
        self, free_mask: np.ndarray, count: int
    ) -> np.ndarray:
        """Like :meth:`_pick_broken_first` but for a caller-supplied mask."""
        free = free_mask.astype(np.int64)
        counts = np.add.reduceat(free, self._region_starts)
        has_free = counts > 0
        pristine = counts == self.frames_per_region
        partial = has_free & ~pristine
        order = np.concatenate(
            [
                np.flatnonzero(partial)[np.argsort(counts[partial], kind="stable")],
                np.flatnonzero(pristine),
            ]
        )
        chosen_parts: list[np.ndarray] = []
        remaining = count
        fpr = self.frames_per_region
        for region in order:
            start = region * fpr
            local = np.flatnonzero(free_mask[start : start + fpr]) + start
            if local.size > remaining:
                local = local[:remaining]
            chosen_parts.append(local)
            remaining -= local.size
            if remaining == 0:
                break
        if remaining:
            raise OutOfMemoryError(
                f"node {self.node_id}: cannot find {count} migration targets"
            )
        return np.concatenate(chosen_parts)

    # ------------------------------------------------------------------
    # Freeing / pinning
    # ------------------------------------------------------------------

    def _release(self, frame: int) -> None:
        if self.sanitizer is not None:
            self.sanitizer.on_release_frame(self, frame)
        self.state[frame] = int(FrameState.FREE)
        self.owner_id[frame] = -1
        self.reclaimable[frame] = False

    def reclaim_frames(self, count: int) -> int:
        """Drop up to ``count`` reclaimable (page-cache) frames to free
        memory — the kernel's reclaim-before-swap behaviour.  Returns
        the number of frames actually freed and charges their reclaim
        cost."""
        candidates = np.flatnonzero(
            (self.state == FrameState.MOVABLE) & self.reclaimable
        )[:count]
        if candidates.size == 0:
            return 0
        for frame in candidates:
            frame = int(frame)
            self._owners[int(self.owner_id[frame])].reclaim_frame(frame)
            self._release(frame)
        self.ledger.reclaim(int(candidates.size))
        tracer = self.tracer
        if tracer is not None:
            tracer.emit("mem.reclaim", frames=int(candidates.size))
        return int(candidates.size)

    def free_frames(self, frames: np.ndarray) -> None:
        """Return the given frames to the free pool."""
        if self.sanitizer is not None:
            self.sanitizer.on_free_frames(self, frames)
        self.state[frames] = int(FrameState.FREE)
        self.owner_id[frames] = -1
        self.reclaimable[frames] = False

    def free_huge_region(self, region: int) -> None:
        """Return a whole huge region to the free pool."""
        if self.sanitizer is not None:
            self.sanitizer.on_free_huge_region(self, region)
        frames = self.region_frames(region)
        self.state[frames] = int(FrameState.FREE)
        self.owner_id[frames] = -1
        self.reclaimable[frames] = False

    def demote_region(self, region: int) -> None:
        """A huge page in ``region`` was split: its frames become
        individually movable (and freeable) base pages."""
        if self.sanitizer is not None:
            self.sanitizer.on_demote_region(self, region)
        frames = self.region_frames(region)
        idx = (
            np.flatnonzero(self.state[frames] == FrameState.HUGE)
            + frames.start
        )
        self.state[idx] = int(FrameState.MOVABLE)

    def pin_frames(self, frames: np.ndarray) -> None:
        """Mark frames as pinned (``mlock``): not migratable, not
        reclaimable."""
        if self.sanitizer is not None:
            self.sanitizer.on_pin_frames(self, frames)
        self.state[frames] = int(FrameState.PINNED)
        self.reclaimable[frames] = False


class PhysicalMemory:
    """All NUMA nodes of the machine plus the shared kernel ledger."""

    def __init__(
        self,
        config: MachineConfig,
        injector: Optional[FaultInjector] = None,
        sanitizer=_AMBIENT,
    ) -> None:
        self.config = config
        self.ledger = KernelLedger(cost=config.cost)
        self.injector = injector
        if sanitizer is _AMBIENT:
            # Deferred import: repro.analysis.sanitizer imports FrameState
            # from this module, so the dependency must stay call-time.
            from ..analysis.sanitizer import make_sanitizer

            sanitizer = make_sanitizer()
        self.sanitizer = sanitizer
        self.nodes = [
            NodeMemory(
                node_id,
                config,
                self.ledger,
                injector=injector,
                sanitizer=sanitizer,
            )
            for node_id in range(config.num_nodes)
        ]

    def node(self, node_id: int) -> NodeMemory:
        """The frame map of NUMA node ``node_id``."""
        return self.nodes[node_id]

    def reset_ledger(self) -> KernelLedger:
        """Swap in a fresh ledger (e.g. after scenario setup, before the
        measured run) and return the old one."""
        old = self.ledger
        self.ledger = KernelLedger(cost=self.config.cost)
        for node in self.nodes:
            node.ledger = self.ledger
        return old
