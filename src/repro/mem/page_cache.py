"""Page-cache model: single-use memory interference (§4.3).

When graph data is loaded from files, the OS caches the file contents in
the page cache.  For graph analytics this cached data is *single-use* —
it is parsed into the CSR arrays once and never read again — yet it
occupies free memory exactly when the application is faulting in its
arrays, stealing frames that could have become huge pages.

The paper evaluates three mitigations, all modeled here:

- ``drop_caches`` — the coarse global knob (``/proc/sys/vm/drop_caches``),
- direct I/O — bypass the cache entirely for one file,
- tmpfs on the *remote* NUMA node — the paper's preferred approach: the
  cached data lives on node 0 while the application (bound to node 1)
  keeps its node's memory to itself.

Cache frames are movable **and reclaimable**, so fault-path reclaim can
drop them — at a cost, and only "in time" if the allocator is allowed to
reclaim (the paper notes reclaim often cannot keep up; we expose that as
the THP policy's ``fault_reclaim`` flag).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..faults.injector import FaultInjector
from ..faults.sites import FaultSite
from .physical import FrameState, NodeMemory


class PageCache:
    """File-backed page cache over one or more NUMA nodes."""

    def __init__(
        self,
        nodes: list[NodeMemory],
        injector: Optional[FaultInjector] = None,
    ) -> None:
        if not nodes:
            raise ConfigError("page cache needs at least one node")
        self.nodes = nodes
        self.injector = injector
        # Observability tracer, attached by the machine (None = off).
        self.tracer = None
        self._owner_ids = {
            node.node_id: node.register_owner(self) for node in nodes
        }
        # file name -> (node_id, set of frames)
        self._files: dict[str, tuple[int, set[int]]] = {}
        # frame -> file name, per node, for reclaim callbacks
        self._frame_file: dict[tuple[int, int], str] = {}

    def cached_bytes(self, node_id: int) -> int:
        """Bytes of page cache currently resident on ``node_id``."""
        node = self._node(node_id)
        page = node.config.pages.base_page_size
        return sum(
            len(frames) * page
            for nid, frames in self._files.values()
            if nid == node_id
        )

    def read_file(
        self,
        name: str,
        size_bytes: int,
        node_id: int,
        direct_io: bool = False,
    ) -> int:
        """Simulate reading ``size_bytes`` of file ``name``.

        Populates the cache on ``node_id`` (partial population if the node
        lacks free frames, mirroring cache admission under pressure).
        ``direct_io=True`` bypasses the cache entirely.  Returns the number
        of frames cached.

        Raises:
            InjectedFaultError: when the ``staging`` site fires (a
                failed read of the input file).
        """
        if direct_io:
            return 0
        if self.injector is not None:
            self.injector.check(FaultSite.STAGING)
        node = self._node(node_id)
        page = node.config.pages.base_page_size
        want = -(-size_bytes // page)
        available = node.free_frame_count
        count = min(want, available)
        if count == 0:
            return 0
        allocated = node.alloc_frames(
            count,
            self._owner_ids[node_id],
            state=FrameState.MOVABLE,
            reclaimable=True,
        )
        _, existing = self._files.get(name, (node_id, set()))
        existing.update(int(f) for f in allocated)
        self._files[name] = (node_id, existing)
        for frame in allocated:
            self._frame_file[(node_id, int(frame))] = name
        tracer = self.tracer
        if tracer is not None:
            tracer.emit("cache.stage", file=name, frames=count)
        return count

    def evict_file(self, name: str) -> int:
        """Drop one file's cached pages (posix_fadvise(DONTNEED))."""
        entry = self._files.pop(name, None)
        if entry is None:
            return 0
        node_id, frames = entry
        node = self._node(node_id)
        # Sorted so the free order (and any sanitizer/fault evaluation
        # sequence it drives) is independent of set-insertion history.
        ordered = sorted(frames)
        node.free_frames(np.array(ordered, dtype=np.int64))
        for frame in ordered:
            self._frame_file.pop((node_id, frame), None)
        tracer = self.tracer
        if tracer is not None:
            tracer.emit("cache.evict", file=name, frames=len(ordered))
        return len(ordered)

    def drop_caches(self) -> int:
        """The global knob: drop every cached page on every node."""
        total = 0
        for name in list(self._files):
            total += self.evict_file(name)
        return total

    # ------------------------------------------------------------------
    # FrameOwner protocol
    # ------------------------------------------------------------------

    def relocate_frame(self, old_frame: int, new_frame: int) -> None:
        """Compaction migrated a cache page; repoint our bookkeeping."""
        for node in self.nodes:
            key = (node.node_id, old_frame)
            name = self._frame_file.pop(key, None)
            if name is not None:
                node_id, frames = self._files[name]
                frames.discard(old_frame)
                frames.add(new_frame)
                self._frame_file[(node_id, new_frame)] = name
                return
        raise AssertionError(f"relocated frame {old_frame} not in page cache")

    def reclaim_frame(self, frame: int) -> None:
        """The allocator reclaimed one cache page; forget it."""
        for node in self.nodes:
            key = (node.node_id, frame)
            name = self._frame_file.pop(key, None)
            if name is not None:
                _, frames = self._files[name]
                frames.discard(frame)
                if not frames:
                    self._files.pop(name, None)
                return
        raise AssertionError(f"reclaimed frame {frame} not in page cache")

    def _node(self, node_id: int) -> NodeMemory:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise ConfigError(f"page cache does not manage node {node_id}")
