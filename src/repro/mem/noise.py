"""Background system noise: the residual fragmentation of a long-running
machine.

The paper's constrained-memory experiments run on a machine that "has run
for a period of time and used pages across the entire physical memory
space" (§2.3.2): even after memhog carves out a precise amount of free
memory, that free memory is peppered with

- **non-movable kernel pages** (SLAB, page tables, driver buffers) that
  compaction can never repair — Fig. 6's dark-orange pages — and
- **movable stragglers** (other processes' pages, leftover cache) that
  compaction *can* migrate, at a cost.

:class:`BackgroundNoise` plants exactly this state: single pages scattered
one-per-region across free huge regions.  The non-movable component is
what makes Linux's greedy THP policy run out of huge pages before the
property array allocates (the mechanism behind Fig. 7); the movable
component adds the fault-path compaction work the paper observes as extra
kernel time under moderate pressure.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .physical import FrameState, NodeMemory


class BackgroundNoise:
    """Scatter single-page allocations across a node's free regions."""

    def __init__(self, node: NodeMemory) -> None:
        self.node = node
        self.owner_id = node.register_owner(self)
        self._movable: set[int] = set()
        self._nonmovable: list[int] = []

    def scatter(
        self,
        nonmovable_bytes: int = 0,
        movable_bytes: int = 0,
        seed: int = 0,
    ) -> tuple[int, int]:
        """Plant noise pages, one per free huge region, evenly spread.

        Sizes are expressed as the amount of memory whose huge-page
        allocatability the noise destroys: ``nonmovable_bytes`` poisons
        that many bytes' worth of huge regions permanently (one
        non-movable page per region), ``movable_bytes`` makes that many
        bytes' worth of regions require compaction (one movable page per
        region).  The memory actually consumed is tiny (one base page
        per region), exactly like real kernel-page litter.

        Returns the (non-movable, movable) page counts actually placed —
        capped by the number of pristine regions available, as a real
        system's noise would be.
        """
        if nonmovable_bytes < 0 or movable_bytes < 0:
            raise ConfigError("noise sizes must be non-negative")
        huge = self.node.config.pages.huge_page_size
        want_nonmovable = nonmovable_bytes // huge
        want_movable = movable_bytes // huge
        rng = np.random.default_rng(seed)

        placed_nm = self._place(want_nonmovable, FrameState.NONMOVABLE, rng)
        placed_m = self._place(want_movable, FrameState.MOVABLE, rng)
        return placed_nm, placed_m

    def _place(
        self, count: int, state: FrameState, rng: np.random.Generator
    ) -> int:
        if count == 0:
            return 0
        node = self.node
        fpr = node.frames_per_region
        counts = node.region_free_counts()
        pristine = np.flatnonzero(counts == fpr)
        if pristine.size == 0:
            return 0
        take = min(count, pristine.size)
        # Even spread across the pristine span, deterministic per seed.
        chosen = pristine[
            np.linspace(0, pristine.size - 1, take).astype(np.int64)
        ]
        offsets = rng.integers(0, fpr, size=take)
        frames = chosen * fpr + offsets
        node.state[frames] = int(state)
        node.owner_id[frames] = self.owner_id
        node.reclaimable[frames] = False
        if state is FrameState.MOVABLE:
            self._movable.update(int(f) for f in frames)
        else:
            self._nonmovable.extend(int(f) for f in frames)
        return int(take)

    def release(self) -> None:
        """Free all noise pages."""
        # Sorted: compaction may have migrated movable noise pages, so the
        # set's iteration order is history-dependent; the free order (and
        # any fault-site evaluation it drives) must not be.
        all_frames = sorted(self._movable) + self._nonmovable
        if all_frames:
            self.node.free_frames(np.array(all_frames, dtype=np.int64))
        self._movable.clear()
        self._nonmovable.clear()

    # FrameOwner protocol ------------------------------------------------

    def relocate_frame(self, old_frame: int, new_frame: int) -> None:
        """Compaction migrated a movable noise page."""
        self._movable.discard(old_frame)
        self._movable.add(new_frame)

    def reclaim_frame(self, frame: int) -> None:  # pragma: no cover
        raise AssertionError("noise pages are not reclaimable")
