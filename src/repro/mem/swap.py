"""Swap device model.

Only the *cost* and occupancy of swap matter to the paper's results: when
memory is oversubscribed "swapping dominates application runtime",
degrading both the 4KB baseline and THP by ~24x (§4.3.1).  The device
tracks page-in/page-out counts; cycle costs are charged through the
kernel ledger by the VMM.

Swap I/O is a fault-injection site (a failing or saturated swap device):
when an injector is attached, every page movement evaluates the
``swap-out`` / ``swap-in`` sites before the counter is bumped, so an
injected I/O error surfaces before any state changes.
"""

from __future__ import annotations

from typing import Optional

from ..faults.injector import FaultInjector
from ..faults.sites import FaultSite


class SwapDevice:
    """Counts pages moved to/from secondary storage."""

    def __init__(self, injector: Optional[FaultInjector] = None) -> None:
        self.pages_out = 0
        self.pages_in = 0
        self.injector = injector
        # Observability tracer, attached by the machine (None = off).
        self.tracer = None

    def page_out(self, count: int = 1) -> None:
        """Record pages written to swap.

        Raises:
            InjectedFaultError: when the ``swap-out`` site fires.
        """
        if self.injector is not None:
            self.injector.check(FaultSite.SWAP_OUT)
        self.pages_out += count
        tracer = self.tracer
        if tracer is not None:
            tracer.emit("swap.out", pages=count)

    def page_in(self, count: int = 1) -> None:
        """Record pages read back from swap.

        Raises:
            InjectedFaultError: when the ``swap-in`` site fires.
        """
        if self.injector is not None:
            self.injector.check(FaultSite.SWAP_IN)
        self.pages_in += count
        tracer = self.tracer
        if tracer is not None:
            tracer.emit("swap.in", pages=count)

    @property
    def total_io(self) -> int:
        """Total swap I/O operations."""
        return self.pages_in + self.pages_out

    def reset(self) -> None:
        """Zero the counters (between scenario setup and measurement)."""
        self.pages_out = 0
        self.pages_in = 0
