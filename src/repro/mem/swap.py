"""Swap device model.

Only the *cost* and occupancy of swap matter to the paper's results: when
memory is oversubscribed "swapping dominates application runtime",
degrading both the 4KB baseline and THP by ~24x (§4.3.1).  The device
tracks page-in/page-out counts; cycle costs are charged through the
kernel ledger by the VMM.
"""

from __future__ import annotations


class SwapDevice:
    """Counts pages moved to/from secondary storage."""

    def __init__(self) -> None:
        self.pages_out = 0
        self.pages_in = 0

    def page_out(self, count: int = 1) -> None:
        """Record pages written to swap."""
        self.pages_out += count

    def page_in(self, count: int = 1) -> None:
        """Record pages read back from swap."""
        self.pages_in += count

    @property
    def total_io(self) -> int:
        """Total swap I/O operations."""
        return self.pages_in + self.pages_out

    def reset(self) -> None:
        """Zero the counters (between scenario setup and measurement)."""
        self.pages_out = 0
        self.pages_in = 0
