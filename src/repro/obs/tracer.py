"""The structured event tracer and its counter/gauge registry.

Zero-cost-when-off discipline (the same contract MemSan and the fault
injector honor): subsystems never construct event payloads
unconditionally.  Every emission site is::

    tracer = self.tracer
    if tracer is not None:
        tracer.emit("thp.promotion", vma=vma.name, chunk=chunk, ...)

so a machine built without tracing pays exactly one attribute load and
one ``is not None`` test per *site*, never per event — rule REP008 in
:mod:`repro.analysis` enforces the guard shape statically, and
``benchmarks/bench_trace_overhead.py`` bounds the residual cost
empirically (< 2%).

Determinism: the tracer's clock is the simulated kernel ledger
(:class:`~repro.mem.stats.KernelLedger` ``total_cycles``), bound by the
machine at attach time, plus a monotone per-run sequence number — never
a wall clock (rule REP001), so two runs of the same cell produce
byte-identical traces.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .events import validate_event


class MetricsRegistry:
    """Counters and gauges aggregated alongside the event stream.

    Counters accumulate (event occurrences, summed integer payload
    fields); gauges hold the last value set.  :meth:`snapshot` renders
    both as one sorted, JSON-safe dict so the registry's contents ride
    inside :class:`~repro.machine.metrics.RunMetrics` and round-trip
    through the journal byte-stably.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, int] = {}

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at zero)."""
        self._counters[name] = self._counters.get(name, 0) + int(value)

    def gauge(self, name: str, value: int) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = int(value)

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Sorted, JSON-safe view: ``{"counters": {...}, "gauges": {...}}``."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
        }

    def reset(self) -> None:
        """Drop every counter and gauge."""
        self._counters.clear()
        self._gauges.clear()


class Tracer:
    """Collects typed events from instrumented subsystems.

    One tracer serves one measured run: the machine binds the simulated
    clock, subsystem hooks :meth:`emit` events, and the machine
    :meth:`drain`\\ s the buffer into the run's
    :class:`~repro.machine.metrics.RunMetrics` at the end.

    Every :meth:`emit` also feeds the :class:`MetricsRegistry`: one
    occurrence counter per event name (``event.<name>``) and one sum
    counter per integer payload field (``<name>.<field>``), so the
    registry answers "how many promotions, how many frames migrated"
    without replaying the event stream.
    """

    def __init__(self, clock: Optional[Callable[[], int]] = None) -> None:
        self.events: list[dict[str, Any]] = []
        self.metrics = MetricsRegistry()
        self._clock: Callable[[], int] = clock if clock is not None else (
            lambda: 0
        )
        self._seq = 0

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Attach the simulated clock (read at every emission, so a
        ledger swap mid-setup is transparently picked up)."""
        self._clock = clock

    def emit(self, name: str, **fields: Any) -> None:
        """Record one event.

        ``fields`` must match the event's :data:`~repro.obs.events
        .EVENT_SCHEMA` entry; values must be JSON-safe (str/int/float).
        """
        record: dict[str, Any] = {
            "seq": self._seq,
            "cycles": int(self._clock()),
            "name": name,
        }
        record.update(fields)
        self._seq += 1
        self.events.append(record)
        metrics = self.metrics
        metrics.count(f"event.{name}")
        for field, value in fields.items():
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            metrics.count(f"{name}.{field}", value)

    def drain(self) -> list[dict[str, Any]]:
        """Detach and return the buffered events, resetting the tracer
        (events, sequence numbers and metrics) for the next run."""
        events = self.events
        self.events = []
        self._seq = 0
        self.metrics = MetricsRegistry()
        return events

    def validate(self) -> list[str]:
        """Schema-check the buffered events (see
        :func:`~repro.obs.events.validate_event`)."""
        problems: list[str] = []
        for index, record in enumerate(self.events):
            for problem in validate_event(record):
                problems.append(f"event[{index}]: {problem}")
        return problems


class NullTracer(Tracer):
    """A tracer that discards everything.

    Used by the overhead benchmark to measure the cost of *passing* the
    ``is not None`` guards (guard + dynamic dispatch at every site)
    without accumulating event storage.
    """

    def emit(self, name: str, **fields: Any) -> None:  # noqa: D102
        pass
