"""repro.obs — the observability layer (see docs/observability.md).

A zero-cost-when-off structured event tracer with a counter/gauge
metrics registry and exporters for JSONL and Chrome ``trace_event``
JSON (Perfetto-openable):

- :mod:`repro.obs.events` — the event taxonomy (names, required
  fields, units); the golden schema test pins it.
- :mod:`repro.obs.tracer` — :class:`Tracer` / :class:`MetricsRegistry`:
  what the machine attaches to every instrumented subsystem.
- :mod:`repro.obs.export` — JSONL and Chrome exporters plus the
  ``repro trace summary`` digest, all routed through
  :mod:`repro.runstate.atomic`.

Attach via ``Machine(trace=True)`` (or ``trace=Tracer()``), or
sweep-wide via ``RunConfig(trace=True)`` / ``repro run --trace``.
"""

from .events import EVENT_NAMES, EVENT_SCHEMA, validate_event, validate_events
from .export import (
    read_trace_jsonl,
    summarize,
    to_chrome_trace,
    validate_trace_records,
    write_chrome_trace,
    write_trace_jsonl,
)
from .tracer import MetricsRegistry, NullTracer, Tracer

__all__ = [
    "EVENT_NAMES",
    "EVENT_SCHEMA",
    "MetricsRegistry",
    "NullTracer",
    "Tracer",
    "read_trace_jsonl",
    "summarize",
    "to_chrome_trace",
    "validate_event",
    "validate_events",
    "validate_trace_records",
    "write_chrome_trace",
    "write_trace_jsonl",
]
