"""Trace exporters: JSONL and Chrome ``trace_event`` JSON.

Two on-disk formats, both written through
:mod:`repro.runstate.atomic` so a crash mid-export never leaves a torn
file:

- **JSONL** (``repro run --trace out.jsonl``): one canonical-JSON line
  per event, each carrying its cell coordinates (workload, dataset,
  policy, scenario) alongside the event record.  Canonical encoding
  (sorted keys, fixed separators) plus spec-ordered cells make the file
  byte-identical between serial and ``--workers N`` runs of the same
  sweep.
- **Chrome trace JSON** (``repro trace export``): the
  ``chrome://tracing`` / Perfetto ``trace_event`` format.  Each cell
  becomes one "process" (named after its coordinates), ``phase.*``
  events become duration begin/end pairs, and everything else becomes
  an instant event; timestamps are simulated kernel-ledger cycles.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional

from ..errors import ReproError
from ..runstate.atomic import atomic_write_text
from ..runstate.serialize import canonical_json
from .events import validate_event

CELL_KEYS = ("workload", "dataset", "policy", "scenario")
"""Cell-coordinate keys merged into every exported JSONL line."""


def trace_lines(trace_log: Iterable[dict[str, Any]]) -> list[str]:
    """Render a harness trace log as canonical JSONL lines.

    ``trace_log`` entries are ``{"cell": coords, "events": [...]}`` as
    accumulated by :class:`~repro.experiments.harness.ExperimentRunner`;
    each event becomes one line carrying its cell coordinates.
    """
    lines: list[str] = []
    for entry in trace_log:
        coords = entry["cell"]
        for event in entry["events"]:
            record = dict(coords)
            record.update(event)
            lines.append(canonical_json(record))
    return lines


def write_trace_jsonl(path: str, trace_log: Iterable[dict[str, Any]]) -> int:
    """Write a trace log as a JSONL file (atomic whole-file replace).

    Returns the number of event lines written.
    """
    lines = trace_lines(trace_log)
    atomic_write_text(path, "".join(line + "\n" for line in lines))
    return len(lines)


def read_trace_jsonl(path: str) -> list[dict[str, Any]]:
    """Load a JSONL trace file back into flat event records.

    Raises:
        ReproError: if a line is not valid JSON.
    """
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ReproError(
                    f"{path}:{lineno}: invalid trace line: {error}"
                ) from None
    return records


def validate_trace_records(records: Iterable[dict[str, Any]]) -> list[str]:
    """Schema-check flat JSONL records (cell coordinates stripped)."""
    problems: list[str] = []
    for index, record in enumerate(records):
        event = {k: v for k, v in record.items() if k not in CELL_KEYS}
        for problem in validate_event(event):
            problems.append(f"line[{index}]: {problem}")
    return problems


def _cell_label(record: dict[str, Any]) -> str:
    coords = [str(record.get(key, "?")) for key in CELL_KEYS]
    return "{}/{} policy={} scenario={}".format(*coords)


def to_chrome_trace(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Convert flat JSONL records to a ``trace_event`` JSON document.

    The result opens directly in Perfetto (ui.perfetto.dev) or
    ``chrome://tracing``: one process per cell, phases as duration
    events, everything else as thread-scoped instants, timestamps in
    simulated cycles.
    """
    pids: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    metadata: list[dict[str, Any]] = []
    for record in records:
        label = _cell_label(record)
        pid = pids.get(label)
        if pid is None:
            pid = len(pids)
            pids[label] = pid
            metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        name = record.get("name", "?")
        args = {
            key: value
            for key, value in record.items()
            if key not in CELL_KEYS and key not in ("name", "cycles")
        }
        entry: dict[str, Any] = {
            "name": name,
            "pid": pid,
            "tid": 0,
            "ts": record.get("cycles", 0),
            "args": args,
        }
        if name == "phase.begin":
            entry["ph"] = "B"
            entry["name"] = f"phase:{record.get('phase', '?')}"
        elif name == "phase.end":
            entry["ph"] = "E"
            entry["name"] = f"phase:{record.get('phase', '?')}"
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        events.append(entry)
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ns",
        "otherData": {"clock": "simulated kernel-ledger cycles"},
    }


def write_chrome_trace(
    path: str, records: Iterable[dict[str, Any]]
) -> dict[str, Any]:
    """Write records as Chrome trace JSON (atomic); returns the document."""
    document = to_chrome_trace(records)
    atomic_write_text(
        path, json.dumps(document, sort_keys=True, indent=1) + "\n"
    )
    return document


def summarize(records: Iterable[dict[str, Any]]) -> str:
    """Human-readable per-cell digest of a trace.

    For each cell (in file order): the event count, then per event name
    the occurrence count and the sum of every integer payload field —
    enough to read a THP promotion/demotion timeline off a figure cell
    without opening Perfetto.
    """
    cells: dict[str, dict[str, Any]] = {}
    order: list[str] = []
    for record in records:
        label = _cell_label(record)
        if label not in cells:
            cells[label] = {"total": 0, "names": {}}
            order.append(label)
        bucket = cells[label]
        bucket["total"] += 1
        name = record.get("name", "?")
        per_name = bucket["names"].setdefault(name, {"count": 0, "sums": {}})
        per_name["count"] += 1
        for key, value in record.items():
            if key in CELL_KEYS or key in ("name", "seq", "cycles"):
                continue
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            per_name["sums"][key] = per_name["sums"].get(key, 0) + value
    lines: list[str] = []
    for label in order:
        bucket = cells[label]
        lines.append(f"{label}: {bucket['total']} event(s)")
        for name in sorted(bucket["names"]):
            per_name = bucket["names"][name]
            sums = ", ".join(
                f"{key}={per_name['sums'][key]:,}"
                for key in sorted(per_name["sums"])
            )
            suffix = f"  ({sums})" if sums else ""
            lines.append(f"  {name:20s}: {per_name['count']:>8,}{suffix}")
    if not lines:
        return "empty trace"
    return "\n".join(lines)


def phase_timeline(
    records: Iterable[dict[str, Any]], cell: Optional[str] = None
) -> list[tuple[str, int, int]]:
    """``(phase, begin_cycles, end_cycles)`` triples for one cell.

    ``cell`` selects by the :func:`summarize`-style label; ``None``
    takes the first cell in the trace.
    """
    open_phases: dict[str, int] = {}
    timeline: list[tuple[str, int, int]] = []
    target = cell
    for record in records:
        label = _cell_label(record)
        if target is None:
            target = label
        if label != target:
            continue
        name = record.get("name")
        if name == "phase.begin":
            open_phases[record.get("phase", "?")] = record.get("cycles", 0)
        elif name == "phase.end":
            phase = record.get("phase", "?")
            begin = open_phases.pop(phase, 0)
            timeline.append((phase, begin, record.get("cycles", 0)))
    return timeline
