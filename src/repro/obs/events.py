"""The trace-event taxonomy: names, required fields, units.

Every event the simulator can emit is declared here, once, as the
single source of truth the exporters validate against and the golden
schema test pins.  An event record is a flat JSON-safe dict::

    {"seq": 17, "cycles": 120448, "name": "thp.promotion",
     "vma": "property_array", "chunk": 3, "frames": 32}

``seq`` is a per-run monotone sequence number (ordering is exact even
when two events share a timestamp) and ``cycles`` is the simulated
kernel-ledger clock at emission time — never a wall clock, so traces
are bit-for-bit reproducible (rule REP001).  The remaining fields are
event-specific and listed in :data:`EVENT_SCHEMA` with the
:mod:`repro.units` family each one is measured in.

Event names are dotted ``subsystem.verb[.qualifier]`` strings grouped
by the subsystem that emits them:

- ``phase.*`` — the machine's run phases (load / init / compute),
- ``thp.*`` — the THP engine: fault-time grant/deny, khugepaged,
  promotion, demotion,
- ``policy.*`` — decisions made by an attached :mod:`repro.policy`
  hook (only emitted when a custom ``PagePolicy`` is installed; the
  built-in mode paths stay silent so legacy traces are unchanged),
- ``mem.*`` — the physical allocator: compaction and reclaim,
- ``swap.*`` — the swap device,
- ``cache.*`` — the page cache,
- ``tlb.*`` — per-access-stream translation counts,
- ``pool.*`` — the parallel sweep pool (sizing decisions),
- ``harness.*`` — the experiment harness's resilience machinery
  (retries, absorbed failures, watchdog kills),
- ``server.*`` / ``queue.*`` / ``breaker.*`` / ``worker.*`` — the sweep
  service (:mod:`repro.serve`): daemon lifecycle and degradation-ladder
  transitions, admission control, the per-spec circuit breaker, and
  worker supervision.  Service events are clocked by a logical monotone
  counter rather than simulated cycles (the daemon has no single
  simulated machine), which keeps them REP001-clean.
- ``dist.*`` / ``net.*`` — the distributed sweep layer
  (:mod:`repro.dist`): lease lifecycle on the coordinator, result
  collection and dedup/conflict outcomes, degradation to local
  execution, and the deterministic network fault sites fired by the
  chaos client.  Like service events these use a logical clock.
"""

from __future__ import annotations

from typing import Any, Iterable

COMMON_FIELDS: dict[str, str] = {
    "seq": "count",
    "cycles": "cycles",
    "name": "name",
}
"""Fields present on every event record, with their units."""

EVENT_SCHEMA: dict[str, dict[str, str]] = {
    # -- machine run phases -------------------------------------------
    "phase.begin": {"phase": "name"},
    "phase.end": {"phase": "name", "phase_cycles": "cycles"},
    # -- THP engine ----------------------------------------------------
    "thp.fault.grant": {"vma": "name", "chunk": "index", "frames": "frames"},
    "thp.fault.deny": {"vma": "name", "chunk": "index"},
    "thp.khugepaged.scan": {},
    "thp.khugepaged": {"promoted": "count"},
    "thp.promotion": {"vma": "name", "chunk": "index", "frames": "frames"},
    "thp.demotion": {"vma": "name", "chunk": "index"},
    # -- policy hooks (custom PagePolicy attached; repro.policy) ------
    "policy.fault": {"policy": "name", "vma": "name", "chunk": "index",
                     "huge": "count"},
    "policy.khugepaged": {"policy": "name", "candidates": "count",
                          "selected": "count"},
    "policy.demote": {"policy": "name", "candidates": "count",
                      "selected": "count"},
    # -- physical allocator -------------------------------------------
    "mem.compaction": {"region": "index", "migrated_frames": "frames"},
    "mem.reclaim": {"frames": "frames"},
    # -- swap device ---------------------------------------------------
    "swap.out": {"pages": "pages"},
    "swap.in": {"pages": "pages"},
    # -- page cache ----------------------------------------------------
    "cache.stage": {"file": "name", "frames": "frames"},
    "cache.evict": {"file": "name", "frames": "frames"},
    # -- TLB hierarchy -------------------------------------------------
    "tlb.stream": {
        "stream": "index",
        "engine": "name",
        "accesses": "count",
        "l1_misses": "count",
        "walks": "count",
    },
    # -- parallel sweep pool ------------------------------------------
    "pool.autosize": {
        "requested": "count",
        "effective": "count",
        "cpus": "count",
    },
    # -- experiment harness resilience --------------------------------
    "harness.retry": {"cell": "name", "retries": "count"},
    "harness.cell_failure": {"cell": "name", "cause": "name",
                             "attempts": "count"},
    "harness.watchdog_kill": {"cell": "name"},
    # -- sweep service: daemon lifecycle / degradation ladder ---------
    "server.start": {"mode": "name", "workers": "count"},
    "server.mode": {"from_mode": "name", "to_mode": "name",
                    "reason": "name"},
    "server.drain": {"pending": "count"},
    "server.stop": {"served": "count"},
    # -- sweep service: admission control / dedupe --------------------
    "queue.enqueue": {"spec": "name", "depth": "count"},
    "queue.reject": {"spec": "name", "depth": "count",
                     "retry_after": "count"},
    "queue.dedup": {"spec": "name", "waiters": "count"},
    "queue.cached": {"spec": "name"},
    # -- sweep service: per-spec circuit breaker ----------------------
    "breaker.open": {"spec": "name", "failures": "count"},
    "breaker.probe": {"spec": "name"},
    "breaker.close": {"spec": "name"},
    # -- sweep service: worker supervision ----------------------------
    "worker.spawn": {"slot": "index", "pid": "count"},
    "worker.exit": {"slot": "index", "pid": "count", "clean": "count"},
    "worker.restart": {"slot": "index", "backoff_ms": "count"},
    "worker.heartbeat_lost": {"slot": "index", "age_ms": "count"},
    # -- distributed sweeps: lease lifecycle --------------------------
    "dist.lease.grant": {"spec": "name", "worker": "name",
                         "attempt": "count"},
    "dist.lease.renew": {"spec": "name", "worker": "name"},
    "dist.lease.expire": {"spec": "name", "worker": "name",
                          "attempt": "count"},
    # -- distributed sweeps: result collection ------------------------
    "dist.result": {"spec": "name", "worker": "name"},
    "dist.duplicate": {"spec": "name", "worker": "name"},
    "dist.conflict": {"spec": "name", "worker": "name"},
    # -- distributed sweeps: degradation to local execution -----------
    "dist.local": {"spec": "name", "reason": "name"},
    "dist.mode": {"from_mode": "name", "to_mode": "name",
                  "reason": "name"},
    # -- network chaos fault sites (repro.dist.netchaos) --------------
    "net.drop": {"point": "name", "ordinal": "count"},
    "net.delay": {"point": "name", "ordinal": "count"},
    "net.sever": {"point": "name", "ordinal": "count"},
}
"""Event name -> required event-specific fields and their units."""

EVENT_NAMES: tuple[str, ...] = tuple(sorted(EVENT_SCHEMA))
"""Every declared event name, sorted."""


def validate_event(record: dict[str, Any]) -> list[str]:
    """Validate one event record against the schema.

    Returns a list of problems (empty when the record is valid): an
    undeclared name, a missing common/required field, or a field the
    schema does not declare.
    """
    problems: list[str] = []
    for field in COMMON_FIELDS:
        if field not in record:
            problems.append(f"missing common field {field!r}")
    name = record.get("name")
    if name not in EVENT_SCHEMA:
        problems.append(f"undeclared event name {name!r}")
        return problems
    required = EVENT_SCHEMA[name]
    for field in required:
        if field not in record:
            problems.append(f"{name}: missing field {field!r}")
    allowed = set(COMMON_FIELDS) | set(required)
    for field in sorted(set(record) - allowed):
        problems.append(f"{name}: undeclared field {field!r}")
    return problems


def validate_events(records: Iterable[dict[str, Any]]) -> list[str]:
    """Validate a sequence of event records; problems are prefixed with
    the record's position so a bad event in a long trace is findable."""
    problems: list[str] = []
    for index, record in enumerate(records):
        for problem in validate_event(record):
            problems.append(f"event[{index}]: {problem}")
    return problems
