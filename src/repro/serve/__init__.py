"""repro.serve — the resilient sweep service (see docs/service.md).

A supervised local daemon that turns the run journal into a
multi-client result store:

- :mod:`repro.serve.config` — :class:`ServiceConfig`, the validated
  daemon configuration, and the degradation-ladder mode constants.
- :mod:`repro.serve.service` — :class:`SweepService`: fingerprint
  dedupe, cached serving, admission control, the circuit breaker and
  the ladder.
- :mod:`repro.serve.supervisor` — :class:`WorkerSupervisor`:
  heartbeat-monitored worker processes with bounded-backoff restarts
  and exactly-once job redelivery.
- :mod:`repro.serve.breaker` — :class:`CircuitBreaker`: per-spec
  quarantine, persisted across restarts.
- :mod:`repro.serve.server` / :mod:`repro.serve.client` — the HTTP
  (UDS or loopback TCP) transport and its blocking client.

Start one with ``repro serve --journal run.jsonl --socket run.sock``;
exercise it under process-level adversity with ``repro chaos``.
"""

from .breaker import CircuitBreaker
from .client import ClientResponse, SweepClient
from .config import (
    LADDER,
    MODE_CACHED_ONLY,
    MODE_DRAINING,
    MODE_PARALLEL,
    MODE_SERIAL,
    ServiceConfig,
)
from .server import SweepServer, serve
from .service import Response, SweepService
from .supervisor import WorkerSupervisor

__all__ = [
    "CircuitBreaker",
    "ClientResponse",
    "LADDER",
    "MODE_CACHED_ONLY",
    "MODE_DRAINING",
    "MODE_PARALLEL",
    "MODE_SERIAL",
    "Response",
    "ServiceConfig",
    "SweepClient",
    "SweepServer",
    "SweepService",
    "WorkerSupervisor",
    "serve",
]
