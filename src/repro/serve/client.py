"""Blocking client for the sweep service (stdlib sockets, no deps).

One connection per request (the server is ``Connection: close``);
submissions block until the cell completes, so callers that want
concurrency use threads — exactly what the chaos harness does to prove
duplicate concurrent submissions dedupe to one execution.
"""

from __future__ import annotations

import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..errors import ServiceError

RETRYABLE_STATUSES = (429, 503)
"""Statuses :meth:`SweepClient.request_with_retry` treats as transient
by default: admission backpressure (429 + Retry-After) and temporary
unavailability (503)."""


@dataclass
class ClientResponse:
    """Status + parsed body + the exact bytes received (byte-identity
    assertions compare ``raw``, never a re-serialization)."""

    status: int
    body: Any
    raw: bytes
    retry_after: Optional[float] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class SweepClient:
    """Talks to one ``repro serve`` instance over UDS or TCP.

    Args:
        socket_path: UNIX socket path (wins when set).
        host, port: TCP fallback.
        timeout: per-request socket timeout — generous by default, a
            submission waits for a full cell simulation.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 7341,
        timeout: float = 120.0,
    ) -> None:
        if socket_path is None and not host:
            raise ServiceError("SweepClient needs a socket_path or host")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
            return sock
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        return sock

    # The three socket operations are overridable seams: the chaos
    # client (repro.dist.netchaos.ChaosClient) wraps them to drop,
    # delay or sever on a counted schedule.

    def _send(self, sock: socket.socket, data: bytes) -> None:
        sock.sendall(data)

    def _recv(self, sock: socket.socket, limit: int) -> bytes:
        return sock.recv(limit)

    def request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> ClientResponse:
        """One HTTP exchange; raises OSError on transport failure."""
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: repro\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        sock = self._connect()
        try:
            self._send(sock, head + body)
            # Read headers, then exactly Content-Length body bytes.
            # Never read to EOF: worker processes forked while a
            # connection is open inherit its fd, so the server closing
            # its end does not guarantee an EOF at ours.
            buffered = b""
            while b"\r\n\r\n" not in buffered:
                chunk = self._recv(sock, 65536)
                if not chunk:
                    break
                buffered += chunk
            header_end = buffered.find(b"\r\n\r\n")
            if header_end < 0:
                raise ServiceError("malformed response from server")
            head_text = buffered[:header_end].decode("latin-1")
            response_body = buffered[header_end + 4:]
            content_length = None
            for line in head_text.split("\r\n")[1:]:
                name, _, value = line.partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        content_length = int(value.strip())
                    except ValueError:
                        pass
            if content_length is not None:
                while len(response_body) < content_length:
                    chunk = self._recv(sock, 65536)
                    if not chunk:
                        break
                    response_body += chunk
                response_body = response_body[:content_length]
        finally:
            sock.close()
        status_line, *header_lines = head_text.split("\r\n")
        try:
            status = int(status_line.split(" ", 2)[1])
        except (IndexError, ValueError) as exc:
            raise ServiceError(
                f"malformed status line {status_line!r}"
            ) from exc
        retry_after = None
        for line in header_lines:
            name, _, value = line.partition(":")
            if name.strip().lower() == "retry-after":
                try:
                    retry_after = float(value.strip())
                except ValueError:
                    pass
        try:
            parsed = json.loads(response_body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            parsed = None
        return ClientResponse(
            status=status, body=parsed, raw=response_body,
            retry_after=retry_after,
        )

    def request_with_retry(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        *,
        max_attempts: int = 4,
        backoff_base: float = 0.1,
        backoff_max: float = 2.0,
        retry_statuses: tuple[int, ...] = RETRYABLE_STATUSES,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> ClientResponse:
        """Opt-in bounded retry around :meth:`request`.

        Transport failures (``OSError`` — connection refused, reset,
        timed out) and the transient statuses in ``retry_statuses``
        retry with capped exponential backoff (``base, 2x, 4x, ...``
        capped at ``backoff_max``) plus seeded jitter — deterministic
        for a given ``seed``, decorrelated across workers that pass
        distinct seeds.  A 429/503 carrying ``Retry-After`` is honored:
        the wait is at least the server's hint (still capped).  After
        ``max_attempts`` total attempts the last response is returned
        as-is, or the last ``OSError`` re-raised — the caller keeps the
        terminal outcome either way, never a synthetic one.

        The plain :meth:`request` stays single-shot: retry is only
        correct for idempotent exchanges, which every ``repro.dist``
        call is (lease polls, renewals, integrity-hashed completions
        deduplicated by spec fingerprint).
        """
        if max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        rng = random.Random(seed)
        last_error: Optional[OSError] = None
        response: Optional[ClientResponse] = None
        for attempt in range(1, max_attempts + 1):
            try:
                response = self.request(method, path, payload)
                last_error = None
            except OSError as error:
                last_error = error
                response = None
            else:
                if response.status not in retry_statuses:
                    return response
            if attempt == max_attempts:
                break
            wait = min(backoff_max, backoff_base * (2 ** (attempt - 1)))
            if response is not None and response.retry_after is not None:
                wait = min(backoff_max, max(wait, response.retry_after))
            # Full jitter on top of the deterministic floor: two
            # workers hammering one recovering coordinator decorrelate.
            wait += rng.uniform(0, backoff_base)
            sleep(wait)
        if response is not None:
            return response
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------
    # Convenience endpoints
    # ------------------------------------------------------------------

    def healthz(self) -> bool:
        try:
            return self.request("GET", "/v1/healthz").ok
        except (OSError, ServiceError):
            return False

    def submit(
        self,
        workload: str,
        dataset: str,
        policy: str = "base4k",
        scenario: str = "fresh",
    ) -> ClientResponse:
        return self.request(
            "POST", "/v1/submit",
            {
                "workload": workload,
                "dataset": dataset,
                "policy": policy,
                "scenario": scenario,
            },
        )

    def result(self, spec: str) -> ClientResponse:
        return self.request("GET", f"/v1/result/{spec}")

    def status(self) -> dict[str, Any]:
        response = self.request("GET", "/v1/status")
        if not response.ok or not isinstance(response.body, dict):
            raise ServiceError(
                f"status endpoint returned {response.status}"
            )
        return response.body

    def drain(self) -> ClientResponse:
        return self.request("POST", "/v1/drain")
