"""Blocking client for the sweep service (stdlib sockets, no deps).

One connection per request (the server is ``Connection: close``);
submissions block until the cell completes, so callers that want
concurrency use threads — exactly what the chaos harness does to prove
duplicate concurrent submissions dedupe to one execution.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass
from typing import Any, Optional

from ..errors import ServiceError


@dataclass
class ClientResponse:
    """Status + parsed body + the exact bytes received (byte-identity
    assertions compare ``raw``, never a re-serialization)."""

    status: int
    body: Any
    raw: bytes
    retry_after: Optional[float] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class SweepClient:
    """Talks to one ``repro serve`` instance over UDS or TCP.

    Args:
        socket_path: UNIX socket path (wins when set).
        host, port: TCP fallback.
        timeout: per-request socket timeout — generous by default, a
            submission waits for a full cell simulation.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 7341,
        timeout: float = 120.0,
    ) -> None:
        if socket_path is None and not host:
            raise ServiceError("SweepClient needs a socket_path or host")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
            return sock
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        return sock

    def request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> ClientResponse:
        """One HTTP exchange; raises OSError on transport failure."""
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: repro\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        sock = self._connect()
        try:
            sock.sendall(head + body)
            # Read headers, then exactly Content-Length body bytes.
            # Never read to EOF: worker processes forked while a
            # connection is open inherit its fd, so the server closing
            # its end does not guarantee an EOF at ours.
            buffered = b""
            while b"\r\n\r\n" not in buffered:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                buffered += chunk
            header_end = buffered.find(b"\r\n\r\n")
            if header_end < 0:
                raise ServiceError("malformed response from server")
            head_text = buffered[:header_end].decode("latin-1")
            response_body = buffered[header_end + 4:]
            content_length = None
            for line in head_text.split("\r\n")[1:]:
                name, _, value = line.partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        content_length = int(value.strip())
                    except ValueError:
                        pass
            if content_length is not None:
                while len(response_body) < content_length:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    response_body += chunk
                response_body = response_body[:content_length]
        finally:
            sock.close()
        status_line, *header_lines = head_text.split("\r\n")
        try:
            status = int(status_line.split(" ", 2)[1])
        except (IndexError, ValueError) as exc:
            raise ServiceError(
                f"malformed status line {status_line!r}"
            ) from exc
        retry_after = None
        for line in header_lines:
            name, _, value = line.partition(":")
            if name.strip().lower() == "retry-after":
                try:
                    retry_after = float(value.strip())
                except ValueError:
                    pass
        try:
            parsed = json.loads(response_body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            parsed = None
        return ClientResponse(
            status=status, body=parsed, raw=response_body,
            retry_after=retry_after,
        )

    # ------------------------------------------------------------------
    # Convenience endpoints
    # ------------------------------------------------------------------

    def healthz(self) -> bool:
        try:
            return self.request("GET", "/v1/healthz").ok
        except (OSError, ServiceError):
            return False

    def submit(
        self,
        workload: str,
        dataset: str,
        policy: str = "base4k",
        scenario: str = "fresh",
    ) -> ClientResponse:
        return self.request(
            "POST", "/v1/submit",
            {
                "workload": workload,
                "dataset": dataset,
                "policy": policy,
                "scenario": scenario,
            },
        )

    def result(self, spec: str) -> ClientResponse:
        return self.request("GET", f"/v1/result/{spec}")

    def status(self) -> dict[str, Any]:
        response = self.request("GET", "/v1/status")
        if not response.ok or not isinstance(response.body, dict):
            raise ServiceError(
                f"status endpoint returned {response.status}"
            )
        return response.body

    def drain(self) -> ClientResponse:
        return self.request("POST", "/v1/drain")
