"""Minimal HTTP/1.1 transport for the sweep service (stdlib only).

``repro serve`` listens on a UNIX-domain socket (preferred — local,
permission-scoped) or a loopback TCP port and speaks just enough
HTTP for the client, the chaos harness and ``curl``:

- ``POST /v1/submit`` — body ``{"workload", "dataset", "policy",
  "scenario"}``; waits for the result.  200 with the canonical result
  JSON, 400 bad spec, 429 queue full (``Retry-After``), 500 execution
  error, 503 quarantined / cached-only / draining.
- ``GET /v1/result/<spec>`` — cached results only; 200 or 404.
- ``GET /v1/status`` — mode, counters, breaker and journal state, the
  validated event tail.
- ``POST /v1/drain`` — begin graceful shutdown (also SIGTERM/SIGINT).
- ``GET /v1/healthz`` — liveness probe.

Connections are one-request (``Connection: close``): submissions can
block for a whole cell simulation, so clients hold one socket per
request and the server never multiplexes.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
from typing import Any, Optional

from .config import ServiceConfig
from .service import Response, SweepService

_MAX_HEADER_BYTES = 16384
_MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _render_response(response: Response) -> bytes:
    body = response.render()
    reason = _REASONS.get(response.status, "Unknown")
    headers = [
        f"HTTP/1.1 {response.status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    if response.retry_after is not None:
        headers.append(f"Retry-After: {max(1, int(response.retry_after))}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[tuple[str, str, bytes]]:
    """Parse one request → (method, path, body); None on EOF/garbage."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
        return None
    if len(head) > _MAX_HEADER_BYTES:
        return None
    try:
        text = head.decode("latin-1")
        request_line, *header_lines = text.split("\r\n")
        method, path, _version = request_line.split(" ", 2)
    except ValueError:
        return None
    content_length = 0
    for line in header_lines:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                return None
    if content_length < 0 or content_length > _MAX_BODY_BYTES:
        return None
    body = b""
    if content_length:
        try:
            body = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError:
            return None
    return method.upper(), path, body


class SweepServer:
    """Binds a :class:`SweepService` to a listening socket."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.service: Optional[SweepService] = None
        self._server: Optional[asyncio.AbstractServer] = None

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        service = self.service
        assert service is not None
        try:
            parsed = await _read_request(reader)
            if parsed is None:
                return
            method, path, body = parsed
            response = await self._route(service, method, path, body)
            writer.write(_render_response(response))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, OSError):
                pass

    async def _route(
        self, service: SweepService, method: str, path: str, body: bytes
    ) -> Response:
        if path == "/v1/healthz" and method == "GET":
            return Response(status=200, body={"ok": True})
        if path == "/v1/status" and method == "GET":
            return Response(status=200, body=service.status())
        if path == "/v1/drain" and method == "POST":
            pending = len(service._inflight)
            service.request_drain()
            return Response(
                status=202, body={"draining": True, "pending": pending}
            )
        if path.startswith("/v1/result/") and method == "GET":
            spec = path[len("/v1/result/"):]
            return service.lookup(spec)
        if path == "/v1/submit" and method == "POST":
            try:
                payload = json.loads(body.decode("utf-8") or "{}")
            except (ValueError, UnicodeDecodeError):
                return Response(
                    status=400, body={"error": "body must be JSON"}
                )
            if not isinstance(payload, dict):
                return Response(
                    status=400, body={"error": "body must be a JSON object"}
                )
            return await service.submit(payload)
        if path in (
            "/v1/healthz", "/v1/status", "/v1/drain", "/v1/submit"
        ) or path.startswith("/v1/result/"):
            return Response(status=405, body={"error": "method not allowed"})
        return Response(status=404, body={"error": f"no route {path!r}"})

    async def run(self) -> None:
        """Start the service and serve until drained."""
        loop = asyncio.get_running_loop()
        self.service = SweepService(self.config, loop=loop)
        self.service.start()
        if self.config.socket_path:
            # The service just took the journal's pidfile lock, so any
            # leftover socket file is stale (a SIGKILLed server runs no
            # atexit): remove it rather than failing with EADDRINUSE —
            # crash recovery must never require manual cleanup.
            try:
                os.unlink(self.config.socket_path)
            except FileNotFoundError:
                pass
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.config.socket_path
            )
            where = self.config.socket_path
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.config.host, port=self.config.port
            )
            where = f"{self.config.host}:{self.config.port}"
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self.service.request_drain
                )
            except (NotImplementedError, RuntimeError):
                pass
        print(f"repro serve: listening on {where} "
              f"(journal {self.config.journal_path}, "
              f"mode {self.service.mode})", file=sys.stderr, flush=True)
        try:
            await self.service.drained.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            self.service.stop()
            print("repro serve: drained, exiting", file=sys.stderr,
                  flush=True)


def serve(config: ServiceConfig) -> int:
    """Blocking entry point for ``repro serve``."""
    asyncio.run(SweepServer(config).run())
    return 0


def status_summary(status: dict[str, Any]) -> str:
    """One human line from a ``/v1/status`` payload (CLI helper)."""
    journal = status.get("journal", {})
    return (
        f"mode={status.get('mode')} workers={status.get('workers')} "
        f"inflight={status.get('inflight')} served={status.get('served')} "
        f"journal(done={journal.get('done', 0)} "
        f"failed={journal.get('failed', 0)} "
        f"running={journal.get('running', 0)})"
    )
