"""The sweep service core: dedupe, admission, breaker, ladder.

:class:`SweepService` is transport-agnostic — :mod:`repro.serve.server`
wraps it in HTTP.  One service owns:

- the **run journal** (pidfile-locked): the durable result store.
  Completed specs are served straight from journal record payloads, so
  a response is byte-identical before and after any crash/restart —
  the chaos harness's core invariant.
- the **in-flight table**: one entry per executing spec fingerprint.
  Duplicate concurrent submissions attach as waiters to the same job
  (``queue.dedup``), and one job writes exactly one ``running`` journal
  record however many times a crashed worker forces redelivery —
  exactly-once execution by construction.
- **admission control**: at most ``queue_depth`` specs in flight;
  beyond that submissions get :class:`~repro.errors.AdmissionError`
  (HTTP 429) with a retry-after hint (``queue.reject``).
- the **circuit breaker** (:mod:`repro.serve.breaker`): repeatedly
  failing specs are quarantined across restarts (HTTP 503).
- the **degradation ladder** ``parallel → serial → cached-only →
  draining``: worker-restart bursts step the service down one rung
  (``server.mode`` events); journal write errors (e.g. a full disk)
  drop it straight to ``cached-only``, where cached results still
  serve but nothing new executes.

Threading: every mutation runs on the asyncio event loop.  Supervisor
callbacks (monitor thread) are marshalled with
``loop.call_soon_threadsafe``; the breaker and tracer are only touched
from the loop.
"""

from __future__ import annotations

import asyncio
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import ReproError
from ..obs.tracer import Tracer
from ..runstate.journal import RunJournal, STATUS_DONE
from ..runstate.serialize import canonical_json, decode_result
from .breaker import CircuitBreaker, STATE_OPEN
from .config import (
    LADDER,
    MODE_CACHED_ONLY,
    MODE_DRAINING,
    MODE_PARALLEL,
    MODE_SERIAL,
    ServiceConfig,
)
from .supervisor import WorkerSupervisor


@dataclass
class Response:
    """Transport-agnostic outcome of one request."""

    status: int
    body: dict[str, Any] = field(default_factory=dict)
    raw: Optional[str] = None
    """Pre-rendered body (canonical JSON) — used for results so bytes
    are identical across restarts; wins over ``body`` when set."""
    retry_after: Optional[float] = None

    def render(self) -> bytes:
        if self.raw is not None:
            return self.raw.encode("utf-8")
        return (canonical_json(self.body) + "\n").encode("utf-8")


class SweepService:
    """See module docstring.  Construct inside a running event loop."""

    def __init__(
        self,
        config: ServiceConfig,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> None:
        self.config = config
        self.loop = loop if loop is not None else asyncio.get_event_loop()
        self._logical = 0
        self.tracer = Tracer(clock=lambda: self._logical)

        self._chaos = None
        journal: RunJournal
        if config.chaos:
            from ..chaos.plan import ChaosPlan
            from ..chaos.journal import ChaosJournal

            self._chaos = ChaosPlan.parse(config.chaos)
            journal = ChaosJournal(
                config.journal_path, plan=self._chaos, lock=True
            )
        else:
            journal = RunJournal(config.journal_path, lock=True)
        self.journal = journal

        self.breaker = CircuitBreaker(
            path=config.journal_path + ".breaker.json",
            threshold=config.breaker_threshold,
            cooldown_seconds=config.breaker_cooldown_seconds,
            listener=self._emit,
        )

        from ..config import get_profile
        from ..experiments.harness import ExperimentRunner

        # Fingerprints must match what a worker (or a CLI sweep with
        # the same knobs) computes, so derive them through a real
        # runner built from the same execution policy.
        from ..experiments.runconfig import RunConfig

        self._template = ExperimentRunner(
            config=get_profile(config.profile),
            run_config=RunConfig(
                retries=config.retries,
                cell_budget=config.cell_budget,
                cell_cycles=config.cell_cycles,
                cell_deadline_seconds=config.cell_deadline_seconds,
            ),
            pagerank_iterations=config.pagerank_iterations,
        )

        self.mode = config.initial_mode
        self._inflight: dict[str, dict[str, Any]] = {}
        self._restart_times: deque[float] = deque()
        self.drained = asyncio.Event()
        self._draining = False
        self.served = 0

        self.supervisor = WorkerSupervisor(
            settings=config.worker_settings(),
            workers=self._initial_workers(),
            completion=self._completion_threadsafe,
            listener=self._listener_threadsafe,
            heartbeat_interval_seconds=config.heartbeat_interval_seconds,
            heartbeat_timeout_seconds=config.heartbeat_timeout_seconds,
            restart_backoff_base_seconds=config.restart_backoff_base_seconds,
            restart_backoff_max_seconds=config.restart_backoff_max_seconds,
            max_job_attempts=config.max_job_attempts,
            dispatch_hook=self._dispatch_hook,
        )

    def _initial_workers(self) -> int:
        from ..parallel.pool import resolve_workers

        return resolve_workers(self.config.workers)

    # ------------------------------------------------------------------
    # Events (loop thread only)
    # ------------------------------------------------------------------

    def _emit(self, name: str, **fields: Any) -> None:
        self._logical += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(name, **fields)

    def _listener_threadsafe(self, name: str, **fields: Any) -> None:
        self.loop.call_soon_threadsafe(self._on_worker_event, name, fields)

    def _completion_threadsafe(
        self, job_id: str, kind: str, payload: Any
    ) -> None:
        self.loop.call_soon_threadsafe(self._complete, job_id, kind, payload)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        self.supervisor.start()
        self._emit(
            "server.start", mode=self.mode,
            workers=self._initial_workers(),
        )

    def stop(self) -> None:
        self.supervisor.stop()
        self._emit("server.stop", served=self.served)
        self.journal.close()

    def request_drain(self) -> None:
        """Enter the ladder's final rung: finish in-flight work, refuse
        new submissions, signal ``drained`` when the table empties."""
        if self._draining:
            return
        self._draining = True
        self._set_mode(MODE_DRAINING, reason="drain-requested")
        self._emit("server.drain", pending=len(self._inflight))
        if not self._inflight:
            self.drained.set()

    # ------------------------------------------------------------------
    # Degradation ladder
    # ------------------------------------------------------------------

    def _set_mode(self, mode: str, reason: str) -> None:
        if mode == self.mode:
            return
        # One-way ladder: never climb back up.
        if LADDER.index(mode) < LADDER.index(self.mode):
            return
        previous = self.mode
        self.mode = mode
        self._emit(
            "server.mode", from_mode=previous, to_mode=mode, reason=reason
        )
        if mode == MODE_SERIAL:
            self.supervisor.set_workers(1)
        elif mode in (MODE_CACHED_ONLY, MODE_DRAINING):
            if mode == MODE_CACHED_ONLY:
                self.supervisor.set_workers(0)
                # Nothing will execute the queued work: fail the table.
                for spec in list(self._inflight):
                    self._resolve(
                        spec,
                        Response(
                            status=503,
                            body={
                                "error": "degraded to cached-only; "
                                "execution abandoned",
                                "spec": spec,
                            },
                        ),
                    )

    def _on_worker_event(self, name: str, fields: dict[str, Any]) -> None:
        self._emit(name, **fields)
        if name != "worker.restart":
            return
        import time

        now = time.monotonic()  # repro: noqa REP001 — failure-rate window is operational
        window = self.config.degrade_window_seconds
        self._restart_times.append(now)
        while self._restart_times and now - self._restart_times[0] > window:
            self._restart_times.popleft()
        if len(self._restart_times) >= self.config.degrade_restart_threshold:
            self._restart_times.clear()
            if self.mode == MODE_PARALLEL:
                self._set_mode(MODE_SERIAL, reason="worker-restart-rate")
            elif self.mode == MODE_SERIAL:
                self._set_mode(MODE_CACHED_ONLY, reason="worker-restart-rate")

    # ------------------------------------------------------------------
    # Requests (loop thread)
    # ------------------------------------------------------------------

    def _spec_for(
        self, payload: dict[str, Any]
    ) -> tuple[str, dict[str, str], dict[str, str]]:
        """Validate a submission payload → (fingerprint, coords, task)."""
        from ..experiments.parse import parse_policy, parse_scenario

        try:
            workload = str(payload["workload"])
            dataset = str(payload["dataset"])
            policy_spec = str(payload.get("policy", "base4k"))
            scenario_spec = str(payload.get("scenario", "fresh"))
        except (KeyError, TypeError) as exc:
            raise ReproError(
                "submission requires workload and dataset"
            ) from exc
        policy = parse_policy(policy_spec)
        scenario = parse_scenario(scenario_spec)
        spec = self._template.cell_spec(workload, dataset, policy, scenario)
        coords = {
            "workload": workload,
            "dataset": dataset,
            "policy": policy.name,
            "scenario": scenario.name,
        }
        task = {
            "workload": workload,
            "dataset": dataset,
            "policy": policy_spec,
            "scenario": scenario_spec,
        }
        return spec, coords, task

    def _result_response(self, record: Any) -> Response:
        """The canonical (restart-stable) body for one journal record."""
        self.served += 1
        raw = canonical_json(
            {
                "result": record.payload,
                "spec": record.spec,
                "status": record.status,
            }
        ) + "\n"
        return Response(status=200, raw=raw)

    def lookup(self, spec: str) -> Response:
        """``GET /v1/result/<spec>``: cached results only."""
        record = self.journal.lookup(spec)
        if record is None or record.status != STATUS_DONE:
            return Response(
                status=404, body={"error": "no completed result", "spec": spec}
            )
        self._emit("queue.cached", spec=spec)
        return self._result_response(record)

    async def submit(self, payload: dict[str, Any]) -> Response:
        """``POST /v1/submit``: serve cached, dedupe, admit, execute."""
        try:
            spec, coords, task = self._spec_for(payload)
        except ReproError as error:
            return Response(status=400, body={"error": str(error)})

        # 1. Completed work is always served, whatever the mode — the
        #    journal payload is the byte-stable source of truth.
        record = self.journal.lookup(spec)
        if record is not None and record.status == STATUS_DONE:
            self._emit("queue.cached", spec=spec)
            return self._result_response(record)

        # 2. In-flight dedupe: attach to the running job.
        entry = self._inflight.get(spec)
        if entry is not None:
            entry["waiters"] += 1
            self._emit("queue.dedup", spec=spec, waiters=entry["waiters"])
            return await self._wait(entry)

        # 3. Nothing new starts while draining.
        if self.mode == MODE_DRAINING:
            return Response(
                status=503,
                body={"error": "server is draining", "spec": spec},
            )

        # 4. Circuit breaker: quarantined specs are refused.
        if self.breaker.admit(spec) == STATE_OPEN:
            retry_after = self.breaker.retry_after(spec)
            return Response(
                status=503,
                body={
                    "error": "spec is quarantined by the circuit breaker",
                    "spec": spec,
                    "failures": self.breaker.snapshot()
                    .get(spec, {})
                    .get("failures", 0),
                },
                retry_after=retry_after,
            )

        # 5. Cached-only mode has no execution capacity.
        if self.mode == MODE_CACHED_ONLY:
            return Response(
                status=503,
                body={
                    "error": "server is in cached-only mode; "
                    "only completed specs are served",
                    "spec": spec,
                },
            )

        # 6. Backpressure: a bounded in-flight table.
        depth = len(self._inflight)
        if depth >= self.config.queue_depth:
            retry_after = max(1.0, self.config.heartbeat_timeout_seconds)
            self._emit(
                "queue.reject", spec=spec, depth=depth,
                retry_after=int(retry_after),
            )
            return Response(
                status=429,
                body={"error": "queue full", "spec": spec, "depth": depth},
                retry_after=retry_after,
            )

        # 7. Start the job: exactly one `running` journal record per
        #    deduplicated spec, written before dispatch.
        try:
            self.journal.begin(spec, coords)
        except OSError as error:
            # The results path is unwritable (e.g. disk full): degrade
            # to cached-only rather than executing work we cannot
            # record.
            self._set_mode(MODE_CACHED_ONLY, reason="journal-error")
            return Response(
                status=503,
                body={
                    "error": f"journal write failed: {error}; "
                    "degraded to cached-only",
                    "spec": spec,
                },
            )
        entry = {
            "spec": spec,
            "coords": coords,
            "future": self.loop.create_future(),
            "waiters": 1,
        }
        self._inflight[spec] = entry
        self._emit(
            "queue.enqueue", spec=spec, depth=len(self._inflight)
        )
        self.supervisor.submit(spec, task)
        return await self._wait(entry)

    async def _wait(self, entry: dict[str, Any]) -> Response:
        return await asyncio.shield(entry["future"])

    def _resolve(self, spec: str, response: Response) -> None:
        entry = self._inflight.pop(spec, None)
        if entry is None:
            return
        future = entry["future"]
        if not future.done():
            future.set_result(response)
        if self._draining and not self._inflight:
            self.drained.set()

    def _dispatch_hook(self, task: dict[str, Any], ordinal: int) -> None:
        """Chaos integration point (supervisor threads call this)."""
        if self._chaos is not None and self._chaos.kill_worker_at(ordinal):
            task["chaos_kill"] = True

    def _complete(self, job_id: str, kind: str, payload: Any) -> None:
        spec = job_id
        entry = self._inflight.get(spec)
        if entry is None:
            return  # abandoned (e.g. degraded to cached-only mid-job)
        coords = entry["coords"]
        if kind == "done":
            result = decode_result(payload)
            try:
                self.journal.record_result(spec, coords, result)
            except OSError as error:
                self._set_mode(MODE_CACHED_ONLY, reason="journal-error")
                self._resolve(
                    spec,
                    Response(
                        status=503,
                        body={
                            "error": f"result could not be journaled: "
                            f"{error}",
                            "spec": spec,
                        },
                    ),
                )
                return
            if getattr(result, "ok", False):
                self.breaker.record_success(spec)
            else:
                self.breaker.record_failure(spec)
            record = self.journal.lookup(spec)
            self._resolve(spec, self._result_response(record))
            return
        # Worker raised ("failed") or died repeatedly ("crashed"): the
        # `running` journal record stays — resume semantics re-run it.
        self.breaker.record_failure(spec)
        self._resolve(
            spec,
            Response(
                status=500,
                body={"error": str(payload), "kind": kind, "spec": spec},
            ),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> dict[str, Any]:
        from ..obs.events import validate_events

        events = self.tracer.events
        tail = events[-50:]
        return {
            "mode": self.mode,
            "pid": os.getpid(),
            "workers": self.supervisor.worker_count,
            "inflight": len(self._inflight),
            "served": self.served,
            "journal": self.journal.counts(),
            "breaker": self.breaker.snapshot(),
            "metrics": self.tracer.metrics.snapshot(),
            "events": tail,
            "schema_problems": validate_events(events),
        }
