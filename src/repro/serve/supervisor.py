"""Worker supervision: heartbeats, bounded-backoff restarts, redelivery.

The supervision tree under ``repro serve``:

- N **worker processes** pull job dicts from one shared task queue
  (work stealing, like :mod:`repro.parallel.pool`), simulate the cell,
  and return the encoded result.  Each worker runs a daemon heartbeat
  thread that beats on the result queue every
  ``heartbeat_interval_seconds`` — the GIL schedules it even while the
  main thread simulates, so only a *wedged or dead* process goes
  silent.
- One **monitor thread** in the server process drains the result
  queue, tracks per-slot heartbeats and process liveness, SIGKILLs
  wedged workers, respawns dead slots with bounded exponential backoff
  (base, 2x, 4x, ... capped), and redelivers the in-flight job of a
  dead worker up to ``max_job_attempts`` dispatches before surfacing a
  crash failure.

Job identity vs cell identity: a *job* is one service-level execution
decision (one ``job_id``, one journal ``begin``); redelivery after a
worker crash is the *same* job and writes nothing new to the journal —
that is what makes duplicate-submission accounting exactly-once.

All timing here is operational wall clock (the pool/watchdog REP001
exemption).  Events are reported through a listener callback; the
service owns the tracer.

Cells arrive as plain strings (policy/scenario specs parsed in-worker
via :mod:`repro.experiments.parse`), so tasks pickle cleanly under
``fork`` and ``spawn`` alike.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import signal
import threading
import time
from typing import Any, Callable, Optional

from ..analysis.locksan import make_lock, watch

_POLL_SECONDS = 0.1
"""Monitor poll interval for the result queue."""

CompletionFn = Callable[[str, str, Any], None]
"""``completion(job_id, kind, payload)`` with kind ``done`` (payload is
the encoded result), ``failed`` (payload is an error message string —
the worker raised), or ``crashed`` (redelivery exhausted)."""

Listener = Callable[..., None]
"""``listener(event_name, **fields)`` for worker lifecycle events."""

DispatchHook = Callable[[dict, int], None]
"""``hook(task, dispatch_ordinal)`` called before every dispatch
(including redeliveries); chaos plans use it to tag tasks."""


def _worker_main(
    slot: int,
    settings: dict[str, Any],
    tasks: "multiprocessing.Queue",
    results: "multiprocessing.Queue",
    heartbeat_interval: float,
) -> None:
    """Worker loop: heartbeat thread + steal/simulate/report."""
    pid = os.getpid()
    parent = os.getppid()

    def beat() -> None:
        while True:
            if os.getppid() != parent:
                # The server was SIGKILLed (no atexit ran): don't linger
                # as an orphan blocked on the task queue forever.
                os._exit(0)
            try:
                results.put(("hb", slot, pid, None, None))
            except Exception:
                return
            time.sleep(heartbeat_interval)

    threading.Thread(target=beat, daemon=True).start()

    from ..config import get_profile
    from ..experiments.harness import ExperimentRunner
    from ..experiments.parse import parse_policy, parse_scenario
    from ..experiments.runconfig import RunConfig
    from ..runstate.serialize import encode_result

    runner = ExperimentRunner(
        config=get_profile(settings["profile"]),
        run_config=RunConfig(
            retries=settings["retries"],
            cell_budget=settings["cell_budget"],
            cell_cycles=settings["cell_cycles"],
            cell_deadline_seconds=settings["cell_deadline_seconds"],
        ),
        pagerank_iterations=settings["pagerank_iterations"],
    )

    while True:
        task = tasks.get()
        if task is None:
            results.put(("exit", slot, pid, None, None))
            return
        job_id = task["job_id"]
        results.put(("start", slot, pid, job_id, None))
        if task.get("chaos_kill"):
            # Deterministic chaos: die mid-cell, exactly like a real
            # SIGKILL'd worker.  The short sleep lets the queue feeder
            # flush the "start" message first.
            time.sleep(0.2)
            os.kill(pid, signal.SIGKILL)
        try:
            policy = parse_policy(task["policy"])
            scenario = parse_scenario(task["scenario"])
            outcome = runner._execute_cell(
                task["workload"], task["dataset"], policy, scenario
            )
            payload = encode_result(outcome)
        except BaseException as error:
            results.put(
                ("failed", slot, pid, job_id,
                 f"{type(error).__name__}: {error}")
            )
        else:
            results.put(("done", slot, pid, job_id, payload))


class WorkerSupervisor:
    """Supervises the worker pool for one :class:`SweepService`.

    Thread/process topology: ``start()`` spawns the workers and the
    monitor thread; ``submit()`` may be called from any thread;
    ``completion``/``listener`` callbacks fire on the monitor thread
    (the service marshals them onto its event loop).
    """

    def __init__(
        self,
        settings: dict[str, Any],
        workers: int,
        completion: CompletionFn,
        listener: Listener,
        heartbeat_interval_seconds: float = 0.1,
        heartbeat_timeout_seconds: float = 5.0,
        restart_backoff_base_seconds: float = 0.1,
        restart_backoff_max_seconds: float = 5.0,
        max_job_attempts: int = 2,
        dispatch_hook: Optional[DispatchHook] = None,
    ) -> None:
        self.settings = settings
        self.completion = completion
        self.listener = listener
        self.heartbeat_interval = heartbeat_interval_seconds
        self.heartbeat_timeout = heartbeat_timeout_seconds
        self.backoff_base = restart_backoff_base_seconds
        self.backoff_max = restart_backoff_max_seconds
        self.max_job_attempts = max_job_attempts
        self.dispatch_hook = dispatch_hook

        self._target_workers = max(0, workers)
        self._mp = multiprocessing.get_context()
        self._tasks: "multiprocessing.Queue" = self._mp.Queue()
        self._results: "multiprocessing.Queue" = self._mp.Queue()
        self._lock = make_lock("WorkerSupervisor._lock")
        self._procs: dict[int, multiprocessing.process.BaseProcess] = {}
        self._last_hb: dict[int, float] = {}
        self._in_flight: dict[int, str] = {}  # slot -> job_id
        self._jobs: dict[str, dict[str, Any]] = {}  # job_id -> task
        self._attempts: dict[str, int] = {}
        self._restarts: dict[int, int] = {}  # slot -> restart count
        self._respawn_at: dict[int, float] = {}  # slot -> deadline
        self._pending_pills = 0  # shrink pills queued but not yet consumed
        self._next_slot = 0
        self._dispatches = 0
        # An Event, not a locked bool: stop() must be able to raise the
        # flag without taking self._lock (the monitor may hold it), and
        # Event.set()/is_set() are self-synchronizing (REP009-clean).
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        watch(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            pending = [
                self._spawn_slot() for _ in range(self._target_workers)
            ]
        self._launch(pending)
        self._monitor = threading.Thread(
            target=self._monitor_loop, daemon=True, name="repro-supervisor"
        )
        self._monitor.start()

    def stop(self) -> None:
        """Poison-pill every worker and stop the monitor."""
        self._stop.set()
        with self._lock:
            procs = list(self._procs.values())
            for _ in procs:
                self._tasks.put(None)
        for proc in procs:
            try:
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=2.0)
            except (AssertionError, ValueError):
                # Registered but never started (stop raced a spawn):
                # nothing to join, and its pill stays harmlessly queued.
                continue
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
        self._tasks.cancel_join_thread()
        self._results.cancel_join_thread()
        self._tasks.close()
        self._results.close()

    def set_workers(self, target: int) -> None:
        """Resize the pool (degradation ladder): grow by spawning,
        shrink by poison pills consumed by idle workers.

        Sizing is computed against *effective* capacity — live
        processes plus scheduled respawns minus outstanding pills —
        not the previous target, so resizing while slots are crashed
        or mid-shrink neither over-pills nor strands the pool.
        """
        target = max(0, target)
        pending: list[tuple[int, multiprocessing.process.BaseProcess]] = []
        with self._lock:
            self._target_workers = target
            effective = self._effective_capacity()
            if target > effective:
                for _ in range(target - effective):
                    pending.append(self._spawn_slot())
            else:
                for _ in range(effective - target):
                    self._tasks.put(None)
                    self._pending_pills += 1
        self._launch(pending)

    def _effective_capacity(self) -> int:
        """Workers the pool will settle at with no further action
        (lock held): live + respawning − queued shrink pills."""
        return (
            len(self._procs) + len(self._respawn_at) - self._pending_pills
        )

    @property
    def worker_count(self) -> int:
        with self._lock:
            return len(self._procs)

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    def submit(self, job_id: str, task: dict[str, Any]) -> None:
        """Queue one job for execution (work stealing picks the worker)."""
        task = dict(task)
        task["job_id"] = job_id
        with self._lock:
            self._jobs[job_id] = task
            self._attempts[job_id] = 0
            self._dispatch(task)

    def _dispatch(self, task: dict[str, Any]) -> None:
        """Put one task on the queue (lock held)."""
        job_id = task["job_id"]
        self._attempts[job_id] += 1
        self._dispatches += 1
        task = dict(task)
        if self.dispatch_hook is not None:
            self.dispatch_hook(task, self._dispatches)
        self._tasks.put(task)

    # ------------------------------------------------------------------
    # Worker processes
    # ------------------------------------------------------------------

    def _spawn_slot(self) -> tuple[int, multiprocessing.process.BaseProcess]:
        """Register one worker slot (lock held); the caller starts it.

        The process object is created and tracked here but *started* by
        :meth:`_launch` after the lock is released — forking while
        holding ``self._lock`` hands the child a permanently held lock
        and whatever half-updated state the locked region had (REP010).
        """
        slot = self._next_slot
        self._next_slot += 1
        proc = self._mp.Process(
            target=_worker_main,
            args=(
                slot, self.settings, self._tasks, self._results,
                self.heartbeat_interval,
            ),
            daemon=True,
        )
        self._procs[slot] = proc
        self._last_hb[slot] = time.monotonic()  # repro: noqa REP001 — supervision clock
        return slot, proc

    def _launch(
        self,
        pending: list[tuple[int, multiprocessing.process.BaseProcess]],
    ) -> None:
        """Start freshly registered workers and announce them (no lock)."""
        for slot, proc in pending:
            proc.start()
            self.listener("worker.spawn", slot=slot, pid=proc.pid or 0)

    def _reap_slot(self, slot: int, clean: bool) -> None:
        """Handle one dead/killed worker (lock held): report, redeliver
        its in-flight job, schedule a backoff respawn."""
        proc = self._procs.pop(slot, None)
        pid = (proc.pid or 0) if proc is not None else 0
        self._last_hb.pop(slot, None)
        self.listener("worker.exit", slot=slot, pid=pid, clean=int(clean))
        job_id = self._in_flight.pop(slot, None)
        if job_id is not None and job_id in self._jobs:
            if self._attempts.get(job_id, 0) >= self.max_job_attempts:
                task = self._jobs.pop(job_id)
                self._attempts.pop(job_id, None)
                self.completion(
                    job_id, "crashed",
                    f"worker died {self.max_job_attempts} time(s) "
                    f"executing {task['workload']}/{task['dataset']}",
                )
            else:
                # Redeliver: same job, same journal begin — the crash
                # consumed an attempt, not the job's identity.
                self._dispatch(self._jobs[job_id])
        if self._stop.is_set():
            return
        if clean and self._pending_pills > 0:
            # This exit consumed an intended shrink pill.  The capacity
            # check below still runs: if crashes raced the shrink and
            # the pool is under target anyway, the slot respawns — a
            # clean exit must never strand the pool below target.
            self._pending_pills -= 1
        if self._effective_capacity() < self._target_workers:
            restarts = self._restarts.get(slot, 0) + 1
            self._restarts[slot] = restarts
            backoff = min(
                self.backoff_base * (2 ** (restarts - 1)), self.backoff_max
            )
            now = time.monotonic()  # repro: noqa REP001 — supervision clock
            self._respawn_at[slot] = now + backoff
            self.listener(
                "worker.restart", slot=slot,
                backoff_ms=int(backoff * 1000),
            )

    # ------------------------------------------------------------------
    # Monitor
    # ------------------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stop.is_set():
            try:
                kind, slot, pid, job_id, payload = self._results.get(
                    timeout=_POLL_SECONDS
                )
            except queue.Empty:
                self._sweep()
                continue
            except (OSError, ValueError):
                return  # queue closed during shutdown
            if kind == "hb":
                with self._lock:
                    # Drop heartbeats from already-reaped slots: slots
                    # are never reused, so a late beat would re-insert
                    # a stale entry nothing ever cleans up.
                    if slot in self._procs:
                        self._last_hb[slot] = time.monotonic()  # repro: noqa REP001 — hb clock
                continue
            with self._lock:
                if kind == "start":
                    self._in_flight[slot] = job_id
                    self._last_hb[slot] = time.monotonic()  # repro: noqa REP001 — hb clock
                    continue
                if kind == "exit":
                    self._reap_slot(slot, clean=True)
                    continue
                # done / failed
                self._in_flight.pop(slot, None)
                self._jobs.pop(job_id, None)
                self._attempts.pop(job_id, None)
                self._restarts.pop(slot, None)  # a result proves health
            if kind in ("done", "failed"):
                self.completion(job_id, kind, payload)

    def _sweep(self) -> None:
        """Idle-poll bookkeeping: dead workers, silent workers, due
        respawns."""
        now = time.monotonic()  # repro: noqa REP001 — supervision clock
        pending: list[tuple[int, multiprocessing.process.BaseProcess]] = []
        with self._lock:
            for slot, proc in list(self._procs.items()):
                if proc.pid is None:
                    # Registered but not yet started (_launch is in
                    # flight on another thread): young, not dead.
                    continue
                if not proc.is_alive():
                    self._reap_slot(slot, clean=False)
                    continue
                last = self._last_hb.get(slot, now)
                if now - last > self.heartbeat_timeout:
                    # Alive but silent: wedged beyond doubt (the
                    # heartbeat thread beats through the GIL even while
                    # the main thread simulates).  Kill and recover.
                    self.listener(
                        "worker.heartbeat_lost", slot=slot,
                        age_ms=int((now - last) * 1000),
                    )
                    proc.kill()
                    proc.join(timeout=2.0)
                    self._reap_slot(slot, clean=False)
            for slot, deadline in list(self._respawn_at.items()):
                if now >= deadline:
                    del self._respawn_at[slot]
                    if self._effective_capacity() < self._target_workers:
                        pending.append(self._spawn_slot())
        self._launch(pending)
