"""Configuration for the resilient sweep service.

One frozen dataclass (the :class:`~repro.experiments.runconfig
.RunConfig` discipline) holds every daemon knob: transport, worker
pool sizing, admission control, circuit-breaker thresholds, worker
supervision timing, and the execution policy handed to workers.
Validation happens at construction so a nonsense service dies at
startup, not under load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..config import PROFILES
from ..errors import ConfigError

MODE_PARALLEL = "parallel"
MODE_SERIAL = "serial"
MODE_CACHED_ONLY = "cached-only"
MODE_DRAINING = "draining"

LADDER = (MODE_PARALLEL, MODE_SERIAL, MODE_CACHED_ONLY, MODE_DRAINING)
"""The degradation ladder, best to worst.  Transitions are one-way:
the service only ever moves right, driven by observed failure rates
(see docs/service.md)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` needs, validated.

    Attributes:
        journal_path: the run journal backing the result store; the
            service takes the journal's pidfile lock for its lifetime.
        socket_path: UNIX-domain socket to listen on (preferred for
            local use); mutually exclusive with ``host``/``port``.
        host, port: TCP listen address, used when ``socket_path`` is
            ``None``.
        workers: initial worker-process count (clamped to CPUs via
            :func:`repro.parallel.pool.resolve_workers`); the ladder's
            ``parallel`` rung.  ``1`` starts on the ``serial`` rung.
        queue_depth: admission bound — total in-flight (executing plus
            queued) specs; submissions past it get a 429 + retry-after.
        max_job_attempts: dispatches per job before a worker-crash loop
            is surfaced as a failure (bounds redelivery).
        breaker_threshold: consecutive failures of one spec before its
            circuit opens (quarantine).
        breaker_cooldown_seconds: quarantine period before one probe
            submission is admitted again.
        heartbeat_interval_seconds: worker heartbeat period.
        heartbeat_timeout_seconds: heartbeat silence (while the process
            is alive) treated as a wedged worker: killed and restarted.
        restart_backoff_base_seconds / restart_backoff_max_seconds:
            bounded exponential backoff between restarts of one worker
            slot.
        degrade_restart_threshold: worker restarts within
            ``degrade_window_seconds`` that trigger one ladder step.
        degrade_window_seconds: sliding window for the restart rate.
        profile: machine profile simulated for every cell.
        pagerank_iterations: PR iteration cap (cell identity).
        retries / cell_budget / cell_cycles / cell_deadline_seconds:
            the per-cell execution policy (cell identity where
            applicable), mirroring the CLI flags.
        chaos: optional chaos plan string (see :mod:`repro.chaos`);
            deterministic process-level adversity for tests — never set
            in production.
    """

    journal_path: str = field(default="")
    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 7341
    workers: int = 2
    queue_depth: int = 8
    max_job_attempts: int = 2
    breaker_threshold: int = 3
    breaker_cooldown_seconds: float = 60.0
    heartbeat_interval_seconds: float = 0.1
    heartbeat_timeout_seconds: float = 5.0
    restart_backoff_base_seconds: float = 0.1
    restart_backoff_max_seconds: float = 5.0
    degrade_restart_threshold: int = 3
    degrade_window_seconds: float = 30.0
    profile: str = "scaled"
    pagerank_iterations: int = 3
    retries: int = 2
    cell_budget: Optional[int] = None
    cell_cycles: Optional[int] = None
    cell_deadline_seconds: Optional[float] = None
    chaos: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.journal_path:
            raise ConfigError("ServiceConfig requires a journal_path")
        if self.profile not in PROFILES:
            raise ConfigError(
                f"unknown profile {self.profile!r}; known: "
                + ", ".join(sorted(PROFILES))
            )
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.queue_depth < 1:
            raise ConfigError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.max_job_attempts < 1:
            raise ConfigError(
                f"max_job_attempts must be >= 1, got {self.max_job_attempts}"
            )
        if self.breaker_threshold < 1:
            raise ConfigError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        for name in (
            "breaker_cooldown_seconds",
            "heartbeat_interval_seconds",
            "heartbeat_timeout_seconds",
            "restart_backoff_base_seconds",
            "restart_backoff_max_seconds",
            "degrade_window_seconds",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        if self.degrade_restart_threshold < 1:
            raise ConfigError(
                "degrade_restart_threshold must be >= 1, got "
                f"{self.degrade_restart_threshold}"
            )

    @property
    def initial_mode(self) -> str:
        """The ladder rung the service starts on, derived from the
        *effective* worker count (the raw ``workers`` knob clamped to
        available CPUs): a 1-CPU host with the default ``workers=2``
        runs one worker and must start on the ``serial`` rung."""
        from ..parallel.pool import resolve_workers

        return (
            MODE_PARALLEL if resolve_workers(self.workers) > 1
            else MODE_SERIAL
        )

    def worker_settings(self) -> dict[str, Any]:
        """The picklable execution policy shipped to every worker."""
        return {
            "profile": self.profile,
            "pagerank_iterations": self.pagerank_iterations,
            "retries": self.retries,
            "cell_budget": self.cell_budget,
            "cell_cycles": self.cell_cycles,
            "cell_deadline_seconds": self.cell_deadline_seconds,
        }
