"""The per-spec circuit breaker.

Quarantines specs that fail repeatedly — a spec whose simulation
deterministically fails (or whose worker keeps dying) would otherwise
burn a worker slot on every duplicate submission.  Classic three-state
breaker, keyed by spec fingerprint:

- **closed** — failures below the threshold; submissions execute.
- **open** — the spec hit ``threshold`` consecutive failures; new
  submissions are refused (HTTP 503 + retry-after) until the cooldown
  elapses.
- **probe** (half-open) — after the cooldown, exactly one submission is
  admitted; success closes the circuit, failure re-opens it for another
  cooldown.

State is persisted next to the journal (``<journal>.breaker.json``,
written through :func:`repro.runstate.atomic.atomic_write_text`) so a
quarantine survives server restarts — the chaos harness's "failing spec
stays quarantined across a crash" invariant.

The cooldown uses wall-clock time: quarantine is an operational
mechanism (like the watchdog's deadline), not part of any simulated
outcome, so it carries the same REP001 exemption.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from ..runstate.atomic import atomic_write_text
from ..runstate.serialize import canonical_json

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_PROBE = "probe"

Listener = Callable[..., None]
"""Called as ``listener(event_name, **fields)`` on state transitions."""


class CircuitBreaker:
    """Per-spec failure tracking with persistence.

    Args:
        path: persisted state file (JSON; atomic rewrites).  ``None``
            keeps the breaker in-memory only (tests).
        threshold: consecutive failures that open a spec's circuit.
        cooldown_seconds: quarantine period before a probe is admitted.
        listener: transition callback — receives ``breaker.open`` /
            ``breaker.probe`` / ``breaker.close`` with schema fields
            (the service forwards these into its tracer).
    """

    def __init__(
        self,
        path: Optional[str],
        threshold: int,
        cooldown_seconds: float,
        listener: Optional[Listener] = None,
    ) -> None:
        self.path = path
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self.listener = listener
        # spec -> {"failures": int, "opened_at": float | None}
        self._state: dict[str, dict[str, Any]] = {}
        self._load()

    # ------------------------------------------------------------------

    def _notify(self, event: str, **fields: Any) -> None:
        if self.listener is not None:
            self.listener(event, **fields)

    def _load(self) -> None:
        if self.path is None:
            return
        import json
        import os

        if not os.path.exists(self.path):
            return
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, ValueError):
            # A torn/corrupt breaker file is recoverable state, not an
            # error: start closed and re-learn.
            return
        if isinstance(raw, dict):
            for spec, entry in raw.items():
                if not isinstance(entry, dict):
                    continue
                try:
                    failures = int(entry.get("failures", 0))
                except (TypeError, ValueError):
                    continue
                opened_at = entry.get("opened_at")
                self._state[str(spec)] = {
                    "failures": failures,
                    "opened_at": (
                        float(opened_at) if opened_at is not None else None
                    ),
                }

    def _persist(self) -> None:
        if self.path is None:
            return
        atomic_write_text(self.path, canonical_json(self._state) + "\n")

    # ------------------------------------------------------------------

    def admit(self, spec: str) -> str:
        """Admission decision for one submission of ``spec``.

        Returns :data:`STATE_CLOSED` (execute normally),
        :data:`STATE_PROBE` (execute as the half-open probe — the
        cooldown clock restarts so a failed probe waits a full cooldown
        again), or :data:`STATE_OPEN` (refuse).
        """
        entry = self._state.get(spec)
        if entry is None or entry["opened_at"] is None:
            return STATE_CLOSED
        now = time.time()  # repro: noqa REP001 — operational cooldown clock
        if now - entry["opened_at"] >= self.cooldown_seconds:
            entry["opened_at"] = now
            self._persist()
            self._notify("breaker.probe", spec=spec)
            return STATE_PROBE
        return STATE_OPEN

    def retry_after(self, spec: str) -> float:
        """Seconds until the next probe would be admitted (0 if not
        quarantined)."""
        entry = self._state.get(spec)
        if entry is None or entry["opened_at"] is None:
            return 0.0
        now = time.time()  # repro: noqa REP001 — operational cooldown clock
        return max(0.0, self.cooldown_seconds - (now - entry["opened_at"]))

    def is_open(self, spec: str) -> bool:
        entry = self._state.get(spec)
        return entry is not None and entry["opened_at"] is not None

    def record_failure(self, spec: str) -> None:
        """One more failure for ``spec``; opens the circuit at the
        threshold (or immediately re-opens a probed circuit)."""
        entry = self._state.setdefault(
            spec, {"failures": 0, "opened_at": None}
        )
        entry["failures"] += 1
        if entry["failures"] >= self.threshold:
            was_open = entry["opened_at"] is not None
            entry["opened_at"] = time.time()  # repro: noqa REP001 — operational cooldown clock
            if not was_open:
                self._notify(
                    "breaker.open", spec=spec, failures=entry["failures"]
                )
        self._persist()

    def record_success(self, spec: str) -> None:
        """A successful execution closes (and forgets) the circuit."""
        entry = self._state.pop(spec, None)
        self._persist()
        if entry is not None and entry["opened_at"] is not None:
            self._notify("breaker.close", spec=spec)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-safe view for the status endpoint."""
        return {
            spec: {
                "failures": entry["failures"],
                "open": entry["opened_at"] is not None,
            }
            for spec, entry in sorted(self._state.items())
        }
