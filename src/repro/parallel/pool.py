"""Work-stealing process pool for experiment cells.

Ownership model (docs/performance.md):

- The **parent** process is the single owner of the cell cache and the
  run journal.  Workers never see either: they receive bare cell
  specifications, simulate, and return results encoded through the
  journal's own full-fidelity round-trip
  (:func:`repro.runstate.serialize.encode_result`), so a decoded result
  is byte-identical to one produced in-process.
- **Work stealing** falls out of the queue discipline: cell indices sit
  on one shared task queue and each worker pulls its next index the
  moment it goes idle — no static partitioning, no stragglers holding
  partitions hostage.
- **Determinism** is the parent's job: results arrive in completion
  order, the caller (:meth:`repro.experiments.harness.ExperimentRunner
  .run_cells`) commits them in spec order.
- **Fork and spawn** both work.  Under ``fork`` workers inherit the
  parent's prepared graphs copy-on-write; under ``spawn`` the
  :class:`WorkerContext` is pickled to each worker, and a context that
  cannot be pickled (e.g. a figure's closure-built policy) degrades to
  parent-local execution rather than failing the sweep.
- The parent enforces the **wall-clock watchdog** from outside: each
  dispatch is timestamped, and a worker that blows well past
  ``cell_deadline_seconds`` (the in-worker watchdog fires first when
  the cell is merely slow; the parent-side deadline catches a truly
  wedged process) is terminated, its cell absorbed as
  ``FAILED(watchdog)``, and its pool slot rescheduled with a fresh
  worker.

Wall-clock reads in this module are infrastructure, not simulation —
the same exemption the cooperative watchdog carries.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from ..analysis.sanitizer import sanitizer_enabled, set_sanitize
from ..errors import ExperimentError
from ..runstate.serialize import decode_result, encode_result

if TYPE_CHECKING:
    from ..experiments.harness import CellResult, ExperimentRunner

Cell = tuple  # (workload_name, dataset_name, Policy, Scenario)

_POLL_SECONDS = 0.2
"""Result-queue poll interval while a deadline or liveness check is armed."""

_DEAD_STRIKES = 3
"""Consecutive idle polls a worker must be dead for before its in-flight
cell is reclaimed (absorbs the race where a result message is still in
the queue when the worker exits)."""


def resolve_workers(workers: int) -> int:
    """Normalize a worker-count knob: ``0`` means one per CPU, and any
    request is clamped to the CPUs actually available.

    The clamp is what keeps the 1-CPU regression recorded in
    ``BENCH_sweep.json`` (0.82x vs serial with ``--workers 4`` on one
    core) from recurring: oversubscribing cores buys pure queue/IPC
    overhead, so ``--workers 4`` on a 1-CPU host resolves to ``1`` and
    takes the serial path.  Callers that need to know a clamp happened
    compare against their requested value and emit ``pool.autosize``.
    """
    cpus = os.cpu_count() or 1
    if workers == 0:
        return cpus
    return min(max(1, workers), cpus)


@dataclass
class WorkerContext:
    """Everything a worker needs to rebuild a journal-free runner.

    Carries the parent's prepared graph/permutation caches so graph
    loading and reordering happen exactly once (in the parent), and the
    ambient sanitizer setting so ``REPRO_SANITIZE`` semantics survive a
    ``spawn`` boundary (``fork`` inherits them anyway).
    """

    config: Any
    pagerank_iterations: int
    run_config: Any  # a worker-safe RunConfig (journal stripped)
    graph_cache: dict
    perm_cache: dict
    cells: list
    sanitize: bool

    @property
    def cell_deadline_seconds(self) -> Optional[float]:
        """The wall-clock deadline the parent-side watchdog enforces."""
        return self.run_config.cell_deadline_seconds

    @classmethod
    def from_runner(
        cls, runner: "ExperimentRunner", cells: list
    ) -> "WorkerContext":
        run_config = runner.run_config.worker_view()
        if run_config.faults is None:
            # Pin the effective plan so a config-level fault plan
            # survives the journey even if the worker's profile lookup
            # were to drift from the parent's.
            run_config = run_config.replace(
                faults=runner.effective_fault_plan
            )
        return cls(
            config=runner.config,
            pagerank_iterations=runner.pagerank_iterations,
            run_config=run_config,
            graph_cache=runner._graph_cache,
            perm_cache=runner._perm_cache,
            cells=cells,
            sanitize=sanitizer_enabled(),
        )

    def make_runner(self) -> "ExperimentRunner":
        """A journal-free, capture-always runner clone.

        Workers always capture failures as :class:`~repro.experiments
        .harness.CellFailure` payloads (strict mode never reaches the
        pool), and never journal — the parent owns durability.
        """
        from ..experiments.harness import ExperimentRunner

        runner = ExperimentRunner(
            config=self.config,
            run_config=self.run_config,
            pagerank_iterations=self.pagerank_iterations,
            capture_failures=True,
        )
        runner._graph_cache = self.graph_cache
        runner._perm_cache = self.perm_cache
        return runner


def _worker_main(
    worker_id: int,
    ctx: WorkerContext,
    tasks: "multiprocessing.Queue",
    results: "multiprocessing.Queue",
) -> None:
    """Worker loop: steal an index, simulate, return the encoded result."""
    if ctx.sanitize:
        set_sanitize(True)
    runner = ctx.make_runner()
    while True:
        index = tasks.get()
        if index is None:
            results.put(("exit", -1, worker_id, None))
            return
        results.put(("start", index, worker_id, None))
        try:
            outcome = runner._execute_cell(*ctx.cells[index])
            payload = encode_result(outcome)
        except BaseException as error:  # surfaced as ExperimentError above
            results.put(
                ("error", index, worker_id,
                 f"{type(error).__name__}: {error}")
            )
        else:
            results.put(("done", index, worker_id, payload))


def _context_picklable(ctx: WorkerContext) -> bool:
    try:
        pickle.dumps(ctx)
    except Exception:
        return False
    return True


def execute_cells(
    runner: "ExperimentRunner", cells: list, workers: int
) -> list["CellResult"]:
    """Execute ``cells`` on a process pool; results align with ``cells``.

    The caller owns dedupe, cache, journal and ordering — this function
    only fans simulation out and collects it back in.
    """
    from ..experiments.harness import CellFailure

    ctx = WorkerContext.from_runner(runner, list(cells))
    mp_ctx = multiprocessing.get_context()
    if mp_ctx.get_start_method() != "fork" and not _context_picklable(ctx):
        # Spawn would have to pickle the context; a closure-built policy
        # (figures construct some inline) cannot cross that boundary.
        # Degrade to parent-local execution on a clean runner clone.
        local = ctx.make_runner()
        return [local._execute_cell(*cell) for cell in cells]

    nworkers = max(1, min(workers, len(cells)))
    tasks: "multiprocessing.Queue" = mp_ctx.Queue()
    results_q: "multiprocessing.Queue" = mp_ctx.Queue()
    for index in range(len(cells)):
        tasks.put(index)
    for _ in range(nworkers):
        tasks.put(None)

    procs: dict[int, multiprocessing.process.BaseProcess] = {}
    next_worker_id = 0

    def spawn_worker() -> None:
        nonlocal next_worker_id
        proc = mp_ctx.Process(
            target=_worker_main,
            args=(next_worker_id, ctx, tasks, results_q),
            daemon=True,
        )
        procs[next_worker_id] = proc
        next_worker_id += 1
        proc.start()

    for _ in range(nworkers):
        spawn_worker()

    deadline = ctx.cell_deadline_seconds
    # The in-worker watchdog fires *at* the deadline and returns a
    # normal FAILED(watchdog) result; the parent only steps in when the
    # worker is wedged past a grace window on top of it.
    grace = None if deadline is None else deadline + max(1.0, deadline)

    outcomes: dict[int, "CellResult"] = {}
    in_flight: dict[int, tuple[int, float]] = {}  # index -> (wid, started)
    dead_strikes: dict[int, int] = {}  # worker id -> consecutive dead polls
    local: Optional["ExperimentRunner"] = None

    def absorb_watchdog(index: int, message: str) -> None:
        workload_name, dataset_name, policy, scenario = cells[index]
        outcomes[index] = CellFailure(
            workload=workload_name,
            dataset=dataset_name,
            policy=policy.name,
            scenario=scenario.name,
            error="watchdog",
            message=message,
        )

    def run_locally(index: int) -> None:
        nonlocal local
        if local is None:
            local = ctx.make_runner()
        outcomes[index] = local._execute_cell(*cells[index])

    try:
        while len(outcomes) < len(cells):
            try:
                kind, index, wid, payload = results_q.get(
                    timeout=_POLL_SECONDS
                )
            except queue.Empty:
                now = time.monotonic()  # repro: noqa REP001
                if grace is not None:
                    for index, (wid, started) in list(in_flight.items()):
                        if now - started <= grace:
                            continue
                        # Hung worker: absorb the cell, reschedule the
                        # pool slot with a fresh worker.
                        proc = procs.pop(wid, None)
                        if proc is not None:
                            proc.terminate()
                            proc.join(timeout=5.0)
                        del in_flight[index]
                        absorb_watchdog(
                            index,
                            f"worker exceeded the {deadline:g}s cell "
                            "deadline and was terminated by the parent",
                        )
                        if len(outcomes) + len(in_flight) < len(cells):
                            spawn_worker()
                for index, (wid, _started) in list(in_flight.items()):
                    proc = procs.get(wid)
                    if proc is not None and not proc.is_alive():
                        strikes = dead_strikes.get(wid, 0) + 1
                        dead_strikes[wid] = strikes
                        if strikes >= _DEAD_STRIKES:
                            # Worker died without reporting (hard crash):
                            # its cell re-runs in the parent.
                            procs.pop(wid, None)
                            del in_flight[index]
                            run_locally(index)
                            if len(outcomes) + len(in_flight) < len(cells):
                                spawn_worker()
                    else:
                        dead_strikes.pop(wid, None)
                if not in_flight and all(
                    not proc.is_alive() for proc in procs.values()
                ):
                    # The whole pool died between cells; finish serially.
                    for index in range(len(cells)):
                        if index not in outcomes:
                            run_locally(index)
                continue
            if kind == "start":
                in_flight[index] = (wid, time.monotonic())  # repro: noqa REP001
                dead_strikes.pop(wid, None)
                continue
            if kind == "exit":
                continue
            in_flight.pop(index, None)
            dead_strikes.pop(wid, None)
            if kind == "done":
                outcomes[index] = decode_result(payload)
            else:
                raise ExperimentError(
                    f"parallel worker failed on cell "
                    f"{cells[index][0]}/{cells[index][1]}: {payload}"
                )
    finally:
        for proc in procs.values():
            if proc.is_alive():
                proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        tasks.cancel_join_thread()
        results_q.cancel_join_thread()
        tasks.close()
        results_q.close()

    return [outcomes[index] for index in range(len(cells))]
