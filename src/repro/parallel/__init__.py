"""Multi-process fan-out for experiment sweeps.

Every figure is a batch of independent, deterministic experiment cells;
this package executes such a batch on a work-stealing process pool and
hands the results back to the single-owner parent for a deterministic
merge (see :mod:`repro.parallel.pool` and docs/performance.md).

The public entry point is ``ExperimentRunner(workers=N)`` /
``ExperimentRunner.run_cells`` — figure functions and the CLI
(``--workers`` / ``REPRO_WORKERS``) route through it; nothing here needs
to be called directly.
"""

from .pool import WorkerContext, execute_cells, resolve_workers

__all__ = [
    "WorkerContext",
    "execute_cells",
    "resolve_workers",
]
