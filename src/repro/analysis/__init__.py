"""Static analysis and runtime sanitization for the simulator.

Two halves:

- :mod:`repro.analysis.lint` — AST-based repo-specific lint rules
  (REP001–REP006) runnable as ``python -m repro.analysis``;
- :mod:`repro.analysis.sanitizer` — "MemSan", a runtime invariant
  checker for the simulated memory subsystem, enabled with
  ``REPRO_SANITIZE=1`` or ``--sanitize``.
"""

from __future__ import annotations

from .findings import ALL_RULES, RULE_SUMMARIES, Finding
from .lint import lint_paths, lint_text
from .sanitizer import (
    MemSanitizer,
    NullSanitizer,
    make_sanitizer,
    sanitizer_enabled,
    set_sanitize,
)

__all__ = [
    "ALL_RULES",
    "Finding",
    "MemSanitizer",
    "NullSanitizer",
    "RULE_SUMMARIES",
    "lint_paths",
    "lint_text",
    "make_sanitizer",
    "sanitizer_enabled",
    "set_sanitize",
]
