"""Static analysis and runtime sanitization for the simulator.

Three halves:

- :mod:`repro.analysis.lint` — AST-based repo-specific lint rules
  (REP001–REP008, REP012 and REP013 per-file/project rules plus the
  interprocedural ConcSan rules REP009–REP011) runnable as
  ``python -m repro.analysis``;
- :mod:`repro.analysis.sanitizer` — "MemSan", a runtime invariant
  checker for the simulated memory subsystem, enabled with
  ``REPRO_SANITIZE=1`` or ``--sanitize``;
- :mod:`repro.analysis.locksan` — "LockSan", a runtime lockset
  sanitizer (the dynamic twin of REP009), enabled with
  ``REPRO_LOCKSAN=1``.
"""

from __future__ import annotations

from .baseline import apply_baseline, load_baseline, render_baseline
from .findings import ALL_RULES, RULE_SUMMARIES, Finding
from .lint import lint_paths, lint_text
from .locksan import (
    LockSanFinding,
    LockSanitizer,
    TrackedLock,
    get_locksan,
    held_locks,
    locksan_enabled,
    make_lock,
    set_locksan,
    watch,
)
from .sanitizer import (
    MemSanitizer,
    NullSanitizer,
    make_sanitizer,
    sanitizer_enabled,
    set_sanitize,
)

__all__ = [
    "ALL_RULES",
    "Finding",
    "LockSanFinding",
    "LockSanitizer",
    "MemSanitizer",
    "NullSanitizer",
    "RULE_SUMMARIES",
    "TrackedLock",
    "apply_baseline",
    "get_locksan",
    "held_locks",
    "lint_paths",
    "lint_text",
    "load_baseline",
    "locksan_enabled",
    "make_lock",
    "make_sanitizer",
    "render_baseline",
    "sanitizer_enabled",
    "set_locksan",
    "set_sanitize",
    "watch",
]
