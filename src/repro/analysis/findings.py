"""Finding records and the rule registry for ``repro.analysis.lint``.

A :class:`Finding` is one rule violation anchored to a file and line.
Findings are ordered (path, line, column, rule) so reports are stable
regardless of the order rules run in — the analyzer's own output must be
as deterministic as the simulator it audits.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The canonical ``path:line:col: RULE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (``--format=json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


RULE_SUMMARIES: dict[str, str] = {
    "REP000": (
        "unused suppression: a line-level 'repro: noqa' pragma that "
        "suppresses no finding; delete it so stale suppressions rot "
        "visibly"
    ),
    "REP001": (
        "no nondeterminism sources (wall clocks, unseeded RNGs, "
        "os.urandom, id()-keyed ordering) inside the simulator"
    ),
    "REP002": (
        "no iteration over set/frozenset values where hash order could "
        "leak into metrics or fault sequencing; iterate sorted(...) "
        "instead"
    ),
    "REP003": (
        "no +/-/comparison mixing identifiers of different memory units "
        "(_bytes/_frames/_pages/_regions) without a repro.units helper"
    ),
    "REP004": (
        "fault-site completeness: every FaultSite member is wired to an "
        "injector.check() call site and every reference names a real "
        "member"
    ),
    "REP005": (
        "ledger hygiene: KernelLedger counters are only mutated inside "
        "repro/mem/stats.py (everything else goes through the charge "
        "helpers)"
    ),
    "REP006": (
        "__all__ must list exactly the public names a package's "
        "__init__ binds"
    ),
    "REP007": (
        "durable-write discipline: journal/results paths are only "
        "written through repro.runstate.atomic (atomic_write_text / "
        "append_durable_line), never via direct open('w')/json.dump/"
        "write_text"
    ),
    "REP008": (
        "tracer emission discipline: every obs .emit() site binds the "
        "tracer to a local and sits inside an 'is not None' guard, so "
        "tracing is zero-cost when off"
    ),
    "REP009": (
        "lock discipline (ConcSan): attributes of lock-owning classes "
        "must not be accessed both under their inferred guarding lock "
        "and outside it (Eraser-style interprocedural lockset "
        "inference; runtime twin: LockSan / REPRO_LOCKSAN=1)"
    ),
    "REP010": (
        "fork/spawn safety (ConcSan): no process creation while a lock "
        "is held, no bound-method Process targets, no locks/sockets/"
        "fds/tracers/RNG state captured across the spawn boundary"
    ),
    "REP011": (
        "crash consistency (ConcSan): every durable state file "
        "(journal, .breaker.json, pidfiles, BENCH_*.json) has a "
        "torn-write story — writes go through runstate.atomic and "
        "json parses of durable state tolerate torn records"
    ),
    "REP012": (
        "vectorized trace discipline: no per-element Python loops over "
        "TlbTrace arrays (run_keys/run_counts/lookup_view views) "
        "outside repro/tlb/engine.py and repro/tlb/hierarchy.py; "
        "consume translation streams through numpy set-wise ops or a "
        "hierarchy's simulate()"
    ),
    "REP013": (
        "policy hook sandbox: PagePolicy callbacks (on_fault / "
        "on_khugepaged_scan / on_demote_scan) are deterministic pure "
        "functions of their inputs — no wall clocks, no ambient RNG, "
        "no writes through the read-only PolicyView, no filesystem/"
        "process/network access, imports limited to an allowlist "
        "(docs/policies.md)"
    ),
}
"""One-line summary per rule, used by ``--list-rules`` and the docs."""

ALL_RULES: tuple[str, ...] = tuple(sorted(RULE_SUMMARIES))
"""Every known rule code, sorted."""
