"""ConcSan: interprocedural concurrency and crash-consistency analysis.

Second-generation analysis core for ``repro.analysis``: where the
REP001–REP008 rules inspect one statement (or one file) at a time,
ConcSan builds a whole-program model — a module graph, a class registry
with per-attribute type/kind inference, and a cross-module call graph —
and runs three rule families over it:

- **REP009 (lock discipline)** — Eraser-style lockset inference.  For
  every class that owns a ``threading.Lock``/``RLock`` attribute, each
  method is scanned with the set of ``with self._lock:`` regions it is
  inside, entry locksets are propagated along the call graph (a private
  helper only ever called under the lock *is* lock-protected, even when
  the call crosses a module boundary), and any mutable attribute
  accessed both under its inferred guarding lock and outside it is
  flagged at the unguarded site.  The runtime twin is
  :mod:`repro.analysis.locksan`.
- **REP010 (fork/spawn safety)** — flags process creation while a lock
  is held (the forked child inherits a copy of the locked lock; any
  waiter in the child deadlocks forever), bound-method ``Process``
  targets (which pickle/inherit the whole object, locks and fds
  included), and lock/socket/file/tracer/RNG-typed attributes passed
  across the spawn boundary in ``Process`` args (queues and events are
  designed to cross and stay exempt).
- **REP011 (crash consistency)** — extends REP007 from "use the atomic
  writers" to a torn-write story for every durable state file
  (journal, ``.breaker.json``, pidfiles, ``BENCH_*.json``): write sites
  in durable modules must go through ``repro.runstate.atomic``, and
  ``json.load``/``json.loads`` parse sites of durable state must sit
  under a ``try/except ValueError`` so a torn record reads as absent
  rather than crashing recovery.

All three register as project rules (they need the whole module list);
findings are ordinary :class:`~repro.analysis.findings.Finding` records
and respect ``repro:noqa`` suppression like every other rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .findings import Finding
from .rules import (
    RUNSTATE_PATH_FRAGMENT,
    ModuleContext,
    _finding,
    _open_write_mode,
)

# ----------------------------------------------------------------------
# Attribute kind inference
# ----------------------------------------------------------------------

LOCK_FACTORY_SUFFIXES = ("Lock", "RLock")
"""Constructor name suffixes that bind a mutual-exclusion lock."""

LOCK_FACTORY_NAMES = frozenset({"make_lock"})
"""Factory functions (repro.analysis.locksan.make_lock) returning locks."""

SYNC_SAFE_SUFFIXES = (
    "Queue",
    "SimpleQueue",
    "JoinableQueue",
    "Event",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
)
"""Self-synchronizing primitives: safe to share between threads and
(for multiprocessing queues) designed to cross the spawn boundary."""

RISKY_SPAWN_KINDS = frozenset({"lock", "socket", "file", "tracer", "rng"})
"""Attribute kinds that must not be captured across fork/spawn."""

MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
        "write",
    }
)
"""Container/file methods treated as in-place mutations of the
receiver for REP009's "is this attribute ever written" test."""

_MAX_ENTRY_VARIANTS = 8
"""Entry-lockset fan-out cap per method; beyond it the analysis
collapses to the conservative empty entry (may-be-unlocked)."""


def _attr_kind_of_call(qual: Optional[str]) -> Optional[str]:
    """Classify ``self.x = <call>()`` by the constructor's dotted name."""
    if qual is None:
        return None
    tail = qual.rsplit(".", 1)[-1]
    if tail in LOCK_FACTORY_NAMES or tail.endswith(LOCK_FACTORY_SUFFIXES):
        return "lock"
    if tail.endswith(SYNC_SAFE_SUFFIXES):
        return "sync"
    if qual.startswith("socket.") or tail == "socket":
        return "socket"
    if tail in ("open", "TemporaryFile", "NamedTemporaryFile"):
        return "file"
    if tail.endswith("Tracer"):
        return "tracer"
    if tail in ("Random", "RandomState", "default_rng", "Generator"):
        return "rng"
    return None


def _module_name(relpath: str) -> str:
    """Dotted module name from a lint-relative path."""
    name = relpath.replace("\\", "/")
    if name.endswith(".py"):
        name = name[:-3]
    parts = [p for p in name.split("/") if p not in ("", ".", "src")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


# ----------------------------------------------------------------------
# Project model
# ----------------------------------------------------------------------


@dataclass
class AttrAccess:
    """One ``self.<attr>`` touch inside a method body."""

    attr: str
    write: bool
    line: int
    col: int
    locks: frozenset[str]


@dataclass
class CallEdge:
    """One ``self.m()`` / ``self.attr.m()`` call with locks held."""

    target_attr: Optional[str]  # None: call on self
    method: str
    locks: frozenset[str]


@dataclass
class SpawnSite:
    """One process-creation point (fork boundary)."""

    desc: str
    line: int
    col: int
    locks: frozenset[str]


@dataclass
class MethodModel:
    """Scanned body of one method."""

    name: str
    node: ast.AST
    accesses: list[AttrAccess] = field(default_factory=list)
    calls: list[CallEdge] = field(default_factory=list)
    spawns: list[SpawnSite] = field(default_factory=list)
    escapes: bool = False
    entries: set[frozenset[str]] = field(default_factory=set)


@dataclass
class ClassModel:
    """One class: its locks, attribute kinds, and scanned methods."""

    key: str  # "<module>:<ClassName>"
    name: str
    module: str
    relpath: str
    node: ast.ClassDef
    lock_attrs: set[str] = field(default_factory=set)
    attr_kind: dict[str, str] = field(default_factory=dict)
    attr_class: dict[str, str] = field(default_factory=dict)  # attr -> key
    methods: dict[str, MethodModel] = field(default_factory=dict)

    def own_lock(self, lock_attr: str) -> str:
        return f"{self.key}.{lock_attr}"

    def own_locks(self, locks: Iterable[str]) -> frozenset[str]:
        prefix = f"{self.key}."
        return frozenset(
            lock for lock in sorted(locks) if lock.startswith(prefix)
        )


class ProjectModel:
    """Whole-program view: class registry + cross-module call graph."""

    def __init__(self, modules: list[ModuleContext]) -> None:
        self.contexts: dict[str, ModuleContext] = {}
        self.classes: dict[str, ClassModel] = {}
        self._by_name: dict[str, list[str]] = {}
        for ctx in modules:
            module = _module_name(ctx.relpath)
            self.contexts[module] = ctx
            for node in ctx.tree.body:
                if isinstance(node, ast.ClassDef):
                    key = f"{module}:{node.name}"
                    cls = ClassModel(
                        key=key,
                        name=node.name,
                        module=module,
                        relpath=ctx.relpath,
                        node=node,
                    )
                    self.classes[key] = cls
                    self._by_name.setdefault(node.name, []).append(key)
        for cls in self.classes.values():
            self._collect_attr_kinds(cls)
        for cls in self.classes.values():
            ctx = self.contexts[cls.module]
            for item in cls.node.body:
                if isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    scanner = _MethodScanner(ctx, cls, self, item)
                    cls.methods[item.name] = scanner.scan()
        self._mark_escapes()
        self._propagate_entries()

    # -- construction ---------------------------------------------------

    def resolve_class(self, name: Optional[str]) -> Optional[str]:
        """Class key for a (possibly dotted) constructor name.

        Relative imports carry no alias entry, so resolution falls back
        to the bare class name when it is unambiguous project-wide.
        """
        if name is None:
            return None
        tail = name.rsplit(".", 1)[-1]
        keys = self._by_name.get(tail, [])
        if len(keys) == 1:
            return keys[0]
        return None

    def _collect_attr_kinds(self, cls: ClassModel) -> None:
        ctx = self.contexts[cls.module]
        for node in ast.walk(cls.node):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            qual = ctx.qualify(node.value.func)
            kind = _attr_kind_of_call(qual)
            target_cls = self.resolve_class(qual)
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    if kind == "lock":
                        cls.lock_attrs.add(target.attr)
                    if kind is not None:
                        cls.attr_kind[target.attr] = kind
                    elif target_cls is not None:
                        cls.attr_class[target.attr] = target_cls
                        cls.attr_kind.setdefault(target.attr, "object")

    def _mark_escapes(self) -> None:
        """A method referenced without being called (thread target,
        callback) can run with no locks held."""
        for cls in self.classes.values():
            for method in cls.methods.values():
                for ref in getattr(method, "_method_refs", ()):
                    target = cls.methods.get(ref)
                    if target is not None:
                        target.escapes = True

    def _propagate_entries(self) -> None:
        """Fixpoint entry-lockset propagation along the call graph."""
        methods: dict[tuple[str, str], MethodModel] = {}
        for cls in self.classes.values():
            for method in cls.methods.values():
                key = (cls.key, method.name)
                methods[key] = method
                external = (
                    not method.name.startswith("_")
                    or method.name.startswith("__")
                    or method.escapes
                )
                if external:
                    method.entries.add(frozenset())
        edges: list[tuple[tuple[str, str], tuple[str, str], frozenset]] = []
        for cls in self.classes.values():
            for method in cls.methods.values():
                for call in method.calls:
                    if call.target_attr is None:
                        callee_cls = cls.key
                    else:
                        callee_cls = cls.attr_class.get(call.target_attr)
                        if callee_cls is None:
                            continue
                    callee = self.classes.get(callee_cls)
                    if callee is None or call.method not in callee.methods:
                        continue
                    edges.append(
                        (
                            (cls.key, method.name),
                            (callee_cls, call.method),
                            call.locks,
                        )
                    )
        changed = True
        rounds = 0
        while changed and rounds < 50:
            changed = False
            rounds += 1
            for caller_key, callee_key, locks in edges:
                caller = methods[caller_key]
                callee = methods[callee_key]
                if not caller.entries:
                    # Not yet seeded (or unreachable): wait for a later
                    # round rather than injecting a spurious empty entry.
                    continue
                for entry in caller.entries:
                    effective = entry | locks
                    if effective not in callee.entries:
                        callee.entries.add(effective)
                        changed = True
                if len(callee.entries) > _MAX_ENTRY_VARIANTS:
                    if frozenset() not in callee.entries:
                        callee.entries.add(frozenset())
                        changed = True

    # -- queries --------------------------------------------------------

    @staticmethod
    def entry_floor(method: MethodModel) -> frozenset[str]:
        """Locks guaranteed held on *every* entry to ``method``."""
        if not method.entries:
            return frozenset()
        return frozenset.intersection(*method.entries)


class _MethodScanner:
    """One-pass lockset-aware scan of a method body."""

    def __init__(
        self,
        ctx: ModuleContext,
        cls: ClassModel,
        model: ProjectModel,
        node: ast.AST,
    ) -> None:
        self.ctx = ctx
        self.cls = cls
        self.model = model
        self.node = node
        self.method = MethodModel(name=node.name, node=node)
        self.method_names = {
            item.name
            for item in cls.node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.lock_aliases: dict[str, str] = {}  # local name -> lock attr
        self.proc_vars: set[str] = set()
        self.local_locks: set[str] = set()
        self._method_refs: set[str] = set()

    def scan(self) -> MethodModel:
        for stmt in self.node.body:
            self._visit(stmt, frozenset())
        self.method._method_refs = self._method_refs  # type: ignore[attr-defined]
        return self.method

    # -- helpers --------------------------------------------------------

    def _self_attr(self, node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _lock_in_expr(self, node: ast.AST) -> Optional[str]:
        """Lock token for a ``with`` context expression, if it is one."""
        attr = self._self_attr(node)
        if attr is not None and attr in self.cls.lock_attrs:
            return self.cls.own_lock(attr)
        if isinstance(node, ast.Name):
            aliased = self.lock_aliases.get(node.id)
            if aliased is not None:
                return self.cls.own_lock(aliased)
            if node.id in self.local_locks:
                return f"local:{node.id}"
        return None

    def _record_access(
        self,
        attr: str,
        node: ast.AST,
        locks: frozenset[str],
        write: bool,
    ) -> None:
        self.method.accesses.append(
            AttrAccess(
                attr=attr,
                write=write,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                locks=locks,
            )
        )

    def _is_process_ctor(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        qual = self.ctx.qualify(node.func)
        tail = None
        if qual is not None:
            tail = qual.rsplit(".", 1)[-1]
        elif isinstance(node.func, ast.Attribute):
            tail = node.func.attr
        return tail == "Process"

    # -- recursive walk -------------------------------------------------

    def _visit(self, node: ast.AST, locks: frozenset[str]) -> None:
        if isinstance(node, ast.With):
            inner = locks
            for item in node.items:
                self._visit(item.context_expr, locks)
                token = self._lock_in_expr(item.context_expr)
                if token is not None:
                    inner = inner | {token}
            for stmt in node.body:
                self._visit(stmt, inner)
            return
        if isinstance(node, ast.Assign):
            self._visit(node.value, locks)
            # Local lock aliases and process-variable tracking.
            if len(node.targets) == 1 and isinstance(
                node.targets[0], ast.Name
            ):
                name = node.targets[0].id
                attr = self._self_attr(node.value)
                if attr is not None and attr in self.cls.lock_attrs:
                    self.lock_aliases[name] = attr
                if isinstance(node.value, ast.Call):
                    qual = self.ctx.qualify(node.value.func)
                    if _attr_kind_of_call(qual) == "lock":
                        self.local_locks.add(name)
                    if self._is_process_ctor(node.value):
                        self.proc_vars.add(name)
            for target in node.targets:
                self._visit_target(target, locks)
            return
        if isinstance(node, ast.AugAssign):
            self._visit(node.value, locks)
            self._visit_target(node.target, locks, always_write=True)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._visit_target(target, locks, always_write=True)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, locks)
            return
        if isinstance(node, ast.Attribute):
            attr = self._self_attr(node)
            if attr is not None:
                if attr in self.method_names:
                    self._method_refs.add(attr)
                else:
                    self._record_access(
                        attr, node, locks,
                        write=isinstance(node.ctx, (ast.Store, ast.Del)),
                    )
                return
            self._visit(node.value, locks)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Nested defs/lambdas run later (often on another thread):
            # scan them with no locks assumed held.
            body = node.body if isinstance(node.body, list) else [node.body]
            for stmt in body:
                self._visit(stmt, frozenset())
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, locks)

    def _visit_target(
        self,
        target: ast.AST,
        locks: frozenset[str],
        always_write: bool = False,
    ) -> None:
        attr = self._self_attr(target)
        if attr is not None:
            self._record_access(attr, target, locks, write=True)
            return
        if isinstance(target, ast.Subscript):
            # self.x[k] = v mutates the container bound to self.x.
            attr = self._self_attr(target.value)
            if attr is not None:
                self._record_access(attr, target.value, locks, write=True)
                self._visit(target.slice, locks)
                return
        if always_write and isinstance(target, ast.Attribute):
            self._visit(target.value, locks)
            return
        self._visit(target, locks)

    def _visit_call(self, node: ast.Call, locks: frozenset[str]) -> None:
        func = node.func
        handled_func = False
        self_attr = self._self_attr(func)
        if self_attr is not None:
            handled_func = True
            if self_attr in self.method_names:
                self.method.calls.append(
                    CallEdge(target_attr=None, method=self_attr, locks=locks)
                )
            else:
                # Calling a callback/config attribute is a read of it.
                self._record_access(self_attr, func, locks, write=False)
        elif isinstance(func, ast.Attribute):
            base_attr = self._self_attr(func.value)
            if base_attr is not None:
                handled_func = True
                mutates = func.attr in MUTATOR_METHODS
                self._record_access(
                    base_attr, func.value, locks, write=mutates
                )
                if base_attr in self.cls.attr_class:
                    self.method.calls.append(
                        CallEdge(
                            target_attr=base_attr,
                            method=func.attr,
                            locks=locks,
                        )
                    )
        self._detect_spawn(node, locks)
        if self._is_process_ctor(node):
            self._check_process_ctor(node, locks)
        if not handled_func:
            self._visit(func, locks)
        for arg in node.args:
            self._visit(arg, locks)
        for keyword in node.keywords:
            self._visit(keyword.value, locks)

    def _detect_spawn(self, node: ast.Call, locks: frozenset[str]) -> None:
        func = node.func
        qual = self.ctx.qualify(func)
        if qual in ("os.fork", "os.forkpty"):
            self.method.spawns.append(
                SpawnSite(
                    desc=f"{qual}()",
                    line=node.lineno,
                    col=node.col_offset + 1,
                    locks=locks,
                )
            )
            return
        if qual is not None and qual.startswith("subprocess."):
            tail = qual.rsplit(".", 1)[-1]
            if tail in ("Popen", "run", "call", "check_call", "check_output"):
                self.method.spawns.append(
                    SpawnSite(
                        desc=f"{qual}()",
                        line=node.lineno,
                        col=node.col_offset + 1,
                        locks=locks,
                    )
                )
                return
        if isinstance(func, ast.Attribute) and func.attr == "start":
            started = func.value
            is_proc = self._is_process_ctor(started) or (
                isinstance(started, ast.Name) and started.id in self.proc_vars
            )
            if is_proc:
                self.method.spawns.append(
                    SpawnSite(
                        desc="Process.start()",
                        line=node.lineno,
                        col=node.col_offset + 1,
                        locks=locks,
                    )
                )

    def _check_process_ctor(
        self, node: ast.Call, locks: frozenset[str]
    ) -> None:
        """Record capture hazards on a ``Process(...)`` construction."""
        captures: list[tuple[str, ast.AST]] = []
        for keyword in node.keywords:
            if keyword.arg == "target":
                attr = self._self_attr(keyword.value)
                if attr is not None and (
                    self.cls.lock_attrs
                    or any(
                        kind in RISKY_SPAWN_KINDS
                        for kind in self.cls.attr_kind.values()
                    )
                ):
                    captures.append(
                        (
                            f"bound method self.{attr} as target captures "
                            f"the whole {self.cls.name} (its locks and fds) "
                            "across the spawn boundary; use a module-level "
                            "function taking plain data",
                            keyword.value,
                        )
                    )
            if keyword.arg in ("args", "kwargs") or keyword.arg == "target":
                for sub in ast.walk(keyword.value):
                    attr = self._self_attr(sub)
                    if attr is None:
                        continue
                    kind = self.cls.attr_kind.get(attr)
                    if kind in RISKY_SPAWN_KINDS:
                        captures.append(
                            (
                                f"self.{attr} ({kind}) passed across the "
                                "fork/spawn boundary; the child gets a "
                                "duplicated, unsynchronized copy — pass "
                                "plain data or a multiprocessing queue",
                                sub,
                            )
                        )
        self.method.capture_hazards = getattr(  # type: ignore[attr-defined]
            self.method, "capture_hazards", []
        )
        for message, where in captures:
            self.method.capture_hazards.append(
                (message, where.lineno, where.col_offset + 1)
            )


# ----------------------------------------------------------------------
# REP009 — lock discipline
# ----------------------------------------------------------------------


def check_rep009(modules: list[ModuleContext]) -> list[Finding]:
    """Flag mixed locked/unlocked access to attributes of lock-owning
    classes (Eraser lockset inference over the interprocedural model)."""
    model = ProjectModel(modules)
    findings: list[Finding] = []
    for cls in model.classes.values():
        if not cls.lock_attrs:
            continue
        # attr -> (guaranteed-own-locks, access, method-name)
        per_attr: dict[str, list[tuple[frozenset[str], AttrAccess]]] = {}
        for method in cls.methods.values():
            if method.name == "__init__":
                continue
            floor = model.entry_floor(method)
            for access in method.accesses:
                if access.attr in cls.lock_attrs:
                    continue
                if cls.attr_kind.get(access.attr) == "sync":
                    continue
                guaranteed = cls.own_locks(floor | access.locks)
                per_attr.setdefault(access.attr, []).append(
                    (guaranteed, access)
                )
        for attr in sorted(per_attr):
            accesses = per_attr[attr]
            guarded = [a for g, a in accesses if g]
            unguarded = [a for g, a in accesses if not g]
            written = any(a.write for _, a in accesses)
            if not (guarded and unguarded and written):
                continue
            lock_tokens = sorted(
                {lock for g, _ in accesses for lock in g}
            )
            lock_name = lock_tokens[0].rsplit(".", 1)[-1]
            witness = min(a.line for a in guarded)
            for access in sorted(unguarded, key=lambda a: (a.line, a.col)):
                what = "written" if access.write else "read"
                findings.append(
                    Finding(
                        path=cls.relpath,
                        line=access.line,
                        col=access.col,
                        rule="REP009",
                        message=(
                            f"{cls.name}.{attr} is {what} without "
                            f"self.{lock_name} here but accessed under it "
                            f"at line {witness}; mixed lock discipline on "
                            "a mutable attribute is a data race — hold "
                            "the lock at every post-init access"
                        ),
                    )
                )
    return findings


# ----------------------------------------------------------------------
# REP010 — fork/spawn safety
# ----------------------------------------------------------------------


def check_rep010(modules: list[ModuleContext]) -> list[Finding]:
    """Flag process creation under a held lock and risky state captured
    across the fork/spawn boundary."""
    model = ProjectModel(modules)
    findings: list[Finding] = []
    for cls in model.classes.values():
        for method in cls.methods.values():
            floor = model.entry_floor(method)
            for spawn in method.spawns:
                held = sorted(floor | spawn.locks)
                if not held:
                    continue
                names = ", ".join(
                    token[len("local:"):]
                    if token.startswith("local:")
                    else f"self.{token.rsplit('.', 1)[-1]}"
                    for token in held
                )
                findings.append(
                    Finding(
                        path=cls.relpath,
                        line=spawn.line,
                        col=spawn.col,
                        rule="REP010",
                        message=(
                            f"{spawn.desc} while holding {names}: the "
                            "forked child inherits the held lock (any "
                            "acquire in the child deadlocks) and the "
                            "locked region's half-updated state; start "
                            "processes after releasing the lock"
                        ),
                    )
                )
            for message, line, col in getattr(
                method, "capture_hazards", []
            ):
                findings.append(
                    Finding(
                        path=cls.relpath,
                        line=line,
                        col=col,
                        rule="REP010",
                        message=message,
                    )
                )
    # Module-level functions: spawns under local locks.
    for module, ctx in model.contexts.items():
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            shell = ClassModel(
                key=f"{module}:<module>",
                name="<module>",
                module=module,
                relpath=ctx.relpath,
                node=ast.ClassDef(
                    name="<module>", bases=[], keywords=[], body=[],
                    decorator_list=[],
                ),
            )
            scanner = _MethodScanner(ctx, shell, model, node)
            scanned = scanner.scan()
            for spawn in scanned.spawns:
                if not spawn.locks:
                    continue
                names = ", ".join(
                    token.replace("local:", "")
                    for token in sorted(spawn.locks)
                )
                findings.append(
                    Finding(
                        path=ctx.relpath,
                        line=spawn.line,
                        col=spawn.col,
                        rule="REP010",
                        message=(
                            f"{spawn.desc} while holding {names}: the "
                            "forked child inherits the held lock (any "
                            "acquire in the child deadlocks); start "
                            "processes after releasing the lock"
                        ),
                    )
                )
    return findings


# ----------------------------------------------------------------------
# REP011 — crash consistency (torn-write stories)
# ----------------------------------------------------------------------

DURABLE_STATE_HINTS = (
    "journal",
    "breaker",
    "pidfile",
    "bench",
    "result",
    "figure_id",
)
"""Name fragments marking durable state files (REP007's hints plus the
service-era state: ``.breaker.json``, pidfiles, ``BENCH_*.json``)."""

ATOMIC_WRITERS = frozenset({"atomic_write_text", "append_durable_line"})
"""The sanctioned torn-write-safe entry points in repro.runstate.atomic."""

_TOLERANT_EXC_NAMES = frozenset(
    {"ValueError", "JSONDecodeError", "Exception", "BaseException"}
)


def _module_stem_hint(relpath: str) -> Optional[str]:
    stem = relpath.replace("\\", "/").rsplit("/", 1)[-1].lower()
    for hint in DURABLE_STATE_HINTS:
        if hint in stem:
            return hint
    return None


def _durable_state_hint(node: ast.AST) -> Optional[str]:
    """Like REP007's hint scan, over the extended durable-state set."""
    for sub in ast.walk(node):
        text = None
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            text = sub.value
        elif isinstance(sub, ast.Name):
            text = sub.id
        elif isinstance(sub, ast.Attribute):
            text = sub.attr
        if text is None:
            continue
        lowered = text.lower()
        for hint in DURABLE_STATE_HINTS:
            if hint in lowered:
                return hint
    return None


def _calls_atomic_writer(ctx: ModuleContext) -> bool:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            qual = ctx.qualify(node.func)
            if qual is not None and qual.rsplit(".", 1)[-1] in ATOMIC_WRITERS:
                return True
    return False


def _handler_tolerates_parse_errors(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name in _TOLERANT_EXC_NAMES:
            return True
    return False


def check_rep011(modules: list[ModuleContext]) -> list[Finding]:
    """Torn-write stories for durable state files.

    A module is *durable-relevant* when its filename carries a durable
    hint (journal/breaker/pidfile/bench) or it calls the runstate atomic
    writers.  In relevant modules:

    - write sites (``open('w'/'a')``, ``json.dump``, ``write_text``)
      must go through ``repro.runstate.atomic`` — ``runstate/`` itself
      is the sanctioned implementation and exempt on the write side;
    - every ``json.load``/``json.loads`` must sit under a ``try``
      whose handlers catch ``ValueError`` (torn record == absent
      record), including inside ``runstate/``.
    """
    findings: list[Finding] = []
    for ctx in modules:
        relpath = ctx.relpath.replace("\\", "/")
        stem_hint = _module_stem_hint(relpath)
        relevant = stem_hint is not None or _calls_atomic_writer(ctx)
        if not relevant:
            continue
        in_runstate = RUNSTATE_PATH_FRAGMENT in relpath
        # Walk with an explicit stack so parse sites can see their
        # enclosing try handlers.
        def _walk(node: ast.AST, tolerant: bool) -> None:
            if isinstance(node, ast.Try):
                body_tolerant = tolerant or any(
                    _handler_tolerates_parse_errors(h) for h in node.handlers
                )
                for child in node.body:
                    _walk(child, body_tolerant)
                for child in (
                    node.handlers + node.orelse + node.finalbody
                ):
                    _walk(child, tolerant)
                return
            if isinstance(node, ast.Call):
                qual = ctx.qualify(node.func)
                if qual in ("json.load", "json.loads") and not tolerant:
                    findings.append(
                        _finding(
                            ctx, node, "REP011",
                            f"{qual}(...) parses durable state without "
                            "torn-record tolerance; a crash mid-write "
                            "leaves a torn tail that must read as "
                            "absent — wrap the parse in try/except "
                            "ValueError",
                        )
                    )
                if not in_runstate:
                    what = None
                    if qual == "open" and node.args:
                        mode = _open_write_mode(node)
                        hinted = (
                            _durable_state_hint(node.args[0]) is not None
                            or stem_hint is not None
                        )
                        if mode is not None and hinted:
                            what = f"open(..., {mode!r})"
                    elif qual == "json.dump" and (
                        _durable_state_hint(node) is not None
                        or stem_hint is not None
                    ):
                        what = "json.dump(...)"
                    elif (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("write_text", "write_bytes")
                        and (
                            _durable_state_hint(node.func.value) is not None
                            or stem_hint is not None
                        )
                    ):
                        what = f".{node.func.attr}(...)"
                    if what is not None:
                        findings.append(
                            _finding(
                                ctx, node, "REP011",
                                f"{what} writes durable state without a "
                                "torn-write story; route it through "
                                "repro.runstate.atomic "
                                "(atomic_write_text / "
                                "append_durable_line) or document why "
                                "tearing is safe",
                            )
                        )
            for child in ast.iter_child_nodes(node):
                _walk(child, tolerant)

        _walk(ctx.tree, False)
    return findings


CONCSAN_RULES = {
    "REP009": check_rep009,
    "REP010": check_rep010,
    "REP011": check_rep011,
}
"""ConcSan project-rule registry, merged into PROJECT_RULES."""
