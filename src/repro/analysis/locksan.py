"""LockSan: a runtime lockset sanitizer (the dynamic twin of REP009).

Eraser for the serve/parallel stack: :class:`TrackedLock` maintains a
per-thread set of held lock names, and :func:`watch` instruments an
object so every read/write of its private attributes records ``(lockset
held, thread)``.  :meth:`LockSanitizer.report` then applies the Eraser
rule — an attribute written after construction, touched by two or more
threads, whose access locksets have an empty intersection while at
least one access *did* hold a lock, is a candidate data race.  This is
exactly the REP009 static rule, checked against what actually ran, so
a static finding can be confirmed dynamically before it is fixed.

Enablement mirrors MemSan's zero-cost-when-off pattern
(:mod:`repro.analysis.sanitizer`): off by default, switched on with the
``REPRO_LOCKSAN=1`` environment variable or programmatically via
:func:`set_locksan`.  When off, :func:`make_lock` returns a plain
``threading.Lock`` and :func:`watch` is an identity function — the
supervised classes pay two extra function calls per construction and
nothing per access.

Under the test suite (see ``tests/conftest.py``) the global sanitizer
is checked after every test, so the whole suite doubles as a lock-
discipline stress test the same way it runs under MemSan.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Iterable, Optional

_OVERRIDE: Optional[bool] = None

_ENV_VAR = "REPRO_LOCKSAN"

_FALSEY = ("", "0", "false", "no", "off")

_HELD = threading.local()


def set_locksan(enabled: Optional[bool]) -> Optional[bool]:
    """Set the process-wide LockSan override; returns the previous value.

    ``True``/``False`` force LockSan on/off for subsequently constructed
    locks and watched objects regardless of the environment; ``None``
    defers to ``REPRO_LOCKSAN`` again.
    """
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = enabled
    return previous


def locksan_enabled() -> bool:
    """Whether new locks/objects should be instrumented."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get(_ENV_VAR, "").strip().lower() not in _FALSEY


def held_locks() -> frozenset[str]:
    """Names of the tracked locks the calling thread holds right now."""
    held = getattr(_HELD, "names", None)
    if not held:
        return frozenset()
    return frozenset(held)


@dataclass(frozen=True, order=True)
class LockSanFinding:
    """One dynamically observed lock-discipline violation."""

    cls: str
    attr: str
    threads: int
    writes: int
    locksets: tuple[tuple[str, ...], ...]
    """Distinct locksets observed across accesses, sorted."""

    def render(self) -> str:
        seen = ", ".join(
            "{" + ",".join(lockset) + "}" for lockset in sorted(self.locksets)
        )
        return (
            f"{self.cls}.{self.attr}: accessed by {self.threads} thread(s) "
            f"with inconsistent locksets [{seen}] and {self.writes} "
            "post-init write(s) — no common lock guards this attribute"
        )


class _AttrRecord:
    __slots__ = ("locksets", "threads", "writes")

    def __init__(self) -> None:
        self.locksets: set[frozenset[str]] = set()
        self.threads: set[int] = set()
        self.writes = 0


class LockSanitizer:
    """Records per-attribute access locksets; applies the Eraser rule."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._records: dict[tuple[str, str], _AttrRecord] = {}
        self.checks = 0
        """Accesses recorded (cheap liveness signal for tests/benches)."""

    def note(self, cls: str, attr: str, write: bool) -> None:
        """Record one attribute access under the current thread's locks."""
        locks = held_locks()
        ident = threading.get_ident()
        with self._mutex:
            self.checks += 1
            record = self._records.setdefault((cls, attr), _AttrRecord())
            record.locksets.add(locks)
            record.threads.add(ident)
            if write:
                record.writes += 1

    def report(self) -> list[LockSanFinding]:
        """Candidate races seen so far (deterministically sorted).

        The Eraser rule: flag ``cls.attr`` when (a) two or more threads
        touched it, (b) it was written after instrumentation began, (c)
        the intersection of all access locksets is empty, and (d) at
        least one access *did* hold a lock — an attribute no lock ever
        guards is a design choice REP009 leaves to the static rule's
        mixed-discipline test, and single-threaded or read-only state
        races with nobody.
        """
        findings: list[LockSanFinding] = []
        with self._mutex:
            items = sorted(self._records.items())
        for (cls, attr), record in items:
            if len(record.threads) < 2 or record.writes == 0:
                continue
            if not any(record.locksets):
                continue  # never locked anywhere: not mixed discipline
            common = frozenset.intersection(*record.locksets)
            if common:
                continue  # a common guard exists
            findings.append(
                LockSanFinding(
                    cls=cls,
                    attr=attr,
                    threads=len(record.threads),
                    writes=record.writes,
                    locksets=tuple(
                        sorted(
                            tuple(sorted(lockset))
                            for lockset in record.locksets
                        )
                    ),
                )
            )
        return findings

    def reset(self) -> None:
        with self._mutex:
            self._records.clear()
            self.checks = 0


_SANITIZER: Optional[LockSanitizer] = None


def get_locksan() -> Optional[LockSanitizer]:
    """The process-wide sanitizer (created lazily while enabled)."""
    global _SANITIZER
    if _SANITIZER is None and locksan_enabled():
        _SANITIZER = LockSanitizer()
    return _SANITIZER if locksan_enabled() else None


class TrackedLock:
    """A ``threading.Lock`` that maintains the per-thread held-lock set."""

    __slots__ = ("name", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            held = getattr(_HELD, "names", None)
            if held is None:
                held = _HELD.names = set()
            held.add(self.name)
        return acquired

    def release(self) -> None:
        held = getattr(_HELD, "names", None)
        if held is not None:
            held.discard(self.name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()


def make_lock(name: str):
    """A lock for a supervised class: tracked under LockSan, plain
    ``threading.Lock`` (zero overhead) otherwise."""
    if get_locksan() is not None:
        return TrackedLock(name)
    return threading.Lock()


_INSTRUMENTED: dict[type, type] = {}

_SAN_ATTR = "_locksan_watched"


def _instrumented_class(base: type) -> type:
    cached = _INSTRUMENTED.get(base)
    if cached is not None:
        return cached

    class Watched(base):  # type: ignore[misc,valid-type]
        def __getattribute__(self, name: str):
            value = base.__getattribute__(self, name)
            if name in base.__getattribute__(self, _SAN_ATTR):
                san = base.__getattribute__(self, "_locksan_san")
                san.note(base.__name__, name, write=False)
            return value

        def __setattr__(self, name: str, value: Any) -> None:
            base.__setattr__(self, name, value)
            if name in base.__getattribute__(self, _SAN_ATTR):
                san = base.__getattribute__(self, "_locksan_san")
                san.note(base.__name__, name, write=True)

    Watched.__name__ = f"LockSan[{base.__name__}]"
    Watched.__qualname__ = Watched.__name__
    _INSTRUMENTED[base] = Watched
    return Watched


def watch(
    obj: Any,
    exclude: Iterable[str] = (),
    sanitizer: Optional[LockSanitizer] = None,
) -> Any:
    """Instrument ``obj`` so LockSan records its attribute accesses.

    Call at the *end* of ``__init__``: every private (underscore)
    attribute bound at that point is watched, and anything recorded
    afterwards is by construction a post-init access.  Locks themselves
    and explicit ``exclude`` names are skipped.  A no-op returning
    ``obj`` unchanged when LockSan is off.
    """
    san = sanitizer if sanitizer is not None else get_locksan()
    if san is None:
        return obj
    skip = set(exclude)
    watched = frozenset(
        name
        for name, value in vars(obj).items()
        if name.startswith("_")
        and not name.startswith("_locksan")
        and name not in skip
        and not isinstance(value, TrackedLock)
    )
    cls = _instrumented_class(type(obj))
    object.__setattr__(obj, "_locksan_san", san)
    object.__setattr__(obj, _SAN_ATTR, watched)
    obj.__class__ = cls
    return obj
