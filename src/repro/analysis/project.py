"""Project-wide lint rules spanning multiple source files.

REP004 lives here; the ConcSan concurrency rules (REP009–REP011) live
in :mod:`repro.analysis.concsan` and are merged into the registry at
the bottom of this module.

REP004 audits fault-site completeness across the whole tree:

- every :class:`FaultSite` enum member must be wired to at least one
  ``injector.check(FaultSite.X)`` call site, and
- every ``FaultSite.X`` attribute reference anywhere must name a real
  member (catching stale references after a site is renamed).

A site enum member with no ``check()`` call is dead configuration: a
``--faults`` spec naming it parses fine but can never fire, which is a
silent hole in fault-coverage experiments.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from .concsan import CONCSAN_RULES
from .findings import Finding
from .rules import ModuleContext

SITES_FILE_SUFFIX = "faults/sites.py"
"""Module defining the FaultSite enum."""

ENUM_NAME = "FaultSite"


def _sites_module(modules: Iterable[ModuleContext]) -> Optional[ModuleContext]:
    for ctx in modules:
        if ctx.relpath.replace("\\", "/").endswith(SITES_FILE_SUFFIX):
            return ctx
    return None


def _enum_members(ctx: ModuleContext) -> dict[str, int]:
    """FaultSite member name → definition line."""
    members: dict[str, int] = {}
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == ENUM_NAME:
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) and not target.id.startswith(
                            "_"
                        ):
                            members[target.id] = stmt.lineno
    return members


def _site_refs(ctx: ModuleContext) -> list[tuple[str, ast.Attribute]]:
    """All ``FaultSite.X`` attribute references in one module."""
    refs: list[tuple[str, ast.Attribute]] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Attribute):
            continue
        base = node.value
        if isinstance(base, ast.Name):
            resolved = ctx.aliases.get(base.id, base.id)
            if resolved == ENUM_NAME or resolved.endswith(f".{ENUM_NAME}"):
                refs.append((node.attr, node))
    return refs


def _checked_members(ctx: ModuleContext) -> set[str]:
    """Members passed to an ``<injector>.check(...)`` call in this module."""
    checked: set[str] = set()
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "check"
        ):
            continue
        for arg in node.args:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Attribute) and isinstance(
                    sub.value, ast.Name
                ):
                    resolved = ctx.aliases.get(sub.value.id, sub.value.id)
                    if resolved == ENUM_NAME or resolved.endswith(f".{ENUM_NAME}"):
                        checked.add(sub.attr)
    return checked


def check_rep004(modules: list[ModuleContext]) -> list[Finding]:
    """Cross-file fault-site completeness audit."""
    sites_ctx = _sites_module(modules)
    if sites_ctx is None:
        return []  # linting a subtree without the enum; nothing to audit
    members = _enum_members(sites_ctx)
    findings: list[Finding] = []

    wired: set[str] = set()
    for ctx in modules:
        wired |= _checked_members(ctx)
        for name, node in _site_refs(ctx):
            if name.startswith("_") or name in ("value", "name"):
                continue
            if name not in members:
                findings.append(
                    Finding(
                        path=ctx.relpath,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule="REP004",
                        message=(
                            f"reference to FaultSite.{name} which is not a "
                            "member of the enum"
                        ),
                    )
                )

    for name in sorted(set(members) - wired):
        findings.append(
            Finding(
                path=sites_ctx.relpath,
                line=members[name],
                col=1,
                rule="REP004",
                message=(
                    f"FaultSite.{name} has no injector.check() call site; "
                    "wire it into the subsystem it names or remove it"
                ),
            )
        )
    return findings


PROJECT_RULES = {"REP004": check_rep004, **CONCSAN_RULES}
"""Registry of rules that need the whole module set at once.

REP004 audits fault sites; REP009/REP010/REP011 are the ConcSan
interprocedural concurrency rules (:mod:`repro.analysis.concsan`)."""
