"""Suppression comments for ``repro.analysis.lint``.

Two forms are recognized, mirroring flake8's ``noqa`` but namespaced so
they never collide with other tools:

- line-level: ``# repro: noqa REP003`` (or ``REP001,REP003``) at the end
  of the offending line suppresses those rules on that line only; a bare
  ``# repro: noqa`` suppresses every rule on the line.
- file-level: ``# repro: noqa-file REP002`` anywhere in the first 10
  lines suppresses the listed rules for the whole file (used for
  documented, intentional seams).

Suppressions should always carry a justification in the surrounding
comment — the lint cannot enforce that, but review should.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_LINE_RE = re.compile(
    r"#\s*repro:\s*noqa(?!-file)[:\s]*(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)?"
)
_FILE_RE = re.compile(
    r"#\s*repro:\s*noqa-file[:\s]*(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)?"
)
_FILE_PRAGMA_WINDOW = 10
"""File-level pragmas must appear within the first this-many lines."""


def _parse_codes(match: re.Match) -> frozenset[str]:
    codes = match.group("codes")
    if not codes:
        return frozenset()  # bare noqa: every rule
    return frozenset(code.strip() for code in codes.split(","))


@dataclass
class Suppressions:
    """Parsed suppression pragmas of one source file.

    An empty code set means "all rules" (a bare ``noqa``).
    """

    line_codes: dict[int, frozenset[str]] = field(default_factory=dict)
    file_codes: frozenset[str] = frozenset()
    file_all: bool = False

    @classmethod
    def from_source(cls, source: str) -> "Suppressions":
        """Scan a file's text for suppression pragmas."""
        supp = cls()
        file_codes: set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "repro" not in text or "noqa" not in text:
                continue
            file_match = _FILE_RE.search(text)
            if file_match is not None and lineno <= _FILE_PRAGMA_WINDOW:
                codes = _parse_codes(file_match)
                if not codes:
                    supp.file_all = True
                file_codes.update(codes)
                continue
            line_match = _LINE_RE.search(text)
            if line_match is not None:
                supp.line_codes[lineno] = _parse_codes(line_match)
        supp.file_codes = frozenset(file_codes)
        return supp

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is suppressed at ``line``."""
        if self.file_all or rule in self.file_codes:
            return True
        codes = self.line_codes.get(line)
        if codes is None:
            return False
        return not codes or rule in codes
