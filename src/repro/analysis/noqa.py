"""Suppression comments for ``repro.analysis.lint``.

Two forms are recognized, mirroring flake8's ``noqa`` but namespaced so
they never collide with other tools:

- line-level: ``# repro: noqa REP003`` (or ``REP001,REP003``) at the end
  of the offending line suppresses those rules on that line only; a bare
  ``# repro: noqa`` suppresses every rule on the line.  When the pragma
  sits anywhere on a multi-line statement (a call spanning several
  lines, a decorated ``def``'s decorator or header line), it covers the
  whole statement — findings anchor to the statement's first line, so a
  trailing pragma on the last physical line still works.
- file-level: ``# repro: noqa-file REP002`` anywhere in the first 10
  lines suppresses the listed rules for the whole file (used for
  documented, intentional seams).

Suppressions should always carry a justification in the surrounding
comment — the lint cannot enforce that, but review should.  Line-level
pragmas that suppress nothing are themselves reported (REP000,
"unused noqa") so stale suppressions rot visibly instead of silently
masking future findings.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

_LINE_RE = re.compile(
    r"#\s*repro:\s*noqa(?!-file)[:\s]*(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)?"
)
_FILE_RE = re.compile(
    r"#\s*repro:\s*noqa-file[:\s]*(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)?"
)
_FILE_PRAGMA_WINDOW = 10
"""File-level pragmas must appear within the first this-many lines."""

_COMPOUND = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
)
"""Statements whose pragma span is the header (decorators + signature),
not the whole body — a pragma on a ``def`` line must not blanket every
statement inside the function."""


def _comments(source: str) -> list[tuple[int, str]]:
    """(line, text) of every ``#`` comment token in ``source``.

    Falls back to whole-line scanning when the tokenizer rejects the
    source (the lint driver already skips files that fail to parse, so
    this only matters for torn fixtures).
    """
    try:
        return [
            (token.start[0], token.string)
            for token in tokenize.generate_tokens(io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError, IndentationError, ValueError):
        return [
            (lineno, text)
            for lineno, text in enumerate(source.splitlines(), start=1)
            if "#" in text
        ]


def _parse_codes(match: re.Match) -> frozenset[str]:
    codes = match.group("codes")
    if not codes:
        return frozenset()  # bare noqa: every rule
    return frozenset(code.strip() for code in codes.split(","))


def _statement_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """(first, last) physical-line span of every statement's pragma
    region: full extent for simple statements, decorators + header for
    compound ones."""
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        decorators = getattr(node, "decorator_list", [])
        if decorators:
            start = min(start, min(d.lineno for d in decorators))
        if isinstance(node, _COMPOUND):
            body = getattr(node, "body", None)
            if body:
                first_child = body[0]
                end = (
                    first_child.lineno
                    if first_child.lineno == node.lineno
                    else first_child.lineno - 1
                )
            else:  # pragma: no cover - empty compound cannot parse
                end = node.lineno
        else:
            end = getattr(node, "end_lineno", None) or node.lineno
        if end < start:
            end = start
        spans.append((start, end))
    return spans


@dataclass
class Suppressions:
    """Parsed suppression pragmas of one source file.

    An empty code set means "all rules" (a bare ``noqa``).  After
    :meth:`attach_tree` the pragma's reach is widened from its physical
    line to the statement that contains it; :attr:`used` records which
    pragma lines actually suppressed a finding so the driver can report
    stale ones.
    """

    line_codes: dict[int, frozenset[str]] = field(default_factory=dict)
    file_codes: frozenset[str] = frozenset()
    file_all: bool = False
    covered: dict[int, int] = field(default_factory=dict)
    """Covered source line -> pragma line (statement-span expansion)."""
    used: set[int] = field(default_factory=set)
    """Pragma lines that suppressed at least one finding."""

    @classmethod
    def from_source(cls, source: str) -> "Suppressions":
        """Scan a file's comments for suppression pragmas.

        Pragmas are matched against real ``#`` comment tokens, so a
        docstring *describing* the syntax is not itself a pragma.
        """
        supp = cls()
        file_codes: set[str] = set()
        for lineno, text in _comments(source):
            if "repro" not in text or "noqa" not in text:
                continue
            file_match = _FILE_RE.search(text)
            if file_match is not None and lineno <= _FILE_PRAGMA_WINDOW:
                codes = _parse_codes(file_match)
                if not codes:
                    supp.file_all = True
                file_codes.update(codes)
                continue
            line_match = _LINE_RE.search(text)
            if line_match is not None:
                supp.line_codes[lineno] = _parse_codes(line_match)
        supp.file_codes = frozenset(file_codes)
        return supp

    def attach_tree(self, tree: ast.Module) -> None:
        """Widen each line pragma to the statement containing it.

        The innermost (shortest) containing span wins, so a pragma on a
        statement nested in a ``with`` block covers that statement, not
        the whole block.
        """
        if not self.line_codes:
            return
        spans = _statement_spans(tree)
        for pragma_line in self.line_codes:
            best: tuple[int, int] | None = None
            for start, end in spans:
                if start <= pragma_line <= end:
                    if best is None or (end - start) < (best[1] - best[0]):
                        best = (start, end)
            if best is None:
                continue  # comment-only line: pragma covers itself
            for line in range(best[0], best[1] + 1):
                current = self.covered.get(line)
                if current is None or current == pragma_line:
                    self.covered[line] = pragma_line
                else:
                    # Two pragmas cover one line (nested spans): keep
                    # the one physically closer to the line.
                    if abs(pragma_line - line) < abs(current - line):
                        self.covered[line] = pragma_line

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is suppressed at ``line`` (marks usage)."""
        if self.file_all or rule in self.file_codes:
            return True
        pragma_line = line if line in self.line_codes else self.covered.get(
            line, line
        )
        codes = self.line_codes.get(pragma_line)
        if codes is None:
            return False
        if not codes or rule in codes:
            self.used.add(pragma_line)
            return True
        return False

    def unused_pragmas(self) -> list[tuple[int, frozenset[str]]]:
        """Line pragmas that never suppressed a finding, sorted."""
        return sorted(
            (line, codes)
            for line, codes in self.line_codes.items()
            if line not in self.used
        )
