"""Lint driver: file discovery, rule dispatch, suppression filtering.

Entry points:

- :func:`lint_paths` — lint files/directories on disk (the CLI path),
- :func:`lint_text` — lint one in-memory source string (used by the
  analyzer's own tests to run rules over inline fixtures).
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Optional, Sequence

from .findings import ALL_RULES, Finding
from .noqa import Suppressions
from .project import PROJECT_RULES
from .rules import PER_FILE_RULES, ModuleContext

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".pytest_cache"})


def default_target() -> str:
    """The ``src/repro`` package directory this module is installed in."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield ``.py`` files under ``paths`` in sorted, stable order."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def _relpath(path: str, root: Optional[str]) -> str:
    if root is not None:
        try:
            rel = os.path.relpath(path, root)
            if not rel.startswith(".."):
                return rel.replace(os.sep, "/")
        except ValueError:  # different drive (Windows)
            pass
    return path.replace(os.sep, "/")


def _select_rules(rules: Optional[Iterable[str]]) -> frozenset[str]:
    if rules is None:
        return frozenset(ALL_RULES)
    selected = frozenset(rules)
    unknown = selected - frozenset(ALL_RULES)
    if unknown:
        raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
    return selected


def _apply_suppressions(
    findings: Iterable[Finding], supp: Suppressions
) -> list[Finding]:
    return [f for f in findings if not supp.is_suppressed(f.line, f.rule)]


def lint_modules(
    modules: list[ModuleContext],
    suppressions: dict[str, Suppressions],
    rules: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Run the selected rules over pre-parsed modules."""
    selected = _select_rules(rules)
    findings: list[Finding] = []
    for ctx in modules:
        supp = suppressions[ctx.relpath]
        supp.attach_tree(ctx.tree)
        for rule, func in PER_FILE_RULES.items():
            if rule in selected:
                findings.extend(_apply_suppressions(func(ctx), supp))
    for rule, func in PROJECT_RULES.items():
        if rule in selected:
            raw = func(modules)
            findings.extend(
                f
                for f in raw
                if not suppressions.get(f.path, Suppressions()).is_suppressed(
                    f.line, f.rule
                )
            )
    # REP000 (unused noqa) only makes sense when every detection rule
    # ran: a pragma for an unselected rule is not stale, just untested
    # this run.
    detection_rules = frozenset(ALL_RULES) - {"REP000"}
    if "REP000" in selected and detection_rules <= selected:
        for ctx in modules:
            supp = suppressions[ctx.relpath]
            for line, codes in supp.unused_pragmas():
                listed = ",".join(sorted(codes)) if codes else "all rules"
                findings.append(
                    Finding(
                        path=ctx.relpath,
                        line=line,
                        col=1,
                        rule="REP000",
                        message=(
                            f"unused suppression ({listed}): this "
                            "'repro: noqa' pragma suppresses no finding; "
                            "delete it so stale suppressions cannot mask "
                            "future ones"
                        ),
                    )
                )
    return sorted(findings)


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Iterable[str]] = None,
    root: Optional[str] = None,
) -> tuple[list[Finding], list[str]]:
    """Lint files/directories.

    Returns ``(findings, errors)`` where errors are human-readable
    parse/read failures (reported but non-fatal so one broken file
    doesn't hide findings elsewhere).
    """
    if root is None:
        root = os.getcwd()
    modules: list[ModuleContext] = []
    suppressions: dict[str, Suppressions] = {}
    errors: list[str] = []
    for path in iter_python_files(paths):
        rel = _relpath(path, root)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            ctx = ModuleContext.parse(path, source, rel)
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{rel}: {exc}")
            continue
        modules.append(ctx)
        suppressions[rel] = Suppressions.from_source(source)
    return lint_modules(modules, suppressions, rules), errors


def lint_text(
    source: str,
    relpath: str = "<string>",
    rules: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Lint one in-memory source string (test fixtures)."""
    ctx = ModuleContext.parse(relpath, source, relpath)
    supp = Suppressions.from_source(source)
    return lint_modules([ctx], {relpath: supp}, rules)
