"""Per-file AST lint rules (REP001–REP003, REP005–REP008, REP012,
REP013).

Each rule is a function taking a :class:`ModuleContext` and returning
raw findings; suppression filtering happens in the driver
(:mod:`repro.analysis.lint`).  Cross-file rules (REP004) live in
:mod:`repro.analysis.project`.

All rules work on the stdlib :mod:`ast` — no third-party dependencies —
and resolve import aliases (``import numpy as np``) so the banned-call
tables match however a module spells the import.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from .findings import Finding

UNIT_SUFFIXES = ("bytes", "frames", "pages", "regions")
"""Identifier-suffix families REP003 treats as distinct memory units."""

UNIT_HELPERS = frozenset(
    {
        "align_down",
        "align_up",
        "bytes_to_frames",
        "bytes_to_pages",
        "bytes_to_regions",
        "format_bytes",
        "frames_to_bytes",
        "frames_to_regions",
        "pages_to_bytes",
        "regions_to_bytes",
        "regions_to_frames",
    }
)
"""repro.units conversion helpers that legitimize mixed-unit arithmetic."""

BANNED_CALLS: dict[str, str] = {
    "time.time": "wall-clock time is nondeterministic",
    "time.time_ns": "wall-clock time is nondeterministic",
    "time.monotonic": "clock reads are nondeterministic",
    "time.monotonic_ns": "clock reads are nondeterministic",
    "time.perf_counter": "clock reads are nondeterministic",
    "time.perf_counter_ns": "clock reads are nondeterministic",
    "time.process_time": "clock reads are nondeterministic",
    "datetime.datetime.now": "wall-clock time is nondeterministic",
    "datetime.datetime.utcnow": "wall-clock time is nondeterministic",
    "datetime.datetime.today": "wall-clock time is nondeterministic",
    "datetime.date.today": "wall-clock time is nondeterministic",
    "os.urandom": "os.urandom is a nondeterministic entropy source",
    "os.getrandom": "os.getrandom is a nondeterministic entropy source",
    "uuid.uuid1": "uuid1 mixes in clock and MAC state",
    "uuid.uuid4": "uuid4 draws from os.urandom",
    "secrets.token_bytes": "secrets is a nondeterministic entropy source",
    "secrets.token_hex": "secrets is a nondeterministic entropy source",
    "secrets.randbits": "secrets is a nondeterministic entropy source",
    "secrets.choice": "secrets is a nondeterministic entropy source",
}
"""Dotted call paths REP001 always rejects."""

GLOBAL_RNG_FUNCS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
    }
)
"""``random.<fn>`` module-level functions that share hidden global state."""

NUMPY_LEGACY_RNG_FUNCS = frozenset(
    {
        "choice",
        "normal",
        "permutation",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "seed",
        "shuffle",
        "standard_normal",
        "uniform",
    }
)
"""Legacy ``numpy.random.<fn>`` module-level functions (hidden global
``RandomState``)."""

SET_TYPE_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet"}
)
"""Annotation heads REP002 treats as hash-ordered containers."""

ITERATION_CALLS = frozenset(
    {
        "all",
        "any",
        "enumerate",
        "filter",
        "iter",
        "list",
        "map",
        "max",
        "min",
        "next",
        "reversed",
        "sum",
        "tuple",
        "numpy.fromiter",
        "numpy.array",
    }
)
"""Builtins/functions whose call order exposes the argument's iteration
order (``sorted`` is deliberately absent — it is the fix)."""


@dataclass
class ModuleContext:
    """One parsed source file plus resolved import aliases."""

    path: str
    source: str
    tree: ast.Module
    relpath: str
    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str, relpath: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(path=path, source=source, tree=tree, relpath=relpath)
        ctx.aliases = _collect_aliases(tree)
        return ctx

    def qualify(self, node: ast.AST) -> Optional[str]:
        """Dotted path of a Name/Attribute chain with aliases resolved.

        ``np.random.default_rng`` (after ``import numpy as np``) becomes
        ``numpy.random.default_rng``; unresolvable chains (subscripts,
        calls) return ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted paths they import."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


RuleFunc = Callable[[ModuleContext], list[Finding]]


def _finding(ctx: ModuleContext, node: ast.AST, rule: str, message: str) -> Finding:
    return Finding(
        path=ctx.relpath,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule=rule,
        message=message,
    )


# ----------------------------------------------------------------------
# REP001 — nondeterminism sources
# ----------------------------------------------------------------------

def check_rep001(ctx: ModuleContext) -> list[Finding]:
    """Flag wall clocks, unseeded/global RNGs and id()-keyed ordering."""
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = ctx.qualify(node.func)
        if qual is None:
            continue
        reason = BANNED_CALLS.get(qual)
        if reason is not None:
            findings.append(
                _finding(ctx, node, "REP001", f"call to {qual}(): {reason}")
            )
            continue
        head, _, tail = qual.rpartition(".")
        if head == "random" and tail in GLOBAL_RNG_FUNCS:
            findings.append(
                _finding(
                    ctx, node, "REP001",
                    f"call to {qual}() uses the hidden global RNG; "
                    "construct a seeded random.Random(seed) instead",
                )
            )
        elif head == "numpy.random" and tail in NUMPY_LEGACY_RNG_FUNCS:
            findings.append(
                _finding(
                    ctx, node, "REP001",
                    f"call to {qual}() uses numpy's hidden global "
                    "RandomState; use a seeded np.random.default_rng(seed)",
                )
            )
        elif qual in ("numpy.random.default_rng", "random.Random") and not (
            node.args or node.keywords
        ):
            findings.append(
                _finding(
                    ctx, node, "REP001",
                    f"{qual}() without a seed is entropy-seeded; "
                    "pass an explicit seed",
                )
            )
        elif qual == "id":
            findings.append(
                _finding(
                    ctx, node, "REP001",
                    "id() values vary across runs; never key ordering, "
                    "hashing or metrics on object identity",
                )
            )
    return findings


# ----------------------------------------------------------------------
# REP002 — hash-ordered iteration
# ----------------------------------------------------------------------

def _is_set_expr(node: ast.AST, set_names: frozenset[str]) -> bool:
    """Whether ``node`` statically looks like a set/frozenset value."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        # Set algebra keeps set-ness; either side sufficing is enough
        # evidence for a heuristic lint.
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    name = _plain_ref(node)
    return name is not None and name in set_names


def _plain_ref(node: ast.AST) -> Optional[str]:
    """``x`` or ``self.x`` rendered as a lookup key; else None."""
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


def _annotation_is_set(annotation: ast.AST) -> bool:
    head = annotation
    if isinstance(head, ast.Subscript):
        head = head.value
    if isinstance(head, ast.Attribute):
        return head.attr in SET_TYPE_NAMES
    return isinstance(head, ast.Name) and head.id in SET_TYPE_NAMES


_DICT_TYPE_NAMES = frozenset(
    {"dict", "Dict", "defaultdict", "OrderedDict", "Mapping", "MutableMapping"}
)

_DICT_VALUE_METHODS = frozenset({"get", "pop", "setdefault"})


def _annotation_head(annotation: ast.AST) -> Optional[str]:
    head = annotation
    if isinstance(head, ast.Subscript):
        head = head.value
    if isinstance(head, ast.Attribute):
        return head.attr
    if isinstance(head, ast.Name):
        return head.id
    return None


def _dict_value_annotation(annotation: ast.AST) -> Optional[ast.AST]:
    """The value annotation of a ``dict[K, V]``-style annotation."""
    if _annotation_head(annotation) not in _DICT_TYPE_NAMES:
        return None
    if not isinstance(annotation, ast.Subscript):
        return None
    params = annotation.slice
    if isinstance(params, ast.Tuple) and len(params.elts) >= 2:
        return params.elts[-1]
    return None


def _tuple_set_positions(annotation: ast.AST) -> Optional[frozenset[int]]:
    """Set-typed element positions of a ``tuple[...]`` annotation."""
    if _annotation_head(annotation) not in ("tuple", "Tuple"):
        return None
    if not isinstance(annotation, ast.Subscript):
        return None
    params = annotation.slice
    elts = params.elts if isinstance(params, ast.Tuple) else [params]
    positions = frozenset(
        i for i, elt in enumerate(elts) if _annotation_is_set(elt)
    )
    return positions or None


# Kind of a container value: "set" (the value itself is a set) or a
# frozenset of tuple positions holding sets.
_ValueKind = object


class _SetInference:
    """Tracks which names hold sets, set-bearing tuples, or dicts whose
    values are sets / set-bearing tuples.

    File-global on purpose: a heuristic lint prefers a rare extra hit
    (silenced with ``# repro: noqa REP002``) over missing an
    order-dependent loop because of scope bookkeeping.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.set_names: set[str] = set()
        self.tuple_refs: dict[str, frozenset[int]] = {}
        self.dict_refs: dict[str, object] = {}
        self._collect_annotations(tree)
        # Propagate through assignment chains (entry = d.pop(...);
        # a, b = entry) until the name sets stop growing.
        while True:
            before = (
                len(self.set_names),
                len(self.tuple_refs),
                len(self.dict_refs),
            )
            self._propagate(tree)
            if before == (
                len(self.set_names),
                len(self.tuple_refs),
                len(self.dict_refs),
            ):
                break

    # -- annotation seeding ---------------------------------------------

    def _record_annotation(self, ref: str, annotation: ast.AST) -> None:
        if _annotation_is_set(annotation):
            self.set_names.add(ref)
            return
        value_ann = _dict_value_annotation(annotation)
        if value_ann is not None:
            if _annotation_is_set(value_ann):
                self.dict_refs[ref] = "set"
            else:
                positions = _tuple_set_positions(value_ann)
                if positions:
                    self.dict_refs[ref] = positions
            return
        positions = _tuple_set_positions(annotation)
        if positions:
            self.tuple_refs[ref] = positions

    def _collect_annotations(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                ref = _plain_ref(node.target)
                if ref is not None:
                    self._record_annotation(ref, node.annotation)
            elif isinstance(node, ast.arg) and node.annotation is not None:
                self._record_annotation(node.arg, node.annotation)

    # -- value-kind inference -------------------------------------------

    def _value_kind(self, node: ast.AST) -> Optional[object]:
        """``"set"``, tuple set-positions, or None for an expression."""
        ref = _plain_ref(node)
        if ref is not None:
            if ref in self.set_names:
                return "set"
            return self.tuple_refs.get(ref)
        if isinstance(node, ast.Subscript):
            base = _plain_ref(node.value)
            if base is not None:
                return self.dict_refs.get(base)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _DICT_VALUE_METHODS:
                base = _plain_ref(node.func.value)
                if base is not None:
                    return self.dict_refs.get(base)
        if _is_set_expr(node, frozenset(self.set_names)):
            return "set"
        return None

    def _bind(self, target: ast.AST, kind: Optional[object]) -> None:
        if kind is None:
            return
        ref = _plain_ref(target)
        if ref is not None:
            if kind == "set":
                self.set_names.add(ref)
            else:
                self.tuple_refs[ref] = kind
            return
        if isinstance(target, ast.Tuple) and not isinstance(kind, str):
            for position in kind:
                if position < len(target.elts):
                    elt_ref = _plain_ref(target.elts[position])
                    if elt_ref is not None:
                        self.set_names.add(elt_ref)

    def _bind_iteration(self, target: ast.AST, iterated: ast.AST) -> None:
        """Bind loop targets drawing from ``d.values()`` / ``d.items()``."""
        if not (
            isinstance(iterated, ast.Call)
            and isinstance(iterated.func, ast.Attribute)
            and iterated.func.attr in ("values", "items")
        ):
            return
        base = _plain_ref(iterated.func.value)
        kind = self.dict_refs.get(base) if base is not None else None
        if kind is None:
            return
        if iterated.func.attr == "items":
            if isinstance(target, ast.Tuple) and len(target.elts) == 2:
                self._bind(target.elts[1], kind)
        else:
            self._bind(target, kind)

    def _propagate(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                kind = self._value_kind(node.value)
                for target in node.targets:
                    self._bind(target, kind)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._bind_iteration(node.target, node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp,
                                   ast.DictComp)):
                for comp in node.generators:
                    self._bind_iteration(comp.target, comp.iter)


def _collect_set_names(tree: ast.Module) -> frozenset[str]:
    """Names (``x`` / ``self.x``) that statically look set-valued."""
    return frozenset(_SetInference(tree).set_names)


def _iter_order_sinks(tree: ast.Module) -> Iterator[tuple[ast.AST, ast.AST]]:
    """(report-node, iterated-expression) pairs whose order is observable."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for comp in node.generators:
                yield node, comp.iter
        elif isinstance(node, ast.Call):
            func_name = None
            if isinstance(node.func, ast.Name):
                func_name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                func_name = node.func.attr
            if func_name in ("fromiter",) and node.args:
                yield node, node.args[0]
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in ITERATION_CALLS
                and node.args
            ):
                yield node, node.args[0]


def check_rep002(ctx: ModuleContext) -> list[Finding]:
    """Flag iteration whose order comes from a hash table.

    CPython set iteration order is an artifact of the table's insertion
    and deletion history; letting it reach metrics, frame lists or fault
    sequencing makes runs fragile against unrelated edits.  Dict views
    are exempt (insertion-ordered by language guarantee).
    """
    set_names = _collect_set_names(ctx.tree)
    findings: list[Finding] = []
    seen: set[tuple[int, int]] = set()
    for report_node, iterated in _iter_order_sinks(ctx.tree):
        if not _is_set_expr(iterated, set_names):
            continue
        key = (report_node.lineno, report_node.col_offset)
        if key in seen:
            continue
        seen.add(key)
        label = _plain_ref(iterated) or "a set expression"
        findings.append(
            _finding(
                ctx, report_node, "REP002",
                f"iteration over {label} exposes hash order; iterate "
                "sorted(...) so downstream state is order-independent",
            )
        )
    return findings


# ----------------------------------------------------------------------
# REP003 — unit safety
# ----------------------------------------------------------------------

def _unit_family(identifier: str) -> Optional[str]:
    for suffix in UNIT_SUFFIXES:
        if identifier == suffix or identifier.endswith(f"_{suffix}"):
            return suffix
    return None


def _contains_unit_helper(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name in UNIT_HELPERS:
                return True
    return False


def _unit_families(node: ast.AST) -> set[str]:
    families: set[str] = set()
    for sub in ast.walk(node):
        identifier = None
        if isinstance(sub, ast.Name):
            identifier = sub.id
        elif isinstance(sub, ast.Attribute):
            identifier = sub.attr
        if identifier is not None:
            family = _unit_family(identifier)
            if family is not None:
                families.add(family)
    return families


def check_rep003(ctx: ModuleContext) -> list[Finding]:
    """Flag additive/comparison arithmetic mixing unit families.

    Multiplication and division are how units convert, so only ``+``,
    ``-`` and ordering/equality comparisons are audited.  Expressions
    that route through a :mod:`repro.units` helper are accepted.
    """
    findings: list[Finding] = []
    reported: set[int] = set()

    def report(node: ast.AST, families: set[str]) -> None:
        if node.lineno in reported:
            return
        reported.add(node.lineno)
        joined = "/".join(sorted(families))
        findings.append(
            _finding(
                ctx, node, "REP003",
                f"arithmetic mixes units ({joined}); convert through a "
                "repro.units helper or rename the identifiers",
            )
        )

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            if _contains_unit_helper(node):
                continue
            left = _unit_families(node.left)
            right = _unit_families(node.right)
            if left and right and left != right:
                report(node, left | right)
        elif isinstance(node, ast.Compare):
            if _contains_unit_helper(node):
                continue
            sides = [node.left, *node.comparators]
            per_side = [_unit_families(side) for side in sides]
            nonempty = [fams for fams in per_side if fams]
            if len(nonempty) >= 2 and len(set().union(*nonempty)) > 1:
                report(node, set().union(*nonempty))
    return findings


# ----------------------------------------------------------------------
# REP005 — ledger hygiene
# ----------------------------------------------------------------------

LEDGER_FILE_SUFFIX = "mem/stats.py"
"""The one module allowed to mutate KernelLedger counters."""

_COUNTER_ATTRS = ("counts", "cycles")
_MUTATING_METHODS = frozenset(
    {"clear", "pop", "popitem", "setdefault", "subtract", "update"}
)


def _counter_attr(node: ast.AST) -> Optional[str]:
    """``<ledger-ish>.counts`` / ``.cycles`` attribute name, if matched.

    Only attributes hanging off something whose terminal name mentions
    ``ledger``, ``self`` (inside stats.py this rule never runs) or a
    bare ``KernelLedger`` value are matched — ``trace.counts`` (a numpy
    histogram) must not trip the rule.
    """
    if not (isinstance(node, ast.Attribute) and node.attr in _COUNTER_ATTRS):
        return None
    base = node.value
    base_name = None
    if isinstance(base, ast.Name):
        base_name = base.id
    elif isinstance(base, ast.Attribute):
        base_name = base.attr
    elif isinstance(base, ast.Call):
        func = base.func
        base_name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
    if base_name is None:
        return None
    if "ledger" in base_name.lower() or base_name == "KernelLedger":
        return node.attr
    return None


def check_rep005(ctx: ModuleContext) -> list[Finding]:
    """Flag KernelLedger counter mutation outside ``mem/stats.py``."""
    if ctx.relpath.replace("\\", "/").endswith(LEDGER_FILE_SUFFIX):
        return []
    findings: list[Finding] = []

    def flag(node: ast.AST, what: str) -> None:
        findings.append(
            _finding(
                ctx, node, "REP005",
                f"{what} mutates KernelLedger counters outside "
                "repro/mem/stats.py; use the registered charge helpers "
                "(minor_fault, compaction, reclaim, ...)",
            )
        )

    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for sub in ast.walk(target):
                    attr = _counter_attr(sub)
                    if attr is not None:
                        flag(node, f"assignment to ledger.{attr}")
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and _counter_attr(func.value) is not None
            ):
                flag(node, f"ledger.{func.value.attr}.{func.attr}() call")
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "add"
                and isinstance(func.value, (ast.Name, ast.Attribute))
            ):
                base = func.value
                base_name = base.id if isinstance(base, ast.Name) else base.attr
                if "ledger" in base_name.lower():
                    flag(node, "raw ledger.add() call")
    return findings


# ----------------------------------------------------------------------
# REP006 — __all__ completeness
# ----------------------------------------------------------------------

def _literal_all(tree: ast.Module) -> Optional[tuple[ast.AST, list[str]]]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        names = [
                            elt.value
                            for elt in node.value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                        ]
                        return node, names
    return None


def _public_bindings(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return {
        name
        for name in names
        if name == "__version__" or not name.startswith("_")
    }


def check_rep006(ctx: ModuleContext) -> list[Finding]:
    """``__init__.py`` packages: ``__all__`` ↔ public bindings, exactly."""
    if not ctx.relpath.replace("\\", "/").endswith("__init__.py"):
        return []
    found = _literal_all(ctx.tree)
    if found is None:
        return []  # modules without __all__ export implicitly; not audited
    node, exported = found
    public = _public_bindings(ctx.tree)
    findings: list[Finding] = []
    dangling = sorted(set(exported) - public)
    missing = sorted(public - set(exported))
    duplicates = sorted(
        {name for name in exported if exported.count(name) > 1}
    )
    if dangling:
        findings.append(
            _finding(
                ctx, node, "REP006",
                "__all__ lists names the package never binds: "
                + ", ".join(dangling),
            )
        )
    if missing:
        findings.append(
            _finding(
                ctx, node, "REP006",
                "public names missing from __all__: " + ", ".join(missing),
            )
        )
    if duplicates:
        findings.append(
            _finding(
                ctx, node, "REP006",
                "__all__ lists names more than once: " + ", ".join(duplicates),
            )
        )
    return findings


# ----------------------------------------------------------------------
# REP007 — durable-write discipline
# ----------------------------------------------------------------------

RUNSTATE_PATH_FRAGMENT = "runstate/"
"""The package whose atomic-write helpers REP007 exempts (they *are*
the sanctioned write path)."""

DURABLE_PATH_HINTS = ("journal", "result", "figure_id")
"""Identifier/string fragments that mark an expression as touching a
journal or results file."""

_WRITE_ATTR_METHODS = frozenset({"write_text", "write_bytes"})


def _durable_hint(node: ast.AST) -> Optional[str]:
    """The first journal/results hint mentioned anywhere in ``node``."""
    for sub in ast.walk(node):
        text = None
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            text = sub.value
        elif isinstance(sub, ast.Name):
            text = sub.id
        elif isinstance(sub, ast.Attribute):
            text = sub.attr
        if text is None:
            continue
        lowered = text.lower()
        for hint in DURABLE_PATH_HINTS:
            if hint in lowered:
                return hint
    return None


def _open_write_mode(node: ast.Call) -> Optional[str]:
    """The write-ish mode string of an ``open()`` call, if any."""
    mode_node: Optional[ast.AST] = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if not (
        isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str)
    ):
        return None
    mode = mode_node.value
    if any(flag in mode for flag in ("w", "a", "x", "+")):
        return mode
    return None


def check_rep007(ctx: ModuleContext) -> list[Finding]:
    """Flag direct writes to journal/results paths outside runstate.

    Journals and figure results are the files a crashed sweep resumes
    from; a plain ``open(.., "w")`` / ``json.dump`` / ``Path.write_text``
    can tear them.  All durable writes must route through
    :func:`repro.runstate.atomic.atomic_write_text` (whole files) or
    :func:`repro.runstate.atomic.append_durable_line` (journal appends).
    """
    if RUNSTATE_PATH_FRAGMENT in ctx.relpath.replace("\\", "/"):
        return []
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = ctx.qualify(node.func)
        what = None
        if qual == "open" and node.args:
            mode = _open_write_mode(node)
            if mode is not None and _durable_hint(node.args[0]) is not None:
                what = f"open(..., {mode!r})"
        elif qual == "json.dump":
            if _durable_hint(node) is not None:
                what = "json.dump(...)"
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _WRITE_ATTR_METHODS
        ):
            if _durable_hint(node.func.value) is not None:
                what = f".{node.func.attr}(...)"
        if what is not None:
            findings.append(
                _finding(
                    ctx, node, "REP007",
                    f"{what} writes a journal/results path directly; "
                    "route durable writes through repro.runstate.atomic "
                    "(atomic_write_text / append_durable_line) so a "
                    "crash cannot tear the file",
                )
            )
    return findings


# ----------------------------------------------------------------------
# REP008 — tracer emission sites must be guarded
# ----------------------------------------------------------------------

OBS_PATH_FRAGMENT = "obs/"
"""The tracer's own package — exempt from REP008 (it defines ``emit``)."""


def _tracer_guards(test: ast.AST, ctx: ModuleContext) -> set[str]:
    """Dotted refs an ``if`` test proves non-None (``x is not None``,
    possibly inside an ``and`` chain)."""
    guards: set[str] = set()
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        for value in test.values:
            guards |= _tracer_guards(value, ctx)
        return guards
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.IsNot)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        ref = ctx.qualify(test.left)
        if ref is not None:
            guards.add(ref)
    return guards


def _is_tracer_ref(ref: str) -> bool:
    """True when a dotted ref's terminal name looks like a tracer."""
    return "tracer" in ref.rsplit(".", 1)[-1].lower()


def check_rep008(ctx: ModuleContext) -> list[Finding]:
    """Flag tracer ``.emit()`` calls outside an ``is not None`` guard.

    The observability layer's zero-cost-when-off contract (the MemSan
    discipline, docs/observability.md) requires every emission site to
    load the tracer once and test it::

        tracer = self.tracer
        if tracer is not None:
            tracer.emit("thp.promotion", ...)

    An unguarded ``self.tracer.emit(...)`` either crashes when tracing
    is off (tracer is None) or — worse — hides an always-on event
    construction on a hot path.
    """
    if OBS_PATH_FRAGMENT in ctx.relpath.replace("\\", "/"):
        return []
    findings: list[Finding] = []

    def visit(node: ast.AST, guarded: frozenset[str]) -> None:
        if isinstance(node, ast.If):
            visit(node.test, guarded)
            inner = guarded | _tracer_guards(node.test, ctx)
            for child in node.body:
                visit(child, inner)
            for child in node.orelse:
                visit(child, guarded)
            return
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ) and node.func.attr == "emit":
            ref = ctx.qualify(node.func.value)
            if ref is not None and _is_tracer_ref(ref) and ref not in guarded:
                findings.append(
                    _finding(
                        ctx, node, "REP008",
                        f"unguarded tracer emission {ref}.emit(...); bind "
                        "the tracer to a local and wrap the emit in "
                        "'if tracer is not None:' so tracing stays "
                        "zero-cost when off",
                    )
                )
        for child in ast.iter_child_nodes(node):
            visit(child, guarded)

    visit(ctx.tree, frozenset())
    return findings


# ----------------------------------------------------------------------
# REP012 — vectorized trace discipline
# ----------------------------------------------------------------------

TLB_ENGINE_FILES = ("tlb/engine.py", "tlb/hierarchy.py")
"""The two modules allowed to walk TlbTrace arrays element-wise (the
exact reference simulator and the batch engine's decision procedures)."""

TRACE_ARRAY_ATTRS = frozenset(
    {
        "run_keys",
        "run_counts",
        "run_array_ids",
        "lookup_keys",
        "lookup_array_ids",
    }
)
"""TlbTrace array fields (and the conventional names of
``lookup_view()`` unpacks) whose per-element iteration REP012 bans."""

_ARRAY_PROPAGATORS = frozenset({"astype", "copy", "reshape", "view"})
"""Methods that return (a view of) the same array — taint flows through."""

_ITER_WRAPPERS = frozenset(
    {"enumerate", "iter", "list", "map", "filter", "reversed", "tuple", "zip"}
)


def _trace_array_like(node: ast.AST, tainted: set[str]) -> bool:
    """Whether ``node`` statically looks like a TlbTrace array value."""
    if isinstance(node, ast.Name):
        return node.id in tainted or node.id in TRACE_ARRAY_ATTRS
    if isinstance(node, ast.Attribute):
        return node.attr in TRACE_ARRAY_ATTRS
    if isinstance(node, ast.Subscript):
        return _trace_array_like(node.value, tainted)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr == "lookup_view":
            return True
        if node.func.attr in _ARRAY_PROPAGATORS:
            return _trace_array_like(node.func.value, tainted)
    return False


def _collect_trace_taint(tree: ast.Module) -> set[str]:
    """Names bound (transitively) to TlbTrace arrays."""
    tainted: set[str] = set()
    while True:
        before = len(tainted)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and _trace_array_like(
                    node.value, tainted
                ):
                    tainted.add(target.id)
                elif isinstance(target, ast.Tuple) and (
                    isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "lookup_view"
                ):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            tainted.add(elt.id)
        if len(tainted) == before:
            return tainted


def _is_per_element_iter(iterated: ast.AST, tainted: set[str]) -> bool:
    """Whether an iterated expression walks a trace array element-wise."""
    if _trace_array_like(iterated, tainted):
        return True
    if not isinstance(iterated, ast.Call):
        return False
    func = iterated.func
    if isinstance(func, ast.Attribute) and func.attr == "tolist":
        return _trace_array_like(func.value, tainted)
    if not isinstance(func, ast.Name):
        return False
    if func.id in _ITER_WRAPPERS:
        return any(
            _is_per_element_iter(arg, tainted) for arg in iterated.args
        )
    if func.id == "range" and len(iterated.args) == 1:
        # range(len(keys)) / range(keys.size): indexed element loops.
        arg = iterated.args[0]
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Name)
            and arg.func.id == "len"
            and arg.args
        ):
            return _trace_array_like(arg.args[0], tainted)
        if isinstance(arg, ast.Attribute) and arg.attr == "size":
            return _trace_array_like(arg.value, tainted)
    return False


def check_rep012(ctx: ModuleContext) -> list[Finding]:
    """Flag per-element Python loops over TlbTrace arrays.

    Interpreting a translation stream one lookup at a time is the
    ~100ns-per-element pattern the batch engine exists to replace
    (docs/performance.md); outside the two sanctioned modules, trace
    arrays must be consumed through numpy set-wise operations or handed
    to a hierarchy's ``simulate``.
    """
    relpath = ctx.relpath.replace("\\", "/")
    if relpath.endswith(TLB_ENGINE_FILES):
        return []
    tainted = _collect_trace_taint(ctx.tree)
    findings: list[Finding] = []
    seen: set[tuple[int, int]] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            sources = [node.iter]
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            sources = [comp.iter for comp in node.generators]
        else:
            continue
        if not any(_is_per_element_iter(src, tainted) for src in sources):
            continue
        key = (node.lineno, node.col_offset)
        if key in seen:
            continue
        seen.add(key)
        findings.append(
            _finding(
                ctx, node, "REP012",
                "per-element Python loop over TlbTrace arrays; use "
                "numpy set-wise operations or the batch translation "
                "engine (repro.tlb.engine) — only tlb/engine.py and "
                "tlb/hierarchy.py may walk translation streams "
                "element-wise",
            )
        )
    return findings


# ----------------------------------------------------------------------
# REP013 — policy hook sandbox
# ----------------------------------------------------------------------

HOOK_METHODS = frozenset({"on_fault", "on_khugepaged_scan", "on_demote_scan"})
"""The :class:`repro.policy.hooks.PagePolicy` decision points."""

POLICY_IMPORT_ALLOWLIST = frozenset(
    {
        "bisect",
        "collections",
        "dataclasses",
        "enum",
        "functools",
        "heapq",
        "itertools",
        "math",
        "numpy",
        "operator",
        "repro",
        "typing",
    }
)
"""Module roots a policy hook body may import from.  Everything else —
clocks, entropy, filesystems, processes — is outside the sandbox."""

_POLICY_BANNED_ROOTS: dict[str, str] = {
    "time": "clock reads are nondeterministic",
    "datetime": "wall-clock time is nondeterministic",
    "random": "ambient RNG breaks bit-for-bit reproducibility",
    "secrets": "entropy sources are nondeterministic",
    "uuid": "uuid state mixes in clock and entropy",
    "os": "ambient process/filesystem state is outside the sandbox",
    "sys": "interpreter state is outside the sandbox",
    "subprocess": "process spawning is outside the sandbox",
    "socket": "network I/O is outside the sandbox",
    "pathlib": "filesystem I/O is outside the sandbox",
    "shutil": "filesystem I/O is outside the sandbox",
    "tempfile": "filesystem I/O is outside the sandbox",
}
"""Module roots whose *calls* inside a hook body violate the sandbox."""

_POLICY_BANNED_BUILTINS: dict[str, str] = {
    "open": "file I/O is outside the sandbox",
    "input": "console input is nondeterministic",
    "eval": "dynamic code execution is outside the sandbox",
    "exec": "dynamic code execution is outside the sandbox",
}

_VIEW_MUTATION_CALLS = frozenset({"setattr", "delattr"})


def _hook_view_param(node: ast.AST) -> Optional[str]:
    """The PolicyView parameter name of a hook method (by convention
    ``view``; falls back to the last positional parameter)."""
    args = getattr(node, "args", None)
    if args is None:
        return None
    names = [
        a.arg
        for a in list(args.posonlyargs) + list(args.args)
        if a.arg not in ("self", "cls")
    ]
    if "view" in names:
        return "view"
    return names[-1] if names else None


def _rooted_at(node: ast.AST, name: str) -> bool:
    """Whether an Attribute/Subscript chain bottoms out at Name(name)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == name


def _check_hook_body(
    ctx: ModuleContext, hook: ast.AST, findings: list[Finding]
) -> None:
    view = _hook_view_param(hook)
    for node in ast.walk(hook):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root not in POLICY_IMPORT_ALLOWLIST:
                    findings.append(
                        _finding(
                            ctx, node, "REP013",
                            f"policy hook imports {alias.name!r}: only "
                            + ", ".join(sorted(POLICY_IMPORT_ALLOWLIST))
                            + " may be imported inside a hook body",
                        )
                    )
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            root = (node.module or "").split(".")[0]
            if root and root not in POLICY_IMPORT_ALLOWLIST:
                findings.append(
                    _finding(
                        ctx, node, "REP013",
                        f"policy hook imports from {node.module!r}: only "
                        + ", ".join(sorted(POLICY_IMPORT_ALLOWLIST))
                        + " may be imported inside a hook body",
                    )
                )
        elif isinstance(node, ast.Call):
            qual = ctx.qualify(node.func)
            if qual is not None:
                root = qual.split(".")[0]
                reason = _POLICY_BANNED_ROOTS.get(root)
                if reason is None and qual.startswith("numpy.random."):
                    reason = (
                        "ambient RNG breaks bit-for-bit reproducibility"
                    )
                if reason is None:
                    reason = _POLICY_BANNED_BUILTINS.get(qual)
                if reason is not None:
                    findings.append(
                        _finding(
                            ctx, node, "REP013",
                            f"policy hook calls {qual}(): {reason}; "
                            "hooks must be pure functions of their "
                            "FaultContext/candidates and PolicyView",
                        )
                    )
                    continue
            if (
                view is not None
                and isinstance(node.func, ast.Name)
                and node.func.id in _VIEW_MUTATION_CALLS
                and node.args
                and _rooted_at(node.args[0], view)
            ):
                findings.append(
                    _finding(
                        ctx, node, "REP013",
                        f"policy hook mutates the PolicyView via "
                        f"{node.func.id}(); the view is read-only — "
                        "hooks act through their return values",
                    )
                )
        elif view is not None and isinstance(
            node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)
        ):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.Delete):
                targets = node.targets
            else:
                targets = [node.target]
            for target in targets:
                if isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and _rooted_at(target, view):
                    findings.append(
                        _finding(
                            ctx, node, "REP013",
                            "policy hook writes through the PolicyView; "
                            "the view is read-only — hooks act through "
                            "their return values",
                        )
                    )


def check_rep013(ctx: ModuleContext) -> list[Finding]:
    """Flag sandbox violations inside PagePolicy hook bodies.

    Policy callbacks (``on_fault`` / ``on_khugepaged_scan`` /
    ``on_demote_scan``) must be deterministic, side-effect-free
    functions of their inputs (docs/policies.md): no wall clocks, no
    ambient RNG, no writes through the read-only PolicyView, no
    filesystem/process/network escape hatches, and no imports beyond a
    numeric/stdlib-container allowlist.  The PolicyView's
    ``__setattr__`` guard is this rule's runtime twin.
    """
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in HOOK_METHODS
        ):
            _check_hook_body(ctx, node, findings)
    return findings


PER_FILE_RULES: dict[str, RuleFunc] = {
    "REP001": check_rep001,
    "REP002": check_rep002,
    "REP003": check_rep003,
    "REP005": check_rep005,
    "REP006": check_rep006,
    "REP007": check_rep007,
    "REP008": check_rep008,
    "REP012": check_rep012,
    "REP013": check_rep013,
}
"""Per-file rule registry; REP004 is project-wide (see ``project.py``)."""
