"""``python -m repro.analysis`` — run the repo-specific lint.

Exit status: 0 clean, 1 findings, 2 usage/parse errors.  With
``--baseline``, exit 1 only on findings not absorbed by the baseline
(the ratchet workflow; see docs/static-analysis.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .baseline import (
    DEFAULT_BASELINE_PATH,
    apply_baseline,
    load_baseline,
    render_baseline,
)
from .findings import ALL_RULES, RULE_SUMMARIES
from .lint import default_target, lint_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Repo-specific static analysis: determinism (REP001/REP002), "
            "unit safety (REP003), fault-site completeness (REP004), "
            "ledger hygiene (REP005), export hygiene (REP006), "
            "durable-write discipline (REP007), tracer emission "
            "discipline (REP008), the ConcSan concurrency rules — "
            "lock discipline (REP009), fork/spawn safety (REP010) and "
            "crash consistency (REP011) — vectorized trace "
            "discipline (REP012) and the policy hook sandbox (REP013)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rules to run (e.g. REP001,REP004)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=(
            "fail only on findings not recorded in this baseline file "
            "(the ratchet: new findings break the build, baselined "
            "ones are reported but tolerated)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        nargs="?",
        const=DEFAULT_BASELINE_PATH,
        metavar="PATH",
        help=(
            "record the current findings as the new baseline "
            f"(default path: {DEFAULT_BASELINE_PATH}) and exit 0"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule}: {RULE_SUMMARIES[rule]}")
        return 0

    paths = args.paths or [default_target()]
    rules = None
    if args.rules:
        rules = [code.strip() for code in args.rules.split(",") if code.strip()]
    try:
        findings, errors = lint_paths(paths, rules=rules)
    except ValueError as exc:
        parser.error(str(exc))  # exits 2

    if args.update_baseline:
        with open(args.update_baseline, "w", encoding="utf-8") as handle:
            handle.write(render_baseline(findings))
        print(
            f"{args.update_baseline}: recorded {len(findings)} finding(s)",
            file=sys.stderr,
        )
        return 2 if errors else 0

    matched = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            parser.error(f"cannot read baseline {args.baseline!r}: {exc}")
        findings, matched = apply_baseline(findings, baseline)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in findings],
                    "errors": errors,
                    "baselined": matched,
                },
                indent=2,
            )
        )
    else:
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        for finding in findings:
            print(finding.render())
        if findings or matched:
            suffix = f" ({matched} baselined)" if matched else ""
            print(f"{len(findings)} finding(s){suffix}", file=sys.stderr)

    if errors:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
