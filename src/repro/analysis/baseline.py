"""Baseline ratchet for ``python -m repro.analysis``.

New rules land strict without a flag-day: ``--update-baseline`` records
the current findings into ``.analysis-baseline.json``; thereafter
``--baseline .analysis-baseline.json`` fails only on findings *not* in
the baseline.  Keys are ``(path, rule, message)`` with an occurrence
count — deliberately line-independent, so unrelated edits that shift a
baselined finding up or down a file do not break CI, while a second
occurrence of the same defect (count exceeded) does.

The intended workflow is a ratchet: the baseline only ever shrinks.
Fixing a baselined finding and re-recording removes its entry; adding
new entries needs the same review scrutiny as a ``repro:noqa``.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable

from .findings import Finding

BASELINE_VERSION = 1

DEFAULT_BASELINE_PATH = ".analysis-baseline.json"


def finding_key(finding: Finding) -> tuple[str, str, str]:
    """Line-independent identity of a finding."""
    return (finding.path, finding.rule, finding.message)


def render_baseline(findings: Iterable[Finding]) -> str:
    """Canonical JSON text for a baseline file (sorted, newline-terminated)."""
    counts = Counter(finding_key(f) for f in findings)
    entries = [
        {"path": path, "rule": rule, "message": message, "count": count}
        for (path, rule, message), count in sorted(counts.items())
    ]
    return (
        json.dumps(
            {"version": BASELINE_VERSION, "entries": entries}, indent=2
        )
        + "\n"
    )


def parse_baseline(text: str) -> Counter:
    """Parse baseline JSON into a ``Counter`` of finding keys.

    Raises ``ValueError`` on malformed content (the CLI reports it as a
    usage error rather than silently treating the tree as clean).
    """
    data = json.loads(text)
    if not isinstance(data, dict) or "entries" not in data:
        raise ValueError("baseline file has no 'entries' list")
    counts: Counter = Counter()
    for entry in data["entries"]:
        key = (entry["path"], entry["rule"], entry["message"])
        counts[key] += int(entry.get("count", 1))
    return counts


def load_baseline(path: str) -> Counter:
    """Read and parse a baseline file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_baseline(handle.read())


def apply_baseline(
    findings: list[Finding], baseline: Counter
) -> tuple[list[Finding], int]:
    """Split findings against a baseline.

    Returns ``(new_findings, matched)``: findings beyond the baselined
    occurrence count for their key are *new*; ``matched`` counts the
    findings absorbed by the baseline.
    """
    budget = Counter(baseline)
    new: list[Finding] = []
    matched = 0
    for finding in findings:  # findings arrive sorted -> deterministic
        key = finding_key(finding)
        if budget[key] > 0:
            budget[key] -= 1
            matched += 1
        else:
            new.append(finding)
    return new, matched
