"""MemSan: a runtime sanitizer for the simulated memory subsystem.

KASAN-style checking for the simulator: when enabled, :class:`MemSanitizer`
hooks the physical frame allocator, the VMM and the THP engine and
verifies the invariants the rest of the system silently relies on:

- **double-alloc / double-free** — frames handed out must be ``FREE``,
  frames released must not be;
- **huge-region discipline** — region claims require every frame in the
  (aligned, ``frames_per_region``-sized) region to be free; whole-region
  frees must release a uniformly-owned region; demotion must actually
  find ``HUGE`` frames;
- **transition legality** — compaction migrates only ``MOVABLE`` frames
  (never ``HUGE``/``PINNED``/``NONMOVABLE``), pinning starts from
  resident, unpinned frames;
- **VMM ↔ physical cross-checks** — every resident page is backed by a
  frame owned by its VMM (or its hugetlb pool), huge chunks map exactly
  their region's frames, and the reverse frame map is a bijection;
- **leak detection** — at machine teardown no frame is still owned by
  the released process and the reverse map is empty.

Enablement follows the fault injector's zero-cost-when-off pattern: every
subsystem holds ``sanitizer=None`` by default and guards each hook with a
single ``is not None`` test.  The sanitizer is switched on with the
``REPRO_SANITIZE=1`` environment variable, the CLI ``--sanitize`` flag, or
programmatically via :func:`set_sanitize` / ``Machine(sanitize=True)``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..errors import MemSanError
from ..mem.physical import FrameState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..mem.page_cache import PageCache
    from ..mem.physical import NodeMemory
    from ..mem.vmm import VirtualMemoryManager, Vma

_OVERRIDE: Optional[bool] = None

_ENV_VAR = "REPRO_SANITIZE"

_FALSEY = ("", "0", "false", "no", "off")


def set_sanitize(enabled: Optional[bool]) -> Optional[bool]:
    """Set the process-wide sanitizer override; returns the previous value.

    ``True``/``False`` force MemSan on/off for subsequently constructed
    machines regardless of the environment; ``None`` defers to
    ``REPRO_SANITIZE`` again.
    """
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = enabled
    return previous


def sanitizer_enabled() -> bool:
    """Whether newly constructed machines should carry a sanitizer."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get(_ENV_VAR, "").strip().lower() not in _FALSEY


def make_sanitizer(explicit: Optional[bool] = None) -> Optional["MemSanitizer"]:
    """Build a sanitizer according to an explicit request or the ambient
    setting.

    ``explicit=True`` always returns a fresh sanitizer, ``explicit=False``
    always returns ``None`` (even under ``REPRO_SANITIZE=1`` — used by the
    overhead benchmark's off-path baseline), and ``None`` defers to
    :func:`sanitizer_enabled`.
    """
    if explicit is False:
        return None
    if explicit is True or sanitizer_enabled():
        return MemSanitizer()
    return None


class MemSanitizer:
    """Invariant checker hooked into the simulated memory machinery.

    All hooks raise :class:`~repro.errors.MemSanError` on violation and
    count successful checks in :attr:`checks` so tests can assert the
    sanitizer actually ran.
    """

    def __init__(self) -> None:
        self.checks = 0

    def _fail(self, message: str) -> None:
        raise MemSanError(f"MemSan: {message}")

    # ------------------------------------------------------------------
    # Physical allocator hooks (NodeMemory)
    # ------------------------------------------------------------------

    def on_alloc_frames(
        self, node: "NodeMemory", frames: np.ndarray, state: FrameState
    ) -> None:
        """A base-frame allocation is about to commit."""
        self.checks += 1
        if int(state) == int(FrameState.FREE):
            self._fail("allocation must not install the FREE state")
        taken = node.state[frames] != int(FrameState.FREE)
        if taken.any():
            bad = np.asarray(frames)[taken][:8]
            self._fail(
                f"double-alloc on node {node.node_id}: frames "
                f"{bad.tolist()} are not FREE"
            )

    def on_claim_region(
        self, node: "NodeMemory", region: int, state: FrameState
    ) -> None:
        """A whole huge region is about to be claimed."""
        self.checks += 1
        if not 0 <= region < node.num_regions:
            self._fail(
                f"region {region} outside node {node.node_id}'s "
                f"{node.num_regions} regions"
            )
        if int(state) == int(FrameState.FREE):
            self._fail("region claim must not install the FREE state")
        frames = node.region_frames(region)
        if frames.stop - frames.start != node.frames_per_region:
            self._fail(
                f"region {region} spans {frames.stop - frames.start} "
                f"frames, expected {node.frames_per_region}"
            )
        used = node.state[frames] != int(FrameState.FREE)
        if used.any():
            self._fail(
                f"claiming region {region} on node {node.node_id} with "
                f"{int(used.sum())} non-free frame(s): the fully-free "
                "precondition is violated"
            )

    def on_free_frames(self, node: "NodeMemory", frames: np.ndarray) -> None:
        """Base frames are about to return to the free pool."""
        self.checks += 1
        states = node.state[frames]
        already_free = states == int(FrameState.FREE)
        if already_free.any():
            bad = np.asarray(frames)[already_free][:8]
            self._fail(
                f"double-free on node {node.node_id}: frames "
                f"{bad.tolist()} are already FREE"
            )
        huge = states == int(FrameState.HUGE)
        if huge.any():
            bad = np.asarray(frames)[huge][:8]
            self._fail(
                f"frames {bad.tolist()} on node {node.node_id} belong to a "
                "huge page; split (demote) the region or free it whole"
            )

    def on_release_frame(self, node: "NodeMemory", frame: int) -> None:
        """One frame is about to be released (reclaim/compaction path)."""
        self.checks += 1
        if node.state[frame] == int(FrameState.FREE):
            self._fail(
                f"double-free on node {node.node_id}: frame {frame} "
                "is already FREE"
            )

    def on_free_huge_region(self, node: "NodeMemory", region: int) -> None:
        """A whole huge region is about to be freed."""
        self.checks += 1
        frames = node.region_frames(region)
        states = node.state[frames]
        if (states == int(FrameState.FREE)).all():
            self._fail(
                f"double-free of huge region {region} on node "
                f"{node.node_id}: all frames already FREE"
            )
        owners = np.unique(node.owner_id[frames])
        if owners.size != 1:
            self._fail(
                f"huge region {region} on node {node.node_id} has mixed "
                f"owners {owners.tolist()}; whole-region free requires a "
                "single owner"
            )
        if np.unique(states).size != 1:
            self._fail(
                f"huge region {region} on node {node.node_id} has mixed "
                f"frame states; it was partially freed or demoted"
            )

    def on_demote_region(self, node: "NodeMemory", region: int) -> None:
        """A huge page split is about to run."""
        self.checks += 1
        frames = node.region_frames(region)
        if not (node.state[frames] == int(FrameState.HUGE)).any():
            self._fail(
                f"demoting region {region} on node {node.node_id} which "
                "contains no HUGE frames"
            )

    def on_migrate_frames(
        self, node: "NodeMemory", old_frames: list, new_frames: np.ndarray
    ) -> None:
        """Compaction is about to migrate ``old_frames`` → ``new_frames``."""
        self.checks += 1
        old = np.asarray(old_frames, dtype=np.int64)
        states = node.state[old]
        immobile = states != int(FrameState.MOVABLE)
        if immobile.any():
            bad = old[immobile][:8]
            names = sorted(
                {FrameState(int(s)).name for s in states[immobile]}
            )
            self._fail(
                f"compaction migrating non-MOVABLE frames {bad.tolist()} "
                f"({'/'.join(names)}) on node {node.node_id}; HUGE pages "
                "must be split and PINNED/NONMOVABLE pages never move"
            )
        targets = np.asarray(new_frames, dtype=np.int64)[: old.size]
        occupied = node.state[targets] != int(FrameState.FREE)
        if occupied.any():
            self._fail(
                f"compaction targeting non-free frames "
                f"{targets[occupied][:8].tolist()} on node {node.node_id}"
            )

    def on_pin_frames(self, node: "NodeMemory", frames: np.ndarray) -> None:
        """Frames are about to be pinned (mlock)."""
        self.checks += 1
        states = node.state[frames]
        ok = (states == int(FrameState.MOVABLE)) | (
            states == int(FrameState.NONMOVABLE)
        )
        if not ok.all():
            bad = np.asarray(frames)[~ok][:8]
            self._fail(
                f"pinning frames {bad.tolist()} on node {node.node_id} "
                "that are not resident base frames (mlock cannot pin "
                "FREE or HUGE frames)"
            )

    # ------------------------------------------------------------------
    # Sweeps (called at phase boundaries — not per allocation)
    # ------------------------------------------------------------------

    def verify_node(self, node: "NodeMemory") -> None:
        """Full consistency sweep over one node's frame map."""
        self.checks += 1
        state = node.state
        owner = node.owner_id
        free = state == int(FrameState.FREE)
        if (owner[free] != -1).any():
            bad = np.flatnonzero(free & (owner != -1))[:8]
            self._fail(
                f"node {node.node_id}: FREE frames {bad.tolist()} still "
                "carry an owner"
            )
        if node.reclaimable[free].any():
            bad = np.flatnonzero(free & node.reclaimable)[:8]
            self._fail(
                f"node {node.node_id}: FREE frames {bad.tolist()} still "
                "flagged reclaimable"
            )
        if (owner[~free] < 0).any():
            bad = np.flatnonzero(~free & (owner < 0))[:8]
            self._fail(
                f"node {node.node_id}: allocated frames {bad.tolist()} "
                "have no owner"
            )
        registered = np.array(sorted(node._owners), dtype=np.int64)
        unknown = ~free & ~np.isin(owner, registered)
        if unknown.any():
            bad = np.flatnonzero(unknown)[:8]
            self._fail(
                f"node {node.node_id}: frames {bad.tolist()} owned by "
                "unregistered owner ids"
            )
        stray = node.reclaimable & (state != int(FrameState.MOVABLE))
        if stray.any():
            bad = np.flatnonzero(stray)[:8]
            self._fail(
                f"node {node.node_id}: non-MOVABLE frames {bad.tolist()} "
                "flagged reclaimable"
            )
        huge = (state == int(FrameState.HUGE)).astype(np.int64)
        huge_counts = np.add.reduceat(huge, node._region_starts)
        fpr = node.frames_per_region
        ragged = (huge_counts != 0) & (huge_counts != fpr)
        if ragged.any():
            bad = np.flatnonzero(ragged)[:8]
            self._fail(
                f"node {node.node_id}: regions {bad.tolist()} are "
                "partially HUGE; huge pages cover whole regions"
            )
        for region in np.flatnonzero(huge_counts == fpr):
            frames = node.region_frames(int(region))
            owners = np.unique(owner[frames])
            if owners.size != 1:
                self._fail(
                    f"node {node.node_id}: HUGE region {int(region)} has "
                    f"mixed owners {owners.tolist()}"
                )

    def verify_vmm(self, vmm: "VirtualMemoryManager") -> None:
        """Cross-check every VMA's page tables against the frame map."""
        self.checks += 1
        node = vmm.node
        seen: dict[int, tuple[int, int]] = {}
        for vma in vmm.vmas:
            self._verify_vma(vmm, vma, seen)
        mapped = sorted(vmm._frame_map)
        if sorted(seen) != mapped:
            missing = sorted(set(seen) - set(mapped))[:8]
            stale = sorted(set(mapped) - set(seen))[:8]
            self._fail(
                f"frame map out of sync on node {node.node_id}: resident "
                f"frames missing from it {missing}, stale entries {stale}"
            )
        for frame in mapped:
            vma, page = vmm._frame_map[frame]
            if int(vma.frame[page]) != frame:
                self._fail(
                    f"frame map entry {frame} -> ({vma.name}, page {page}) "
                    f"disagrees with the VMA's frame {int(vma.frame[page])}"
                )

    def _verify_vma(
        self,
        vmm: "VirtualMemoryManager",
        vma: "Vma",
        seen: dict[int, tuple[int, int]],
    ) -> None:
        node = vmm.node
        if (vma.is_huge & (vma.frame < 0)).any():
            bad = np.flatnonzero(vma.is_huge & (vma.frame < 0))[:8]
            self._fail(
                f"{vma.name}: pages {bad.tolist()} flagged huge but not "
                "resident"
            )
        for chunk in range(vma.nchunks):
            pages = vma.chunk_pages(chunk)
            region = int(vma.huge_region[chunk])
            if region < 0:
                if vma.is_huge[pages].any():
                    self._fail(
                        f"{vma.name} chunk {chunk}: pages flagged huge "
                        "but the chunk has no huge region"
                    )
                continue
            span = node.region_frames(region)
            expected = np.arange(span.start, span.stop, dtype=np.int64)[
                : pages.stop - pages.start
            ]
            if not (vma.frame[pages] == expected).all():
                self._fail(
                    f"{vma.name} chunk {chunk}: page frames do not match "
                    f"huge region {region}'s frames"
                )
            if not vma.is_huge[pages].all():
                self._fail(
                    f"{vma.name} chunk {chunk}: huge-mapped pages not "
                    "all flagged huge"
                )
            pool = vma.pool_regions.get(chunk)
            want_state = FrameState.PINNED if pool is not None else FrameState.HUGE
            want_owner = pool.owner_id if pool is not None else vmm.owner_id
            if not (node.state[span] == int(want_state)).all():
                self._fail(
                    f"{vma.name} chunk {chunk}: region {region} frames "
                    f"are not uniformly {want_state.name}"
                )
            if not (node.owner_id[span] == want_owner).all():
                self._fail(
                    f"{vma.name} chunk {chunk}: region {region} frames "
                    f"not owned by owner {want_owner}"
                )
        resident = np.flatnonzero(vma.frame >= 0)
        base = resident[~vma.is_huge[resident]]
        base_frames = vma.frame[base]
        if base_frames.size:
            states = node.state[base_frames]
            if (states != int(FrameState.MOVABLE)).any():
                bad = base_frames[states != int(FrameState.MOVABLE)][:8]
                self._fail(
                    f"{vma.name}: base-mapped frames {bad.tolist()} are "
                    "not MOVABLE"
                )
            owners = node.owner_id[base_frames]
            if (owners != vmm.owner_id).any():
                bad = base_frames[owners != vmm.owner_id][:8]
                self._fail(
                    f"{vma.name}: base-mapped frames {bad.tolist()} not "
                    f"owned by the VMM (owner {vmm.owner_id})"
                )
        for page in resident:
            frame = int(vma.frame[page])
            if frame in seen:
                other = seen[frame]
                self._fail(
                    f"frame {frame} mapped twice: by vma {other[0]} page "
                    f"{other[1]} and by {vma.name} page {int(page)}"
                )
            seen[frame] = (vma.vma_id, int(page))

    def verify_page_cache(self, cache: "PageCache") -> None:
        """Cross-check cached files against the frame maps."""
        self.checks += 1
        for name in sorted(cache._files):
            node_id, frames = cache._files[name]
            node = cache._node(node_id)
            arr = np.array(sorted(frames), dtype=np.int64)
            if arr.size == 0:
                continue
            if (node.state[arr] != int(FrameState.MOVABLE)).any():
                self._fail(
                    f"page cache file {name!r}: frames on node {node_id} "
                    "are not MOVABLE"
                )
            if not node.reclaimable[arr].all():
                self._fail(
                    f"page cache file {name!r}: frames on node {node_id} "
                    "lost their reclaimable flag"
                )
            owner = cache._owner_ids[node_id]
            if (node.owner_id[arr] != owner).any():
                self._fail(
                    f"page cache file {name!r}: frames on node {node_id} "
                    "not owned by the cache"
                )
            for frame in arr.tolist():
                if cache._frame_file.get((node_id, frame)) != name:
                    self._fail(
                        f"page cache frame {frame} on node {node_id} "
                        f"missing from the reverse map of {name!r}"
                    )

    def verify_teardown(self, vmm: "VirtualMemoryManager") -> None:
        """Leak check after a process released all its mappings."""
        self.checks += 1
        if vmm.vmas:
            names = [vma.name for vma in vmm.vmas]
            self._fail(f"teardown with live mappings: {names}")
        if vmm._frame_map:
            stale = sorted(vmm._frame_map)[:8]
            self._fail(
                f"teardown leak: frame map still holds {len(vmm._frame_map)} "
                f"entries (e.g. {stale})"
            )
        leaked = np.flatnonzero(vmm.node.owner_id == vmm.owner_id)
        if leaked.size:
            self._fail(
                f"teardown leak: {leaked.size} frame(s) on node "
                f"{vmm.node.node_id} still owned by the released process "
                f"(e.g. {leaked[:8].tolist()})"
            )

    # ------------------------------------------------------------------
    # THP engine hooks
    # ------------------------------------------------------------------

    def verify_promotion(self, vma: "Vma", chunk: int) -> None:
        """Preconditions of a khugepaged collapse of ``chunk``."""
        self.checks += 1
        if int(vma.huge_region[chunk]) >= 0:
            self._fail(
                f"promoting {vma.name} chunk {chunk} which is already "
                "huge-mapped"
            )
        pages = vma.chunk_pages(chunk)
        if (vma.frame[pages] < 0).any():
            self._fail(
                f"promoting {vma.name} chunk {chunk} with non-resident "
                "pages; collapse requires a fully resident chunk"
            )

    def verify_demotion(self, vma: "Vma", chunk: int) -> None:
        """Preconditions of a huge-page split of ``chunk``."""
        self.checks += 1
        if int(vma.huge_region[chunk]) < 0:
            self._fail(
                f"demoting {vma.name} chunk {chunk} which is not "
                "huge-mapped"
            )


class NullSanitizer(MemSanitizer):
    """A sanitizer whose hooks are no-ops.

    Used by the overhead benchmark to measure pure dispatch cost (the
    ``is not None`` guards plus a method call) separately from the cost
    of the checks themselves.
    """

    def __getattribute__(self, name: str):
        if name.startswith(("on_", "verify_")):
            return _noop
        return object.__getattribute__(self, name)


def _noop(*args, **kwargs) -> None:
    return None
