"""The remote worker agent behind ``repro work``.

A worker connects to a coordinator (``--connect``), pulls leased cells,
simulates them through the same ``_execute_cell`` path every other
execution mode uses, and streams results back with integrity hashes.
Its durability story is deliberately boring:

- every leased cell is journaled locally (``begin`` before execution,
  the result after) in the worker's own journal **shard** — so a
  partition that eats the completion stream loses nothing; ``repro runs
  merge`` unions the shards afterwards;
- the completion POST uses the client's bounded retry loop; if the
  coordinator stays unreachable the worker just moves on — the shard
  carries the result, and re-leasing plus fingerprint dedupe keep the
  merged journal exactly-once;
- before running a cell the worker rebuilds a runner from the shipped
  settings and **re-derives the spec fingerprint**; a mismatch is
  reported (the coordinator runs the cell locally) rather than
  executed — a worker must never journal a result under a fingerprint
  its own configuration would not produce.

Deterministic adversity: ``--chaos`` accepts the standard plan grammar.
``kill-worker:cell:N`` makes the worker SIGKILL itself mid-cell on its
N-th dispatch (after the ``begin`` record, like a real crash);
``drop``/``delay``/``sever`` actions route the worker's socket
operations through :class:`~repro.dist.netchaos.NetChaos`.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Optional

from ..chaos.plan import ChaosPlan
from ..errors import ReproError
from ..runstate.journal import RunJournal
from ..runstate.serialize import (
    canonical_json,
    encode_result,
    integrity_hash,
)
from ..serve.client import SweepClient
from .config import parse_connect
from .netchaos import ChaosClient, NetChaos


@dataclass
class WorkerConfig:
    """Settings for one ``repro work`` agent."""

    connect: str
    journal_path: str
    worker_id: str = ""
    poll_interval: float = 0.2
    idle_exit_seconds: float = 30.0
    max_attempts: int = 4
    timeout: float = 120.0
    plan: Optional[ChaosPlan] = None
    net_delay_seconds: float = 0.5
    log: Any = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.worker_id:
            self.worker_id = f"w{os.getpid()}"


def _jitter_seed(worker_id: str) -> int:
    """Deterministic per-worker backoff-jitter seed (crc32, not
    ``hash()`` — string hashing is randomized per process)."""
    return zlib.crc32(worker_id.encode("utf-8")) & 0xFFFF


def make_client(config: WorkerConfig) -> SweepClient:
    """Build the worker's client, chaos-wrapped when a plan is armed."""
    socket_path, host, port = parse_connect(config.connect)
    chaos: Optional[NetChaos] = None
    if config.plan is not None:
        chaos = NetChaos(
            config.plan, delay_seconds=config.net_delay_seconds
        )
    if chaos is not None:
        return ChaosClient(
            socket_path=socket_path, host=host or "127.0.0.1",
            port=port or 7351, timeout=config.timeout, chaos=chaos,
        )
    return SweepClient(
        socket_path=socket_path, host=host or "127.0.0.1",
        port=port or 7351, timeout=config.timeout,
    )


def _build_runner(settings: dict[str, Any]):
    from ..config import get_profile
    from ..experiments.harness import ExperimentRunner
    from ..experiments.runconfig import RunConfig
    from ..faults.spec import FaultPlan

    plan = None
    if settings.get("faults"):
        plan = FaultPlan.parse(
            settings["faults"], seed=int(settings.get("fault_seed", 0))
        )
    return ExperimentRunner(
        config=get_profile(settings["profile"]),
        run_config=RunConfig(
            retries=settings["retries"],
            cell_budget=settings["cell_budget"],
            cell_cycles=settings["cell_cycles"],
            cell_deadline_seconds=settings["cell_deadline_seconds"],
            faults=plan,
        ),
        pagerank_iterations=settings["pagerank_iterations"],
    )


class _Heartbeat:
    """Renews one lease on a daemon thread until stopped.

    A renewal is a single-shot request — a missed one *is* the signal
    the lease protocol exists to detect, so there is nothing to retry.
    """

    def __init__(
        self, client: SweepClient, worker_id: str, lease_id: str,
        interval: float,
    ) -> None:
        self._client = client
        self._worker_id = worker_id
        self._lease_id = lease_id
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._client.request(
                    "POST", "/v1/dist/renew",
                    {
                        "lease_id": self._lease_id,
                        "worker": self._worker_id,
                    },
                )
            except (OSError, ReproError):
                # Unreachable coordinator: the lease will expire and the
                # cell will be re-leased; our local journal still wins
                # exactly-once through merge dedupe.
                pass


def work_loop(config: WorkerConfig) -> int:
    """Pull-execute-report until the coordinator says done (or goes
    away for ``idle_exit_seconds``).  Returns a process exit code."""
    log = config.log or (lambda _message: None)
    client = make_client(config)
    journal = RunJournal(config.journal_path, lock=True)
    runners: dict[str, Any] = {}
    dispatch = 0
    last_contact = time.monotonic()  # repro: noqa REP001 — liveness horizon
    try:
        while True:
            try:
                response = client.request_with_retry(
                    "POST", "/v1/dist/lease",
                    {"worker": config.worker_id},
                    max_attempts=config.max_attempts,
                    backoff_base=config.poll_interval / 2,
                    seed=_jitter_seed(config.worker_id),
                )
            except OSError:
                now = time.monotonic()  # repro: noqa REP001 — liveness horizon
                if now - last_contact > config.idle_exit_seconds:
                    log("coordinator unreachable; exiting")
                    return 0
                time.sleep(config.poll_interval)
                continue
            last_contact = time.monotonic()  # repro: noqa REP001 — liveness horizon
            body = response.body if isinstance(response.body, dict) else {}
            if not response.ok:
                time.sleep(config.poll_interval)
                continue
            if body.get("done"):
                log("coordinator drained; exiting")
                return 0
            task = body.get("task")
            if not task:
                time.sleep(
                    float(body.get("retry_after") or config.poll_interval)
                )
                continue
            dispatch += 1
            _run_task(config, client, journal, runners, task, dispatch, log)
    finally:
        journal.close()


def _run_task(
    config: WorkerConfig,
    client: SweepClient,
    journal: RunJournal,
    runners: dict[str, Any],
    task: dict[str, Any],
    dispatch: int,
    log: Any,
) -> None:
    from ..experiments.parse import parse_policy, parse_scenario

    settings = task["settings"]
    key = canonical_json(settings)
    runner = runners.get(key)
    if runner is None:
        runner = runners[key] = _build_runner(settings)
    policy = parse_policy(task["policy"])
    scenario = parse_scenario(task["scenario"])
    spec = runner.cell_spec(
        task["workload"], task["dataset"], policy, scenario
    )
    if spec != task["spec"]:
        log(f"spec mismatch for {task['workload']}/{task['dataset']}: "
            f"ours {spec} != leased {task['spec']}; refusing")
        _post_safely(client, config, {
            "worker": config.worker_id,
            "lease_id": task.get("lease_id"),
            "spec": task["spec"],
            "mismatch": True,
        })
        return
    coords = dict(task.get("cell") or {})
    journal.begin(spec, coords)
    if config.plan is not None and config.plan.kill_worker_at(dispatch):
        # Deterministic chaos: die mid-cell after the begin record, the
        # same semantics the sweep service's pool workers honor.
        os.kill(os.getpid(), signal.SIGKILL)
    interval = max(0.05, float(task.get("lease_seconds", 5.0)) / 3.0)
    heartbeat = _Heartbeat(
        client, config.worker_id, str(task.get("lease_id")), interval
    ).start()
    try:
        outcome = runner._execute_cell(
            task["workload"], task["dataset"], policy, scenario
        )
    finally:
        heartbeat.stop()
    journal.record_result(spec, coords, outcome)
    payload = encode_result(outcome)
    _post_safely(client, config, {
        "worker": config.worker_id,
        "lease_id": task.get("lease_id"),
        "spec": spec,
        "payload": payload,
        "integrity": integrity_hash(payload),
    })
    log(f"completed {spec} ({coords.get('workload')}/"
        f"{coords.get('dataset')})")


def _post_safely(
    client: SweepClient, config: WorkerConfig, body: dict[str, Any]
) -> None:
    """POST a completion with bounded retry; a coordinator that stays
    unreachable is not an error — the journal shard carries the result
    and ``repro runs merge`` recovers it."""
    try:
        client.request_with_retry(
            "POST", "/v1/dist/complete", body,
            max_attempts=config.max_attempts,
            backoff_base=config.poll_interval / 2,
            seed=_jitter_seed(config.worker_id),
        )
    except OSError:
        pass
