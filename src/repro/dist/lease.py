"""Per-cell leases: the coordinator's exactly-once dispatch ledger.

A :class:`LeaseTable` is a plain single-threaded data structure — the
coordinator touches it only from its event loop, so it needs no locks
and every timing input is an injected ``now`` (tests drive it with a
fake clock; the coordinator passes ``loop.time()``).

Lifecycle of one cell::

    pending --lease()--> active --complete()--> completed
       ^                   |
       '---expire(now)-----'        (attempts capped; the coordinator
                                     claims exhausted cells local)

Invariants the table maintains:

- a spec is in exactly one of ``pending`` / active / ``completed`` /
  ``local`` at any time — an expired lease re-queues its spec, it
  never duplicates it;
- :meth:`complete` is keyed by **spec**, not lease id, and is
  first-write-wins: a result streamed after the lease expired (the
  worker was slow, not dead) still lands, and a second result for the
  same spec reports ``duplicate`` instead of overwriting — the
  journal-facing exactly-once guarantee;
- attempts only grow; a re-leased cell carries its attempt number so
  observers can distinguish grant #1 from a post-expiry re-grant.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional


@dataclass
class Lease:
    """One live grant of one cell to one worker."""

    lease_id: str
    spec: str
    worker: str
    deadline: float
    attempt: int
    task: dict


class LeaseTable:
    """See module docstring.  Single-threaded; clock injected."""

    def __init__(
        self,
        tasks: dict[str, dict],
        lease_seconds: float,
        max_attempts: int,
    ) -> None:
        self.tasks = dict(tasks)
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self.pending: deque[str] = deque(sorted(tasks))
        self.active: dict[str, Lease] = {}
        self._lease_by_spec: dict[str, str] = {}
        self.attempts: dict[str, int] = {spec: 0 for spec in tasks}
        self.completed: set[str] = set()
        self.local: set[str] = set()
        self._next_id = 0

    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return len(self.completed) == len(self.tasks)

    @property
    def remote_remaining(self) -> int:
        """Cells still owed to remote workers (pending or leased)."""
        return len(self.pending) + len(self.active)

    def lease(self, worker: str, now: float) -> Optional[Lease]:
        """Grant the next pending cell to ``worker``; None when idle."""
        while self.pending:
            spec = self.pending.popleft()
            if spec in self.completed or spec in self.local:
                continue
            self._next_id += 1
            self.attempts[spec] += 1
            lease = Lease(
                lease_id=f"l{self._next_id}",
                spec=spec,
                worker=worker,
                deadline=now + self.lease_seconds,
                attempt=self.attempts[spec],
                task=self.tasks[spec],
            )
            self.active[lease.lease_id] = lease
            self._lease_by_spec[spec] = lease.lease_id
            return lease
        return None

    def renew(self, lease_id: str, now: float) -> Optional[Lease]:
        """Extend a live lease's deadline; None when it is not live
        (expired and re-queued, completed, or never granted)."""
        lease = self.active.get(lease_id)
        if lease is None:
            return None
        lease.deadline = now + self.lease_seconds
        return lease

    def expire(self, now: float) -> list[Lease]:
        """Drop every lease past its deadline, re-queueing each spec.

        Returns the expired leases (the caller emits events and checks
        each spec's attempt count against ``max_attempts``).
        """
        expired = [
            lease for lease in self.active.values()
            if lease.deadline <= now
        ]
        for lease in expired:
            self._drop_lease(lease)
            if (
                lease.spec not in self.completed
                and lease.spec not in self.local
            ):
                self.pending.append(lease.spec)
        return expired

    def exhausted(self, spec: str) -> bool:
        """Whether re-leasing ``spec`` again would exceed the cap."""
        return self.attempts.get(spec, 0) >= self.max_attempts

    def complete(self, spec: str) -> bool:
        """Mark ``spec`` completed (first-write-wins).

        Returns True on the first completion, False when the spec was
        already completed (the caller reports a duplicate or conflict
        after comparing payloads).
        """
        if spec not in self.tasks:
            raise KeyError(spec)
        if spec in self.completed:
            return False
        self.completed.add(spec)
        self.local.discard(spec)
        self._unqueue(spec)
        lease_id = self._lease_by_spec.get(spec)
        if lease_id is not None and lease_id in self.active:
            self._drop_lease(self.active[lease_id])
        return True

    def claim_local(self, spec: str) -> bool:
        """Take ``spec`` away from remote dispatch (local execution
        owns it now).  Returns False when it is already completed or
        already claimed."""
        if spec in self.completed or spec in self.local:
            return False
        self.local.add(spec)
        self._unqueue(spec)
        lease_id = self._lease_by_spec.get(spec)
        if lease_id is not None and lease_id in self.active:
            self._drop_lease(self.active[lease_id])
        return True

    def remote_specs(self) -> Iterable[str]:
        """Every cell still owed to remote dispatch (pending or
        leased), in sorted order — the degradation path walks this and
        claims each via :meth:`claim_local`."""
        remote = set(self.pending) | {
            lease.spec for lease in self.active.values()
        }
        return sorted(remote)

    # ------------------------------------------------------------------

    def _unqueue(self, spec: str) -> None:
        # A spec completed (or claimed local) while re-queued — e.g. a
        # late result streamed after its lease expired — must stop
        # counting as remote work, or remote_remaining would hold the
        # batch in remote mode (and the degrade sweep would churn) over
        # cells that are already settled.
        try:
            self.pending.remove(spec)
        except ValueError:
            pass

    def _drop_lease(self, lease: Lease) -> None:
        self.active.pop(lease.lease_id, None)
        if self._lease_by_spec.get(lease.spec) == lease.lease_id:
            self._lease_by_spec.pop(lease.spec, None)
