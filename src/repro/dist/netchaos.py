"""Deterministic network faults for the distributed sweep layer.

The chaos plan grammar (:mod:`repro.chaos.plan`) gains four network
points — ``net.connect``, ``net.send``, ``net.recv``,
``net.partition`` — and this module fires them from inside the client:
:class:`ChaosClient` wraps :class:`~repro.serve.client.SweepClient`'s
three socket seams and consults a :class:`NetChaos` schedule before
each real operation.

Determinism: every decision is a counted ordinal, never a random draw.
``drop``/``delay`` count per point (the 3rd ``net.send`` is the 3rd
``net.send`` whatever else happened); ``sever`` counts across all
points and is a threshold — once the partition starts, every later
operation fails, and it never heals.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from ..chaos.plan import (
    ChaosPlan,
    NET_POINTS,
    POINT_NET_CONNECT,
    POINT_NET_RECV,
    POINT_NET_SEND,
)
from ..serve.client import SweepClient


class NetFaultError(ConnectionError):
    """An injected network fault (dropped or severed operation).

    Subclasses ``ConnectionError`` so the bounded retry loop and the
    worker's partition handling treat injected faults exactly like the
    real transport failures they model.
    """


Listener = Callable[..., None]


class NetChaos:
    """Counted network-fault schedule shared by one client's sockets.

    Args:
        plan: the parsed chaos plan (only ``drop``/``delay``/``sever``
            actions are consulted; other actions are ignored).
        delay_seconds: stall applied when a ``delay`` ordinal matches.
        listener: optional ``listener(name, point=..., ordinal=...)``
            called once per fired fault (``net.drop`` / ``net.delay`` /
            ``net.sever`` events).
    """

    def __init__(
        self,
        plan: ChaosPlan,
        delay_seconds: float = 0.5,
        listener: Optional[Listener] = None,
    ) -> None:
        self.plan = plan
        self.delay_seconds = delay_seconds
        self.listener = listener
        self.point_counts: dict[str, int] = {
            point: 0 for point in NET_POINTS
        }
        self.ops = 0
        self.fired: list[tuple[str, str, int]] = []

    def _fire(self, action: str, point: str, ordinal: int) -> None:
        self.fired.append((action, point, ordinal))
        listener = self.listener
        if listener is not None:
            listener(f"net.{action}", point=point, ordinal=ordinal)

    def check(self, point: str) -> None:
        """Account one operation at ``point``; raise/stall per plan."""
        self.ops += 1
        self.point_counts[point] = self.point_counts.get(point, 0) + 1
        if self.plan.severed_at(self.ops):
            self._fire("sever", point, self.ops)
            raise NetFaultError(
                f"injected partition at op {self.ops} ({point})"
            )
        ordinal = self.point_counts[point]
        if self.plan.drop_at(point, ordinal):
            self._fire("drop", point, ordinal)
            raise NetFaultError(
                f"injected drop at {point} #{ordinal}"
            )
        if self.plan.delay_at(point, ordinal):
            self._fire("delay", point, ordinal)
            time.sleep(self.delay_seconds)


class ChaosClient(SweepClient):
    """A :class:`SweepClient` whose socket operations pass through a
    :class:`NetChaos` schedule — the deterministic stand-in for a flaky
    or partitioned network."""

    def __init__(self, *args: Any, chaos: NetChaos, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.chaos = chaos

    def _connect(self):
        self.chaos.check(POINT_NET_CONNECT)
        return super()._connect()

    def _send(self, sock, data: bytes) -> None:
        self.chaos.check(POINT_NET_SEND)
        super()._send(sock, data)

    def _recv(self, sock, limit: int) -> bytes:
        self.chaos.check(POINT_NET_RECV)
        return super()._recv(sock, limit)
