"""Cell ↔ wire encoding for the distributed sweep layer.

Policies are dataclasses carrying factory closures — they do not ride
JSON.  The sweep service solved this by shipping cells as *spec
strings* (:mod:`repro.experiments.parse`), and the distributed layer
does the same, with one extra guarantee: a cell is only dispatched
remotely when a candidate ``(policy_string, scenario_string)`` pair
**round-trips to the identical spec fingerprint** on the coordinator's
own runner.  A cell the grammar cannot express (say a policy built
programmatically with a custom manager) is not approximated — it is
executed locally, and the journal never sees a fingerprint the wire
form would not reproduce.

Workers repeat the verification on their side
(:mod:`repro.dist.worker`): reconstruct the runner from the shipped
settings, parse the strings, recompute the fingerprint, and refuse the
lease on mismatch.  Fingerprint equality end-to-end is what makes the
journal's spec-fingerprint dedupe a sound idempotency key.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ReproError
from ..experiments.parse import parse_policy, parse_scenario


def _policy_candidates(policy: Any) -> list[str]:
    from ..experiments.policies import POLICIES

    candidates = []
    for key, registered in POLICIES.items():
        if registered is policy or registered.name == policy.name:
            candidates.append(key)
    # Parameterized selective policies: derive selective:<s>[:<reorder>]
    # from the placement plan.  Candidates are only *candidates* — the
    # fingerprint round-trip in encode_cell discards wrong guesses.
    fractions = dict(getattr(policy.plan, "advise_fractions", {}) or {})
    if len(fractions) == 1:
        (fraction,) = fractions.values()
        reorder = policy.plan.reorder
        candidates.append(f"selective:{fraction:g}:{reorder}")
        candidates.append(f"selective:{fraction:g}")
    candidates.append(policy.name)
    return list(dict.fromkeys(candidates))


def _scenario_candidates(scenario: Any) -> list[str]:
    from ..experiments.scenarios import SCENARIOS

    candidates = [
        key for key, registered in SCENARIOS.items()
        if registered == scenario
    ]
    pressure = scenario.pressure_gb
    if scenario.frag_level:
        tail = f":{pressure:g}" if pressure is not None else ""
        candidates.append(f"fragmented:{scenario.frag_level:g}{tail}")
    elif pressure is not None and pressure > 0:
        candidates.append(f"constrained:{pressure:g}")
    candidates.append(scenario.name)
    return list(dict.fromkeys(candidates))


def encode_cell(runner: Any, cell: tuple) -> Optional[dict[str, Any]]:
    """Encode one cell as a wire task, or ``None`` when inexpressible.

    The returned task carries the cell coordinates as grammar strings
    plus the spec fingerprint the strings were verified against::

        {"workload": ..., "dataset": ..., "policy": ..., "scenario":
         ..., "spec": ..., "cell": {coords}}

    ``None`` means no candidate string pair reproduced the cell's
    fingerprint on ``runner`` — the caller must run the cell locally.
    """
    workload, dataset, policy, scenario = cell
    target = runner.cell_spec(workload, dataset, policy, scenario)
    for policy_text in _policy_candidates(policy):
        try:
            parsed_policy = parse_policy(policy_text)
        except ReproError:
            continue
        for scenario_text in _scenario_candidates(scenario):
            try:
                parsed_scenario = parse_scenario(scenario_text)
            except ReproError:
                continue
            if runner.cell_spec(
                workload, dataset, parsed_policy, parsed_scenario
            ) == target:
                return {
                    "workload": workload,
                    "dataset": dataset,
                    "policy": policy_text,
                    "scenario": scenario_text,
                    "spec": target,
                    "cell": {
                        "workload": workload,
                        "dataset": dataset,
                        "policy": policy.name,
                        "scenario": scenario.name,
                    },
                }
    return None
