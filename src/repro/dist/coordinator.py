"""The sweep coordinator: leased remote dispatch with local fallback.

:class:`DistCoordinator` shards one figure batch across pull-based
remote workers (``repro work``) while the figure process keeps sole
ownership of the journal and the figure pipeline:

- **Event-loop-in-a-thread.**  The coordinator runs a private asyncio
  loop on a daemon thread; every piece of mutable state (lease table,
  payloads, mode) is touched only from that loop, so the layer needs no
  locks at all.  The figure thread talks to it through exactly one
  bridge — :meth:`execute_batch` submits a coroutine and blocks on its
  future, which is also what serializes batches.
- **Leases, not assignments.**  Workers pull cells as deadline-bounded
  leases and renew them by heartbeat.  A partitioned or dead worker's
  lease expires and the cell is re-queued — never lost.  Results are
  accepted **by spec fingerprint, first-write-wins**: a late result
  from an expired lease still lands once, a second identical result is
  a ``dist.duplicate``, and a *divergent* second result is a
  ``dist.conflict`` (HTTP 409) that keeps the first — journal dedupe by
  fingerprint is the idempotency key, and the journal itself is only
  written once per spec, in spec order, by the figure process's
  deterministic merge.
- **Graceful degradation to local.**  Cells the wire grammar cannot
  express, cells whose lease-attempt budget is exhausted, and — after
  ``local_grace_seconds`` without any worker contact — the whole batch,
  all run locally in the coordinator process.  The ``remote → local``
  mode switch is one-way, like the sweep service's degradation ladder:
  a batch never flaps between dispatch strategies.

Integrity: every streamed result carries
:func:`~repro.runstate.serialize.integrity_hash` over its payload; a
mismatch is rejected (HTTP 400) before it can reach the journal.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
from collections import deque
from typing import Any, Optional, Sequence

from ..errors import DistError
from ..obs.events import validate_events
from ..obs.tracer import Tracer
from ..runstate.serialize import (
    canonical_json,
    decode_result,
    encode_result,
    integrity_hash,
)
from ..serve.server import _read_request, _render_response
from ..serve.service import Response
from .config import DistConfig
from .lease import LeaseTable
from .wire import encode_cell

MODE_REMOTE = "remote"
MODE_LOCAL = "local"


class _Batch:
    """Loop-owned state of one in-flight ``execute_batch`` call."""

    def __init__(self, table: LeaseTable, spec_order: list[str],
                 cells_by_spec: dict[str, tuple]) -> None:
        self.table = table
        self.spec_order = spec_order
        self.cells_by_spec = cells_by_spec
        self.done_event = asyncio.Event()
        self.error: Optional[BaseException] = None


class DistCoordinator:
    """See module docstring.

    Args:
        runner: the figure's :class:`~repro.experiments.harness
            .ExperimentRunner`; the coordinator never journals through
            it — it only computes fingerprints and runs local-fallback
            cells via ``_execute_cell`` (cache- and journal-free).
        config: a :class:`~repro.dist.config.DistConfig`.
    """

    def __init__(self, runner: Any, config: DistConfig) -> None:
        self.runner = runner
        self.config = config
        self.mode = MODE_REMOTE
        self.events: deque[dict[str, Any]] = deque(maxlen=512)
        self._logical = 0
        self.tracer = Tracer(clock=lambda: self._logical)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._batch: Optional[_Batch] = None
        self._payloads: dict[str, dict] = {}
        self._settings: Optional[dict[str, Any]] = None
        self._workers_seen: set[str] = set()
        self._last_contact = 0.0
        self._draining = False
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="dist-local"
        )

    # ------------------------------------------------------------------
    # Lifecycle (called from the figure thread)
    # ------------------------------------------------------------------

    def start(self, timeout: float = 10.0) -> "DistCoordinator":
        """Bind the listening socket and start the loop thread."""
        self._thread = threading.Thread(
            target=self._thread_main, name="dist-coordinator", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise DistError("coordinator did not start in time")
        if self._startup_error is not None:
            raise DistError(
                f"coordinator failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        """Stop serving and join the loop thread."""
        loop = self._loop
        if loop is not None and loop.is_running():
            try:
                asyncio.run_coroutine_threadsafe(
                    self._request_stop(), loop
                ).result(timeout=10.0)
            except (concurrent.futures.TimeoutError, RuntimeError):
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._executor.shutdown(wait=True)

    def drain(self) -> None:
        """Tell pulling workers the sweep is over (`{"done": true}`)."""
        loop = self._loop
        if loop is not None and loop.is_running():
            asyncio.run_coroutine_threadsafe(
                self._set_draining(), loop
            ).result(timeout=10.0)

    def execute_batch(self, cells: Sequence[tuple]) -> list[Any]:
        """Run a batch of cells, returning results aligned with
        ``cells`` — the runner's ``dist_executor`` hook.

        Blocks the calling (figure) thread until every cell has a
        result, however it was obtained (remote lease or local
        fallback).
        """
        cells = list(cells)
        if not cells:
            return []
        loop = self._loop
        if loop is None or not loop.is_running():
            raise DistError("coordinator is not running")
        future = asyncio.run_coroutine_threadsafe(
            self._execute_batch(cells), loop
        )
        return future.result()

    def drain_events(self) -> list[dict[str, Any]]:
        """The coordinator's ``dist.*`` event log so far (copy)."""
        return list(self.events)

    # ------------------------------------------------------------------
    # Loop thread
    # ------------------------------------------------------------------

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as error:
            self._startup_error = error
            self._ready.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._last_contact = self._loop.time()
        if self.config.socket_path:
            server = await asyncio.start_unix_server(
                self._handle, path=self.config.socket_path
            )
        else:
            server = await asyncio.start_server(
                self._handle, host=self.config.host, port=self.config.port
            )
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()

    async def _request_stop(self) -> None:
        assert self._stop_event is not None
        self._stop_event.set()

    async def _set_draining(self) -> None:
        self._draining = True

    def _emit(self, name: str, **fields: Any) -> None:
        self._logical += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(name, **fields)
            self.events.extend(tracer.drain())

    def _touch(self) -> None:
        assert self._loop is not None
        self._last_contact = self._loop.time()

    def _set_mode(self, to_mode: str, reason: str) -> None:
        if self.mode == to_mode:
            return
        self._emit(
            "dist.mode", from_mode=self.mode, to_mode=to_mode,
            reason=reason,
        )
        self.mode = to_mode

    # ------------------------------------------------------------------
    # Batch execution (loop thread)
    # ------------------------------------------------------------------

    async def _execute_batch(self, cells: list[tuple]) -> list[Any]:
        if self._batch is not None:
            raise DistError("a batch is already executing")
        runner = self.runner
        if self._settings is None:
            self._settings = self.config.worker_settings(runner)
        spec_order: list[str] = []
        cells_by_spec: dict[str, tuple] = {}
        tasks: dict[str, dict] = {}
        inexpressible: list[str] = []
        for cell in cells:
            spec = runner.cell_spec(*cell)
            spec_order.append(spec)
            if spec in cells_by_spec:
                continue
            cells_by_spec[spec] = cell
            task = encode_cell(runner, cell)
            if task is None:
                tasks[spec] = {}
                inexpressible.append(spec)
            else:
                tasks[spec] = task
        table = LeaseTable(
            tasks,
            lease_seconds=self.config.lease_seconds,
            max_attempts=self.config.max_lease_attempts,
        )
        batch = _Batch(table, spec_order, cells_by_spec)
        self._batch = batch
        self._touch()
        scan = asyncio.ensure_future(self._scan_loop(batch))
        try:
            for spec in inexpressible:
                self._start_local(batch, spec, "not-wire-expressible")
            if self.mode == MODE_LOCAL:
                for spec in list(table.remote_specs()):
                    self._start_local(batch, spec, "coordinator-local-mode")
            self._check_done(batch)
            await batch.done_event.wait()
        finally:
            scan.cancel()
            self._batch = None
        if batch.error is not None:
            raise batch.error
        return [
            decode_result(self._payloads[spec]) for spec in spec_order
        ]

    async def _scan_loop(self, batch: _Batch) -> None:
        interval = max(0.02, min(0.25, self.config.lease_seconds / 4))
        while True:
            await asyncio.sleep(interval)
            assert self._loop is not None
            now = self._loop.time()
            for lease in batch.table.expire(now):
                self._emit(
                    "dist.lease.expire", spec=lease.spec,
                    worker=lease.worker, attempt=lease.attempt,
                )
                if (
                    lease.spec not in batch.table.completed
                    and batch.table.exhausted(lease.spec)
                ):
                    self._start_local(batch, lease.spec, "lease-exhausted")
            if (
                self.mode == MODE_REMOTE
                and batch.table.remote_remaining
                and now - self._last_contact
                > self.config.local_grace_seconds
            ):
                self._set_mode(MODE_LOCAL, "no-worker-contact")
                for spec in list(batch.table.remote_specs()):
                    self._start_local(batch, spec, "no-worker-contact")

    def _start_local(self, batch: _Batch, spec: str, reason: str) -> None:
        if not batch.table.claim_local(spec):
            return
        self._emit("dist.local", spec=spec, reason=reason)
        asyncio.ensure_future(self._run_local(batch, spec))

    async def _run_local(self, batch: _Batch, spec: str) -> None:
        assert self._loop is not None
        cell = batch.cells_by_spec[spec]
        try:
            payload = await self._loop.run_in_executor(
                self._executor, self._execute_local, cell
            )
        except BaseException as error:
            batch.error = error
            batch.done_event.set()
            return
        self._accept(batch, spec, "local", payload)

    def _execute_local(self, cell: tuple) -> dict:
        # Runs on the single-thread executor — the only thread that
        # touches the runner while a batch is in flight (the figure
        # thread is blocked in execute_batch, the loop thread only
        # computes pure fingerprints).
        outcome = self.runner._execute_cell(*cell)
        return encode_result(outcome)

    def _accept(
        self, batch: _Batch, spec: str, worker: str, payload: dict
    ) -> str:
        if not batch.table.complete(spec):
            existing = self._payloads.get(spec)
            if existing is not None and (
                canonical_json(existing) == canonical_json(payload)
            ):
                self._emit("dist.duplicate", spec=spec, worker=worker)
                return "duplicate"
            self._emit("dist.conflict", spec=spec, worker=worker)
            return "conflict"
        self._payloads[spec] = payload
        self._emit("dist.result", spec=spec, worker=worker)
        self._check_done(batch)
        return "accepted"

    def _check_done(self, batch: _Batch) -> None:
        if batch.table.done:
            batch.done_event.set()

    # ------------------------------------------------------------------
    # HTTP endpoints (loop thread; same wire format as repro.serve)
    # ------------------------------------------------------------------

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            parsed = await _read_request(reader)
            if parsed is None:
                return
            method, path, body = parsed
            response = self._route(method, path, body)
            writer.write(_render_response(response))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, OSError):
                pass

    def _route(self, method: str, path: str, body: bytes) -> Response:
        if path == "/v1/healthz" and method == "GET":
            return Response(
                status=200, body={"ok": True, "role": "coordinator"}
            )
        if path == "/v1/dist/status" and method == "GET":
            return Response(status=200, body=self._status())
        if path in (
            "/v1/dist/lease", "/v1/dist/renew", "/v1/dist/complete"
        ):
            if method != "POST":
                return Response(
                    status=405, body={"error": "method not allowed"}
                )
            try:
                payload = json.loads(body.decode("utf-8") or "{}")
            except (ValueError, UnicodeDecodeError):
                return Response(
                    status=400, body={"error": "body must be JSON"}
                )
            if not isinstance(payload, dict):
                return Response(
                    status=400, body={"error": "body must be a JSON object"}
                )
            if path == "/v1/dist/lease":
                return self._handle_lease(payload)
            if path == "/v1/dist/renew":
                return self._handle_renew(payload)
            return self._handle_complete(payload)
        return Response(status=404, body={"error": f"no route {path!r}"})

    def _status(self) -> dict[str, Any]:
        batch = self._batch
        events = list(self.events)
        return {
            "role": "coordinator",
            "mode": self.mode,
            "draining": self._draining,
            "pending": len(batch.table.pending) if batch else 0,
            "active": len(batch.table.active) if batch else 0,
            "completed": len(batch.table.completed) if batch else 0,
            "total": len(batch.table.tasks) if batch else 0,
            "workers": sorted(self._workers_seen),
            "events": events,
            "schema_problems": validate_events(events),
        }

    def _handle_lease(self, payload: dict) -> Response:
        worker = str(payload.get("worker") or "anonymous")
        self._workers_seen.add(worker)
        self._touch()
        if self._draining or self.mode == MODE_LOCAL:
            return Response(status=200, body={"done": True})
        batch = self._batch
        idle = Response(
            status=200,
            body={
                "done": False,
                "task": None,
                "retry_after": self.config.poll_retry_after,
            },
        )
        if batch is None:
            return idle
        assert self._loop is not None
        lease = batch.table.lease(
            worker, self._loop.time()
        )
        if lease is None:
            return idle
        self._emit(
            "dist.lease.grant", spec=lease.spec, worker=worker,
            attempt=lease.attempt,
        )
        task = dict(lease.task)
        task.update(
            lease_id=lease.lease_id,
            lease_seconds=self.config.lease_seconds,
            settings=self._settings,
        )
        return Response(status=200, body={"done": False, "task": task})

    def _handle_renew(self, payload: dict) -> Response:
        worker = str(payload.get("worker") or "anonymous")
        lease_id = str(payload.get("lease_id") or "")
        self._touch()
        batch = self._batch
        if batch is None:
            return Response(status=200, body={"ok": False})
        assert self._loop is not None
        lease = batch.table.renew(
            lease_id, self._loop.time()
        )
        if lease is None:
            return Response(status=200, body={"ok": False})
        self._emit("dist.lease.renew", spec=lease.spec, worker=worker)
        return Response(status=200, body={"ok": True})

    def _handle_complete(self, payload: dict) -> Response:
        worker = str(payload.get("worker") or "anonymous")
        spec = str(payload.get("spec") or "")
        self._touch()
        batch = self._batch
        if payload.get("mismatch"):
            # The worker's reconstructed runner computed a different
            # fingerprint: the cell is not reproducible remotely under
            # the shipped settings — run it here instead of re-leasing
            # it into the same mismatch forever.
            if (
                batch is not None
                and spec in batch.table.tasks
                and spec not in batch.table.completed
            ):
                self._start_local(batch, spec, "spec-mismatch")
            return Response(status=200, body={"status": "local"})
        result = payload.get("payload")
        integrity = payload.get("integrity")
        if not isinstance(result, dict) or not spec:
            return Response(
                status=400, body={"error": "malformed completion"}
            )
        if integrity != integrity_hash(result):
            return Response(
                status=400,
                body={"error": "integrity-mismatch", "spec": spec},
            )
        if batch is None or spec not in batch.table.tasks:
            known = self._payloads.get(spec)
            if known is not None:
                if canonical_json(known) == canonical_json(result):
                    self._emit("dist.duplicate", spec=spec, worker=worker)
                    return Response(
                        status=200,
                        body={"status": "duplicate", "spec": spec},
                    )
                self._emit("dist.conflict", spec=spec, worker=worker)
                return Response(
                    status=409, body={"status": "conflict", "spec": spec}
                )
            return Response(
                status=404, body={"error": "unknown-spec", "spec": spec}
            )
        outcome = self._accept(batch, spec, worker, result)
        status = 409 if outcome == "conflict" else 200
        return Response(status=status, body={"status": outcome, "spec": spec})
