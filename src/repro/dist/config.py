"""Configuration for the distributed sweep layer (:mod:`repro.dist`).

One :class:`DistConfig` describes a coordinator: where it listens, how
leases behave, and the execution settings its workers must reproduce so
their spec fingerprints match the coordinator's
(:func:`~repro.runstate.serialize.spec_fingerprint` covers profile,
fault plan, retry and watchdog knobs — a worker built differently would
compute different fingerprints and every cell would degrade to local
execution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..errors import ConfigError


def parse_connect(value: str) -> tuple[Optional[str], str, int]:
    """Parse a ``--connect`` / ``--distribute`` address.

    Returns ``(socket_path, host, port)``: anything containing a slash
    (or ending in ``.sock``) is a UNIX-domain socket path; otherwise
    ``host:port`` or a bare port on loopback.
    """
    value = value.strip()
    if not value:
        raise ConfigError("empty coordinator address")
    if "/" in value or value.endswith(".sock"):
        return value, "", 0
    host, _, port_text = value.rpartition(":")
    if not host:
        host, port_text = "127.0.0.1", value
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ConfigError(
            f"bad coordinator address {value!r}: expected a socket "
            "path or host:port"
        ) from exc
    return None, host, port


@dataclass(frozen=True)
class DistConfig:
    """Immutable settings for one :class:`~repro.dist.DistCoordinator`.

    Attributes:
        socket_path: UNIX-domain socket to listen on (preferred; wins
            over TCP when set).
        host, port: loopback TCP fallback.
        lease_seconds: lease duration; a worker renews at roughly a
            third of this, so one missed heartbeat survives and two do
            not.
        max_lease_attempts: grants per cell before the coordinator
            stops re-leasing it and runs it locally (a cell that kills
            every worker it lands on must not orbit forever).
        local_grace_seconds: with no worker contact for this long while
            work is pending, the coordinator degrades the whole batch
            to local execution — one-way, like the service's ladder.
        poll_retry_after: hint returned to an idle worker when no cell
            is currently leasable.
        faults_text: the CLI fault-plan text (``--faults``) shipped to
            workers verbatim; ``None`` when the sweep runs faultless.
        fault_seed: seed paired with ``faults_text``.
    """

    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 7351
    lease_seconds: float = 5.0
    max_lease_attempts: int = 3
    local_grace_seconds: float = 10.0
    poll_retry_after: float = 0.2
    faults_text: Optional[str] = None
    fault_seed: int = 0

    def __post_init__(self) -> None:
        if self.lease_seconds <= 0:
            raise ConfigError("lease_seconds must be positive")
        if self.max_lease_attempts < 1:
            raise ConfigError("max_lease_attempts must be >= 1")
        if self.local_grace_seconds < 0:
            raise ConfigError("local_grace_seconds must be >= 0")

    def worker_settings(self, runner: Any) -> dict[str, Any]:
        """The JSON-safe execution settings a worker rebuilds its
        runner from — everything that feeds the spec fingerprint."""
        return {
            "profile": runner.config.name,
            "pagerank_iterations": runner.pagerank_iterations,
            "retries": runner.max_retries,
            "cell_budget": runner.cell_budget,
            "cell_cycles": runner.cell_cycles,
            "cell_deadline_seconds": runner.cell_deadline_seconds,
            "faults": self.faults_text,
            "fault_seed": self.fault_seed,
        }
