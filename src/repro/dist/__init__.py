"""Fault-tolerant distributed sweep sharding (``repro.dist``).

The layer above the sweep service that shards one figure sweep across
remote pull-based workers with exactly-once semantics under network
failure:

- :class:`DistCoordinator` — leases cells (deadline-bounded, heartbeat
  renewed), accepts results by spec fingerprint first-write-wins, and
  degrades gracefully to local execution (one-way, like the service's
  ladder) when no worker is reachable;
- :func:`work_loop` / :class:`WorkerConfig` — the ``repro work`` agent:
  pull a lease, verify the fingerprint, journal locally, simulate,
  stream the result back with an integrity hash;
- :class:`NetChaos` / :class:`ChaosClient` — deterministic network
  faults (``drop``/``delay``/``sever`` at counted ordinals) injected at
  the client's socket seams;
- partition-tolerant durability comes from ``repro runs merge``
  (:mod:`repro.runstate.merge`): the union of the coordinator's and the
  workers' journal shards is the sweep's state, conflicts refuse.

See ``docs/service.md`` ("Distributed sweeps") for the topology, the
lease lifecycle, and the failure matrix.
"""

from .config import DistConfig, parse_connect
from .coordinator import DistCoordinator
from .lease import Lease, LeaseTable
from .netchaos import ChaosClient, NetChaos, NetFaultError
from .wire import encode_cell
from .worker import WorkerConfig, make_client, work_loop

__all__ = [
    "ChaosClient",
    "DistConfig",
    "DistCoordinator",
    "Lease",
    "LeaseTable",
    "NetChaos",
    "NetFaultError",
    "WorkerConfig",
    "encode_cell",
    "make_client",
    "parse_connect",
    "work_loop",
]
