"""Byte-size units and human-readable formatting helpers.

The simulator configures memory sizes in bytes everywhere.  These helpers
keep call sites readable (``64 * MiB`` instead of ``67108864``) and render
metric tables with compact size strings.
"""

from __future__ import annotations

KiB = 1024
"""One kibibyte in bytes."""

MiB = 1024 * KiB
"""One mebibyte in bytes."""

GiB = 1024 * MiB
"""One gibibyte in bytes."""


def format_bytes(num_bytes: int | float) -> str:
    """Render a byte count with a binary-prefix unit.

    >>> format_bytes(4096)
    '4.0KiB'
    >>> format_bytes(3 * MiB + 512 * KiB)
    '3.5MiB'
    """
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f}{unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_count(count: int | float) -> str:
    """Render a large count with K/M/B suffixes.

    >>> format_count(1_050_000_000)
    '1.05B'
    >>> format_count(34_000_000)
    '34.0M'
    """
    value = float(count)
    for threshold, suffix in ((1e9, "B"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            digits = f"{value / threshold:.2f}".rstrip("0").rstrip(".")
            return digits + suffix
    return f"{value:g}"


def bytes_to_frames(num_bytes: int, frame_bytes: int) -> int:
    """Frames needed to hold ``num_bytes`` (ceiling division).

    The blessed way to cross the bytes→frames unit boundary; the REP003
    lint flags ad-hoc arithmetic mixing ``*_bytes`` and ``*_frames``
    identifiers that does not go through a helper like this.
    """
    return -(-num_bytes // frame_bytes)


def frames_to_bytes(num_frames: int, frame_bytes: int) -> int:
    """Bytes covered by ``num_frames`` frames of ``frame_bytes`` each."""
    return num_frames * frame_bytes


def bytes_to_pages(num_bytes: int, page_bytes: int) -> int:
    """Pages needed to hold ``num_bytes`` (ceiling division)."""
    return -(-num_bytes // page_bytes)


def pages_to_bytes(num_pages: int, page_bytes: int) -> int:
    """Bytes covered by ``num_pages`` pages of ``page_bytes`` each."""
    return num_pages * page_bytes


def frames_to_regions(num_frames: int, frames_per_region: int) -> int:
    """Huge regions needed to hold ``num_frames`` (ceiling division)."""
    return -(-num_frames // frames_per_region)


def regions_to_frames(num_regions: int, frames_per_region: int) -> int:
    """Frames covered by ``num_regions`` whole huge regions."""
    return num_regions * frames_per_region


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    return (value + alignment - 1) & ~(alignment - 1)
