"""Byte-size units and human-readable formatting helpers.

The simulator configures memory sizes in bytes everywhere.  These helpers
keep call sites readable (``64 * MiB`` instead of ``67108864``) and render
metric tables with compact size strings.
"""

from __future__ import annotations

KiB = 1024
"""One kibibyte in bytes."""

MiB = 1024 * KiB
"""One mebibyte in bytes."""

GiB = 1024 * MiB
"""One gibibyte in bytes."""


def format_bytes(num_bytes: int | float) -> str:
    """Render a byte count with a binary-prefix unit.

    >>> format_bytes(4096)
    '4.0KiB'
    >>> format_bytes(3 * MiB + 512 * KiB)
    '3.5MiB'
    """
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f}{unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_count(count: int | float) -> str:
    """Render a large count with K/M/B suffixes.

    >>> format_count(1_050_000_000)
    '1.05B'
    >>> format_count(34_000_000)
    '34.0M'
    """
    value = float(count)
    for threshold, suffix in ((1e9, "B"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            digits = f"{value / threshold:.2f}".rstrip("0").rstrip(".")
            return digits + suffix
    return f"{value:g}"


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    return (value + alignment - 1) & ~(alignment - 1)
