"""Deterministic, seeded fault injection for the simulated machine.

The paper's central claim is that page-size policy behaviour under
*adverse* memory conditions decides graph-analytics performance; this
package lets experiments probe exactly that by making compaction,
promotion, reclaim, swap I/O and allocation fail on demand — with
deterministic, per-cell-seeded triggers so fault runs are as
reproducible as clean ones.

Usage::

    from repro.faults import FaultPlan
    plan = FaultPlan.parse("compaction:1.0,swap-out:after=3")
    runner = ExperimentRunner(run_config=RunConfig(faults=plan, retries=2))

See ``docs/faults.md`` for the site inventory and the harness's
degradation semantics.
"""

from .injector import FaultInjector
from .sites import SITES_BY_NAME, FaultSite
from .spec import FaultPlan, FaultSpec

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultSite",
    "SITES_BY_NAME",
]
