"""Fault plans: which sites fail, when, and how often.

A :class:`FaultSpec` arms one :class:`~repro.faults.sites.FaultSite`
with exactly one trigger:

- ``probability`` — each evaluation of the site fires independently with
  the given probability (seeded, deterministic);
- ``after_n`` — the site works for its first ``after_n`` evaluations and
  fails on every one after that (wear-out / leak-style degradation);
- ``every_nth`` — every ``every_nth``-th evaluation fails (periodic
  interference).

``max_fires`` optionally caps the number of failures a spec produces —
``max_fires=1`` models a transient glitch that a retry survives.

A :class:`FaultPlan` is an immutable, hashable bundle of specs plus the
RNG seed; the experiment harness keys its cell cache on it, and
:meth:`FaultPlan.make_injector` stamps out a fresh, stateful
:class:`~repro.faults.injector.FaultInjector` per cell so that every
cell sees an identical, independent fault sequence regardless of batch
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..errors import ConfigError
from .sites import SITES_BY_NAME, FaultSite


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault site with exactly one trigger.

    Attributes:
        site: the injection point.
        probability: per-evaluation failure probability in [0, 1].
            0.0 arms the site without ever firing (overhead probes).
        after_n: fail every evaluation after the first ``after_n``.
        every_nth: fail every ``every_nth``-th evaluation.
        max_fires: stop firing after this many failures (None = no cap).
    """

    site: FaultSite
    probability: Optional[float] = None
    after_n: Optional[int] = None
    every_nth: Optional[int] = None
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        triggers = [
            self.probability is not None,
            self.after_n is not None,
            self.every_nth is not None,
        ]
        if sum(triggers) != 1:
            raise ConfigError(
                f"fault spec for {self.site.value!r} needs exactly one "
                "trigger (probability, after_n or every_nth), got "
                f"{sum(triggers)}"
            )
        if self.probability is not None and not (
            0.0 <= self.probability <= 1.0
        ):
            raise ConfigError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.after_n is not None and self.after_n < 0:
            raise ConfigError(f"after_n must be >= 0, got {self.after_n}")
        if self.every_nth is not None and self.every_nth < 1:
            raise ConfigError(f"every_nth must be >= 1, got {self.every_nth}")
        if self.max_fires is not None and self.max_fires < 1:
            raise ConfigError(f"max_fires must be >= 1, got {self.max_fires}")

    @property
    def trigger_label(self) -> str:
        """Compact trigger description for reports (``p=0.5``, ...)."""
        if self.probability is not None:
            label = f"p={self.probability:g}"
        elif self.after_n is not None:
            label = f"after={self.after_n}"
        else:
            label = f"every={self.every_nth}"
        if self.max_fires is not None:
            label += f",max={self.max_fires}"
        return label


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of armed fault sites plus the injection seed.

    Hashable, so the experiment harness can include it in cell cache
    keys: two runners with the same plan and seed produce bit-for-bit
    identical results.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    @property
    def enabled(self) -> bool:
        """Whether any site is armed."""
        return bool(self.specs)

    @property
    def sites(self) -> frozenset[FaultSite]:
        """The set of armed sites."""
        return frozenset(spec.site for spec in self.specs)

    def make_injector(self):
        """A fresh, stateful injector for one experiment cell."""
        from .injector import FaultInjector

        return FaultInjector(self)

    def describe(self) -> str:
        """Human-readable one-liner (``compaction:p=1,swap-out:after=3``)."""
        if not self.specs:
            return "(no faults)"
        return ",".join(
            f"{spec.site.value}:{spec.trigger_label}" for spec in self.specs
        )

    @staticmethod
    def parse(
        text: str | Sequence[str], seed: int = 0
    ) -> "FaultPlan":
        """Parse CLI fault specs into a plan.

        Accepts a comma-separated string or a sequence of tokens, each
        ``site[:trigger][:max=M]`` where *trigger* is a float
        probability (default 1.0), ``after=N`` or ``every=N``::

            compaction:1.0
            swap-out:after=3,alloc:0.01
            promotion:every=4:max=2

        Raises:
            ConfigError: on unknown sites or malformed triggers.
        """
        if isinstance(text, str):
            tokens: Iterable[str] = text.split(",")
        else:
            tokens = [part for item in text for part in item.split(",")]
        specs: list[FaultSpec] = []
        for token in tokens:
            token = token.strip()
            if not token:
                continue
            specs.append(_parse_spec(token))
        return FaultPlan(specs=tuple(specs), seed=seed)


def _parse_spec(token: str) -> FaultSpec:
    parts = token.split(":")
    site = SITES_BY_NAME.get(parts[0])
    if site is None:
        known = ", ".join(sorted(SITES_BY_NAME))
        raise ConfigError(
            f"unknown fault site {parts[0]!r}; known sites: {known}"
        )
    kwargs: dict[str, object] = {}
    trigger_parts = parts[1:]
    for part in trigger_parts:
        try:
            if part.startswith("after="):
                kwargs["after_n"] = int(part[len("after="):])
            elif part.startswith("every="):
                kwargs["every_nth"] = int(part[len("every="):])
            elif part.startswith("max="):
                kwargs["max_fires"] = int(part[len("max="):])
            else:
                kwargs["probability"] = float(part)
        except ValueError:
            raise ConfigError(
                f"malformed fault trigger {part!r} in {token!r}; expected "
                "a probability, after=N, every=N or max=M"
            ) from None
    if not any(k in kwargs for k in ("probability", "after_n", "every_nth")):
        kwargs["probability"] = 1.0
    return FaultSpec(site=site, **kwargs)  # type: ignore[arg-type]
