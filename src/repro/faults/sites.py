"""Named fault-injection sites.

Each member names one place in the simulated memory-management machinery
where an adverse condition can be injected (the operation "fails" by
raising :class:`~repro.errors.InjectedFaultError`).  The sites mirror
the kernel activities the paper identifies as fragile under pressure:
huge-region assembly (compaction), khugepaged promotion, direct reclaim,
and swap I/O.

Site → wiring point:

- ``ALLOC`` — base-frame allocation (:meth:`NodeMemory.alloc_frames`),
- ``COMPACTION`` — huge-region assembly when no pristine region exists
  (:meth:`NodeMemory.alloc_huge_region` falling back to compaction or
  reclaim),
- ``RECLAIM`` — direct reclaim in the fault-storm path
  (:meth:`VirtualMemoryManager._install_base`),
- ``PROMOTION`` — khugepaged collapse of one chunk
  (:meth:`VirtualMemoryManager.promote_chunk`),
- ``DEMOTION`` — huge-page split (:meth:`VirtualMemoryManager
  .demote_chunk`),
- ``KHUGEPAGED`` — the background daemon's scan pass stalling outright
  (:meth:`VirtualMemoryManager.khugepaged_pass`),
- ``SWAP_OUT`` / ``SWAP_IN`` — swap-device I/O
  (:class:`~repro.mem.swap.SwapDevice`),
- ``STAGING`` — staging the input file through the page cache
  (:meth:`PageCache.read_file`),
- ``JOURNAL_WRITE`` / ``JOURNAL_FSYNC`` — the run journal's durable
  append path (:mod:`repro.runstate`): the record write and the fsync
  that makes it durable.  Arming them simulates a crash mid-journal —
  ``journal.write`` tears the record being appended — so the
  crash-safety machinery is itself testable under injection.
"""

from __future__ import annotations

from enum import Enum


class FaultSite(Enum):
    """One named injection point in the simulated machine."""

    ALLOC = "alloc"
    COMPACTION = "compaction"
    RECLAIM = "reclaim"
    PROMOTION = "promotion"
    DEMOTION = "demotion"
    KHUGEPAGED = "khugepaged"
    SWAP_OUT = "swap-out"
    SWAP_IN = "swap-in"
    STAGING = "staging"
    JOURNAL_WRITE = "journal.write"
    JOURNAL_FSYNC = "journal.fsync"

    def __str__(self) -> str:  # used in CellFailure labels / CLI output
        return self.value


SITES_BY_NAME: dict[str, FaultSite] = {site.value: site for site in FaultSite}
"""Lookup used by the CLI's ``--faults site:trigger`` parser."""
