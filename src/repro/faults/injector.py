"""The stateful fault injector.

One :class:`FaultInjector` is created per experiment cell (or per
:class:`~repro.machine.machine.Machine` for direct use) from a
:class:`~repro.faults.spec.FaultPlan`.  Every wired subsystem calls
:meth:`FaultInjector.check` at its injection site; when a spec's trigger
matches, the check raises :class:`~repro.errors.InjectedFaultError`
carrying the site and the fire count.

Determinism:

- each site draws from its **own** RNG, seeded from ``(plan.seed,
  site)``, so the probabilistic sequence at one site is independent of
  how often other sites are evaluated;
- counters persist across retries of the same cell (the harness reuses
  one injector for all attempts), so an ``after_n`` wear-out keeps
  failing on retry while a ``max_fires=1`` glitch is survived;
- the full fire log is recorded, so tests can assert that the same seed
  and plan produce the identical hit sequence.

The disabled path is free: subsystems hold ``injector=None`` by default
and guard every site with a single ``is not None`` test, so simulations
without a fault plan run the exact pre-fault-subsystem hot path.
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import InjectedFaultError
from .sites import FaultSite
from .spec import FaultPlan, FaultSpec


class FaultInjector:
    """Evaluates fault triggers at named sites; raises when one fires."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._specs_by_site: dict[FaultSite, list[int]] = {}
        for index, spec in enumerate(plan.specs):
            self._specs_by_site.setdefault(spec.site, []).append(index)
        self._spec_fires = [0] * len(plan.specs)
        self._rngs = {
            site: random.Random(f"{plan.seed}/{site.value}")
            for site in self._specs_by_site
        }
        self._evaluations: dict[FaultSite, int] = {}
        self._fires: dict[FaultSite, int] = {}
        self.fire_log: list[tuple[FaultSite, int]] = []
        """Every fire as ``(site, evaluation_index)``, in order."""

    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether any site is armed."""
        return bool(self._specs_by_site)

    def check(self, site: FaultSite) -> None:
        """Evaluate ``site``'s triggers; raise if one fires.

        Raises:
            InjectedFaultError: carrying the site, per-site fire count
                and the evaluation index that fired.
        """
        indices = self._specs_by_site.get(site)
        if not indices:
            return
        n = self._evaluations.get(site, 0) + 1
        self._evaluations[site] = n
        for index in indices:
            spec = self.plan.specs[index]
            if not self._trigger_matches(spec, site, n):
                continue
            if (
                spec.max_fires is not None
                and self._spec_fires[index] >= spec.max_fires
            ):
                continue
            self._spec_fires[index] += 1
            fires = self._fires.get(site, 0) + 1
            self._fires[site] = fires
            self.fire_log.append((site, n))
            raise InjectedFaultError(site, fires, evaluation=n)

    def _trigger_matches(
        self, spec: FaultSpec, site: FaultSite, evaluation: int
    ) -> bool:
        if spec.probability is not None:
            # Draw even when capped out so the sequence at this site is
            # a pure function of (seed, evaluation index).
            return self._rngs[site].random() < spec.probability
        if spec.after_n is not None:
            return evaluation > spec.after_n
        assert spec.every_nth is not None
        return evaluation % spec.every_nth == 0

    # ------------------------------------------------------------------
    # Introspection (tests, reports)
    # ------------------------------------------------------------------

    def evaluations(self, site: FaultSite) -> int:
        """How often ``site`` has been evaluated."""
        return self._evaluations.get(site, 0)

    def fires(self, site: Optional[FaultSite] = None) -> int:
        """Fire count for one site, or the total across all sites."""
        if site is not None:
            return self._fires.get(site, 0)
        return sum(self._fires.values())

    def summary(self) -> dict[str, dict[str, int]]:
        """Per-site ``{evaluations, fires}`` for reports."""
        return {
            site.value: {
                "evaluations": self._evaluations.get(site, 0),
                "fires": self._fires.get(site, 0),
            }
            for site in self._specs_by_site
        }
