"""Vertex reordering: Degree-Based Grouping and baselines (paper §5.1.2).

DBG (Faldu et al., IISWC'19) coarsely sorts vertices into 8 hotness bins
by degree, with minimum degrees ``32d, 16d, 8d, 4d, 2d, d, 0.5d, 0`` where
``d`` is the network's average degree.  Within a bin the original order is
preserved ("the order in which vertices are arranged within each bin does
not matter" — we keep it stable, which preserves community structure, the
property that makes DBG *lightweight*).  The result: hot vertices occupy
a dense prefix of the id space, so a handful of huge pages covers the
entire hot working set of the property array.

All functions return a permutation ``perm`` with ``perm[old_id] ==
new_id``; apply it with :func:`apply_order` /
:meth:`repro.graph.csr.CsrGraph.relabel`.

The module also reports the three linear traversals DBG costs (degree
count, binning, remap) so the preprocessing-overhead analysis of §5.1.2
can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphError
from .csr import CsrGraph

DBG_DEFAULT_THRESHOLDS = (32.0, 16.0, 8.0, 4.0, 2.0, 1.0, 0.5, 0.0)
"""Bin floors as multiples of the average degree (hottest first)."""


@dataclass(frozen=True)
class ReorderCost:
    """Work accounting for a preprocessing pass.

    DBG touches each vertex a constant number of times; the paper counts
    three vertex-linear traversals versus the algorithm's edge-linear
    work, which is why DBG overhead is small (§5.1.2).
    """

    vertex_traversals: int
    edge_traversals: int

    def accesses(self, num_vertices: int, num_edges: int) -> int:
        """Total array elements touched by the preprocessing."""
        return (
            self.vertex_traversals * num_vertices
            + self.edge_traversals * num_edges
        )


DBG_COST = ReorderCost(vertex_traversals=3, edge_traversals=0)
"""DBG's cost: 3 vertex-linear traversals (degrees already available in
CSR, so no edge traversal is charged; loading degrees from an edge list
would add one edge traversal)."""


def dbg_order(
    graph: CsrGraph,
    thresholds: tuple[float, ...] = DBG_DEFAULT_THRESHOLDS,
    use_in_degree: bool = True,
) -> np.ndarray:
    """Degree-Based Grouping permutation.

    Args:
        graph: the network to reorder.
        thresholds: bin floors as multiples of the average degree,
            hottest bin first, last entry must be 0 (the catch-all bin
            that holds the power-law tail).
        use_in_degree: bin by in-degree (default) — in push-based kernels
            the property array is written once per *incoming* edge, so
            in-degree is the property-access frequency (§3.2).  Set False
            to bin by out-degree.

    Returns:
        ``perm`` with ``perm[old_id] == new_id``; hot vertices get the
        lowest new ids.
    """
    if not thresholds or thresholds[-1] != 0.0:
        raise GraphError("thresholds must end with the catch-all bin (0)")
    if any(
        thresholds[i] <= thresholds[i + 1] for i in range(len(thresholds) - 1)
    ):
        raise GraphError("thresholds must be strictly decreasing")
    degrees = (
        graph.in_degrees() if use_in_degree else graph.out_degrees()
    ).astype(np.float64)
    avg = graph.average_degree
    floors = np.array(thresholds, dtype=np.float64) * avg
    bins = _bin_by_degree(degrees, floors)
    # Stable sort by bin keeps the original relative order inside a bin.
    order = np.argsort(bins, kind="stable")
    perm = np.empty(graph.num_vertices, dtype=np.int64)
    perm[order] = np.arange(graph.num_vertices, dtype=np.int64)
    return perm


def dbg_bin_sizes(
    graph: CsrGraph,
    thresholds: tuple[float, ...] = DBG_DEFAULT_THRESHOLDS,
    use_in_degree: bool = True,
) -> np.ndarray:
    """Vertices per DBG bin (hottest first) — the power-law check that
    "a majority of vertices occupy the last bin"."""
    degrees = (
        graph.in_degrees() if use_in_degree else graph.out_degrees()
    ).astype(np.float64)
    floors = np.array(thresholds, dtype=np.float64) * graph.average_degree
    bins = _bin_by_degree(degrees, floors)
    return np.bincount(bins, minlength=len(floors))


def _bin_by_degree(degrees: np.ndarray, floors: np.ndarray) -> np.ndarray:
    """Bin index per vertex: the first (hottest) bin whose floor the
    degree meets.  ``floors`` is descending and ends at 0, so every
    vertex lands somewhere; bin 0 is the hottest."""
    # searchsorted needs ascending order: count floors <= degree against
    # the reversed array, then flip back.  Equality goes to the hotter
    # bin ("degree greater than or equal to" the floor).
    at_or_below = np.searchsorted(floors[::-1], degrees, side="right")
    return (len(floors) - at_or_below).clip(0, len(floors) - 1)


def degree_sort_order(
    graph: CsrGraph, use_in_degree: bool = True
) -> np.ndarray:
    """Full descending degree sort — the heavyweight alternative DBG
    approximates.  Maximizes hot-prefix density but destroys community
    structure entirely (§6, Graph Sorting)."""
    degrees = graph.in_degrees() if use_in_degree else graph.out_degrees()
    order = np.argsort(-degrees, kind="stable")
    perm = np.empty(graph.num_vertices, dtype=np.int64)
    perm[order] = np.arange(graph.num_vertices, dtype=np.int64)
    return perm


def random_order(graph: CsrGraph, seed: int = 0) -> np.ndarray:
    """A random permutation — the adversarial baseline that scatters hot
    vertices across the whole address range."""
    rng = np.random.default_rng(seed)
    return rng.permutation(graph.num_vertices).astype(np.int64)


def identity_order(graph: CsrGraph) -> np.ndarray:
    """The no-op permutation (original crawl order)."""
    return np.arange(graph.num_vertices, dtype=np.int64)


def apply_order(graph: CsrGraph, perm: np.ndarray) -> CsrGraph:
    """Relabel ``graph`` under ``perm`` (see :meth:`CsrGraph.relabel`)."""
    return graph.relabel(perm)


ORDERINGS = {
    "original": lambda g: identity_order(g),
    "dbg": lambda g: dbg_order(g),
    "degree-sort": lambda g: degree_sort_order(g),
    "random": lambda g: random_order(g),
}
"""Named ordering strategies for experiment configuration."""
