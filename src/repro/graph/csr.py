"""Compressed Sparse Row graph storage (paper §2.1.1).

A directed graph is stored as the paper's three dense arrays:

- the **vertex array** (``indptr``): cumulative neighbor counts, length
  ``V + 1``;
- the **edge array** (``indices``): destination vertex ids, length ``E``;
- the optional **values array** (``weights``): per-edge weights for SSSP.

The fourth array of Fig. 3 — the per-vertex **property array** — belongs
to the *workload*, not the graph, and lives in
:mod:`repro.workloads.layout`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import GraphError


def concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + c)`` for each (s, c) pair, vectorized.

    The workhorse for gathering per-vertex edge slices without a Python
    loop.  Pairs with ``c == 0`` contribute nothing.

    >>> concat_ranges(np.array([5, 0]), np.array([3, 2])).tolist()
    [5, 6, 7, 0, 1]
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    nonzero = counts > 0
    starts = starts[nonzero]
    counts = counts[nonzero]
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    total = int(counts.sum())
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    ends = np.cumsum(counts)[:-1]
    out[ends] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    return np.cumsum(out)


class CsrGraph:
    """A directed graph in CSR form.

    Attributes:
        indptr: ``int64[V + 1]`` vertex array.
        indices: ``int64[E]`` edge array (destination ids).
        weights: optional ``int64[E]`` values array.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.weights = (
            None
            if weights is None
            else np.ascontiguousarray(weights, dtype=np.int64)
        )
        self.validate()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def from_edges(
        src: np.ndarray,
        dst: np.ndarray,
        num_vertices: int,
        weights: Optional[np.ndarray] = None,
    ) -> "CsrGraph":
        """Build a CSR graph from parallel edge arrays.

        Edges are grouped by source (stable, preserving input order within
        a source's neighbor list).  Duplicate edges and self-loops are
        kept — real web/social crawls contain both.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise GraphError("src and dst must have the same length")
        if src.size and (src.min() < 0 or src.max() >= num_vertices):
            raise GraphError("source id out of range")
        if dst.size and (dst.min() < 0 or dst.max() >= num_vertices):
            raise GraphError("destination id out of range")
        order = np.argsort(src, kind="stable")
        counts = np.bincount(src, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = dst[order]
        w = None if weights is None else np.asarray(weights, dtype=np.int64)[order]
        return CsrGraph(indptr, indices, w)

    def validate(self) -> None:
        """Check structural invariants; raises :class:`GraphError`."""
        if self.indptr.ndim != 1 or self.indptr.size < 1:
            raise GraphError("indptr must be a 1-D array of length >= 1")
        if self.indptr[0] != 0:
            raise GraphError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if self.indptr[-1] != self.indices.size:
            raise GraphError(
                f"indptr end ({self.indptr[-1]}) != number of edges "
                f"({self.indices.size})"
            )
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.num_vertices
        ):
            raise GraphError("edge destination out of range")
        if self.weights is not None and self.weights.shape != self.indices.shape:
            raise GraphError("weights must parallel the edge array")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices V."""
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges E."""
        return self.indices.size

    @property
    def average_degree(self) -> float:
        """Average out-degree E / V."""
        return self.num_edges / max(1, self.num_vertices)

    def neighbors(self, vertex: int) -> np.ndarray:
        """The destination ids of ``vertex``'s outgoing edges."""
        return self.indices[self.indptr[vertex] : self.indptr[vertex + 1]]

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex (frequency of property-array access
        in push-based kernels)."""
        return np.bincount(self.indices, minlength=self.num_vertices)

    def edge_endpoints(self) -> tuple[np.ndarray, np.ndarray]:
        """Parallel (src, dst) arrays reconstructing the edge list."""
        src = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), self.out_degrees()
        )
        return src, self.indices.copy()

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def transpose(self) -> "CsrGraph":
        """The reverse graph (incoming edges become outgoing)."""
        src, dst = self.edge_endpoints()
        return CsrGraph.from_edges(
            dst, src, self.num_vertices, weights=self.weights
        )

    def relabel(self, perm: np.ndarray) -> "CsrGraph":
        """Renumber vertices: vertex ``v`` becomes ``perm[v]``.

        This is the "generate a new ID for each vertex" traversal of DBG
        preprocessing (§5.1.2).  The returned graph has identical
        structure under the new ids; neighbor lists keep their relative
        order.

        Raises:
            GraphError: if ``perm`` is not a permutation of ``0..V-1``.
        """
        perm = np.asarray(perm, dtype=np.int64)
        v = self.num_vertices
        if perm.shape != (v,) or not np.array_equal(
            np.sort(perm), np.arange(v, dtype=np.int64)
        ):
            raise GraphError("perm must be a permutation of 0..V-1")
        old_in_new_order = np.argsort(perm, kind="stable")
        degrees = self.out_degrees()
        new_counts = degrees[old_in_new_order]
        indptr = np.zeros(v + 1, dtype=np.int64)
        np.cumsum(new_counts, out=indptr[1:])
        gather = concat_ranges(self.indptr[old_in_new_order], new_counts)
        indices = perm[self.indices[gather]]
        weights = None if self.weights is None else self.weights[gather]
        return CsrGraph(indptr, indices, weights)

    def with_weights(self, weights: np.ndarray) -> "CsrGraph":
        """A copy sharing structure but carrying the given values array."""
        return CsrGraph(self.indptr, self.indices, weights)

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CsrGraph(V={self.num_vertices}, E={self.num_edges}, "
            f"weighted={self.weights is not None})"
        )
