"""Graph substrate: CSR storage, generators, reordering, datasets.

- :mod:`repro.graph.csr` — the Compressed Sparse Row structure of §2.1.1
  (vertex array, edge array, optional values array).
- :mod:`repro.graph.generators` — synthetic networks standing in for the
  paper's inputs: Kronecker/R-MAT plus power-law social/web/wiki
  analogues with controllable community structure.
- :mod:`repro.graph.reorder` — Degree-Based Grouping (DBG, §5.1.2) and
  baseline orderings.
- :mod:`repro.graph.datasets` — the Table 2 dataset registry at simulator
  scale.
- :mod:`repro.graph.io` — (de)serialization, including the on-disk sizes
  that drive the page-cache interference model.
"""

from .csr import CsrGraph, concat_ranges
from .generators import rmat_graph, power_law_graph, uniform_graph
from .reorder import (
    dbg_order,
    degree_sort_order,
    identity_order,
    random_order,
    apply_order,
    DBG_DEFAULT_THRESHOLDS,
)
from .datasets import Dataset, DATASETS, load_dataset, dataset_names
from .stats import DegreeStats, degree_stats, gini_coefficient

__all__ = [
    "CsrGraph",
    "DATASETS",
    "DBG_DEFAULT_THRESHOLDS",
    "Dataset",
    "DegreeStats",
    "apply_order",
    "degree_stats",
    "gini_coefficient",
    "concat_ranges",
    "dataset_names",
    "dbg_order",
    "degree_sort_order",
    "identity_order",
    "load_dataset",
    "power_law_graph",
    "random_order",
    "rmat_graph",
    "uniform_graph",
]
