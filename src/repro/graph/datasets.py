"""The Table 2 dataset registry at simulator scale.

The paper's four inputs, scaled by ~3 orders of magnitude so that a
cycle-accurate Python TLB simulation stays tractable while the
footprint-to-TLB-coverage ratios of the SCALED machine profile match the
paper's regime (DESIGN.md §3):

=============  ==================  =========  ==========  ===============
Paper input    This registry       Vertices   Edges       Character
=============  ==================  =========  ==========  ===============
Kronecker25    ``kron-s``          131,072    1,048,576   synthetic power
                                                          law, shuffled
                                                          labels (no id
                                                          locality)
Twitter        ``twitter-s``       131,072    1,572,864   heavy hub skew,
                                                          natural hub
                                                          proximity
Sd1 Arc        ``web-s``           163,840    1,638,400   strong community
                                                          blocks
Wikipedia      ``wiki-s``          65,536     786,432     moderate skew +
                                                          community
=============  ==================  =========  ==========  ===============

Every dataset is deterministic (fixed seed) and cached in-process, since
experiments reuse the same input across dozens of cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import DatasetError
from .csr import CsrGraph
from .generators import power_law_graph, rmat_graph, uniform_graph


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one named dataset."""

    name: str
    paper_name: str
    description: str
    build: Callable[[bool], CsrGraph]
    """Factory taking ``weighted`` and returning the graph."""


@dataclass(frozen=True)
class Dataset:
    """A materialized dataset: graph plus registry metadata."""

    name: str
    paper_name: str
    description: str
    graph: CsrGraph


def _kron(weighted: bool) -> CsrGraph:
    return rmat_graph(
        scale=17,
        num_edges=1_048_576,
        seed=25,
        shuffle_labels=True,
        weighted=weighted,
    )


def _twitter(weighted: bool) -> CsrGraph:
    return power_law_graph(
        num_vertices=131_072,
        num_edges=1_572_864,
        alpha=0.8,
        community_fraction=0.25,
        community_size=4096,
        hub_shuffle=0.1,
        seed=61,
        weighted=weighted,
    )


def _web(weighted: bool) -> CsrGraph:
    return power_law_graph(
        num_vertices=163_840,
        num_edges=1_638_400,
        alpha=0.75,
        community_fraction=0.5,
        community_size=2048,
        hub_shuffle=0.15,
        seed=95,
        weighted=weighted,
    )


def _wiki(weighted: bool) -> CsrGraph:
    return power_law_graph(
        num_vertices=65_536,
        num_edges=786_432,
        alpha=0.8,
        community_fraction=0.3,
        community_size=2048,
        hub_shuffle=0.1,
        seed=12,
        weighted=weighted,
    )


def _test_small(weighted: bool) -> CsrGraph:
    return uniform_graph(num_vertices=512, num_edges=4096, seed=7,
                         weighted=weighted)


DATASETS: dict[str, DatasetSpec] = {
    "kron-s": DatasetSpec(
        "kron-s",
        "Kronecker25 (Kr25)",
        "Graph500 R-MAT, labels shuffled: power law, no id locality",
        _kron,
    ),
    "twitter-s": DatasetSpec(
        "twitter-s",
        "Twitter (Twit)",
        "social network: heavy hub skew, hubs at nearby ids",
        _twitter,
    ),
    "web-s": DatasetSpec(
        "web-s",
        "Sd1 Arc (Web)",
        "web crawl: strong community blocks, per-block hubs",
        _web,
    ),
    "wiki-s": DatasetSpec(
        "wiki-s",
        "Wikipedia (Wiki)",
        "link graph: moderate skew and community structure",
        _wiki,
    ),
    "test-small": DatasetSpec(
        "test-small",
        "(test only)",
        "512-vertex uniform graph for fast tests",
        _test_small,
    ),
}

EVALUATION_DATASETS = ("kron-s", "twitter-s", "web-s", "wiki-s")
"""The Table 2 inputs, in the paper's presentation order."""

PAPER_NAME_ALIASES = {
    "kr25": "kron-s",
    "kronecker25": "kron-s",
    "twit": "twitter-s",
    "twitter": "twitter-s",
    "web": "web-s",
    "sd1arc": "web-s",
    "wiki": "wiki-s",
    "wikipedia": "wiki-s",
}
"""Paper shorthand -> registry key."""

_CACHE: dict[tuple[str, bool], Dataset] = {}


def dataset_names() -> tuple[str, ...]:
    """All registered dataset names."""
    return tuple(DATASETS)


def load_dataset(name: str, weighted: bool = False) -> Dataset:
    """Materialize a dataset by name (paper aliases accepted).

    Results are cached per (name, weighted); the returned graph is shared,
    so callers must not mutate it.

    Raises:
        DatasetError: if the name is unknown.
    """
    key = PAPER_NAME_ALIASES.get(name.lower().replace(" ", ""), name)
    spec = DATASETS.get(key)
    if spec is None:
        known = ", ".join(sorted(DATASETS))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}")
    cache_key = (key, weighted)
    if cache_key not in _CACHE:
        _CACHE[cache_key] = Dataset(
            spec.name, spec.paper_name, spec.description, spec.build(weighted)
        )
    return _CACHE[cache_key]


def clear_dataset_cache() -> None:
    """Drop all cached datasets (tests use this to bound memory)."""
    _CACHE.clear()
