"""The Table 2 dataset registry at simulator scale.

The paper's four inputs, scaled by ~3 orders of magnitude so that a
cycle-accurate Python TLB simulation stays tractable while the
footprint-to-TLB-coverage ratios of the SCALED machine profile match the
paper's regime (DESIGN.md §3):

=============  ==================  =========  ==========  ===============
Paper input    This registry       Vertices   Edges       Character
=============  ==================  =========  ==========  ===============
Kronecker25    ``kron-s``          131,072    1,048,576   synthetic power
                                                          law, shuffled
                                                          labels (no id
                                                          locality)
Twitter        ``twitter-s``       131,072    1,572,864   heavy hub skew,
                                                          natural hub
                                                          proximity
Sd1 Arc        ``web-s``           163,840    1,638,400   strong community
                                                          blocks
Wikipedia      ``wiki-s``          65,536     786,432     moderate skew +
                                                          community
=============  ==================  =========  ==========  ===============

The million-vertex scale tier (``SCALE_TIER_DATASETS``) extends the
registry past the ``-s`` inputs for the batch translation engine and
the ``scaled-1m`` machine profile:

=============  ==========  ==========  ==================================
Registry       Vertices    Edges       Character
=============  ==========  ==========  ==================================
``kron-m``     1,048,576   8,388,608   R-MAT scale 20, shuffled labels
``uniform-m``  1,048,576   8,388,608   uniform, no-skew control
``road-m``     1,048,576   2,097,152   uniform, road-like sparsity;
                                       fits L1 TLB reach when fully
                                       huge-page-backed
=============  ==========  ==========  ==================================

Every dataset is deterministic (fixed seed) and cached in-process, since
experiments reuse the same input across dozens of cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import DatasetError
from .csr import CsrGraph
from .generators import power_law_graph, rmat_graph, uniform_graph


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one named dataset."""

    name: str
    paper_name: str
    description: str
    build: Callable[[bool], CsrGraph]
    """Factory taking ``weighted`` and returning the graph."""


@dataclass(frozen=True)
class Dataset:
    """A materialized dataset: graph plus registry metadata."""

    name: str
    paper_name: str
    description: str
    graph: CsrGraph


def _kron(weighted: bool) -> CsrGraph:
    return rmat_graph(
        scale=17,
        num_edges=1_048_576,
        seed=25,
        shuffle_labels=True,
        weighted=weighted,
    )


def _twitter(weighted: bool) -> CsrGraph:
    return power_law_graph(
        num_vertices=131_072,
        num_edges=1_572_864,
        alpha=0.8,
        community_fraction=0.25,
        community_size=4096,
        hub_shuffle=0.1,
        seed=61,
        weighted=weighted,
    )


def _web(weighted: bool) -> CsrGraph:
    return power_law_graph(
        num_vertices=163_840,
        num_edges=1_638_400,
        alpha=0.75,
        community_fraction=0.5,
        community_size=2048,
        hub_shuffle=0.15,
        seed=95,
        weighted=weighted,
    )


def _wiki(weighted: bool) -> CsrGraph:
    return power_law_graph(
        num_vertices=65_536,
        num_edges=786_432,
        alpha=0.8,
        community_fraction=0.3,
        community_size=2048,
        hub_shuffle=0.1,
        seed=12,
        weighted=weighted,
    )


def _kron_m(weighted: bool) -> CsrGraph:
    return rmat_graph(
        scale=20,
        num_edges=8_388_608,
        seed=25,
        shuffle_labels=True,
        weighted=weighted,
    )


def _uniform_m(weighted: bool) -> CsrGraph:
    return uniform_graph(
        num_vertices=1_048_576,
        num_edges=8_388_608,
        seed=33,
        weighted=weighted,
    )


def _road_m(weighted: bool) -> CsrGraph:
    return uniform_graph(
        num_vertices=1_048_576,
        num_edges=2_097_152,
        seed=41,
        weighted=weighted,
    )


def _test_small(weighted: bool) -> CsrGraph:
    return uniform_graph(num_vertices=512, num_edges=4096, seed=7,
                         weighted=weighted)


DATASETS: dict[str, DatasetSpec] = {
    "kron-s": DatasetSpec(
        "kron-s",
        "Kronecker25 (Kr25)",
        "Graph500 R-MAT, labels shuffled: power law, no id locality",
        _kron,
    ),
    "twitter-s": DatasetSpec(
        "twitter-s",
        "Twitter (Twit)",
        "social network: heavy hub skew, hubs at nearby ids",
        _twitter,
    ),
    "web-s": DatasetSpec(
        "web-s",
        "Sd1 Arc (Web)",
        "web crawl: strong community blocks, per-block hubs",
        _web,
    ),
    "wiki-s": DatasetSpec(
        "wiki-s",
        "Wikipedia (Wiki)",
        "link graph: moderate skew and community structure",
        _wiki,
    ),
    "kron-m": DatasetSpec(
        "kron-m",
        "Kronecker25 (Kr25, 1M-vertex tier)",
        "Graph500 R-MAT at scale 20: 1,048,576 vertices, 8,388,608 "
        "edges, labels shuffled — the million-vertex scale tier, "
        "paired with the scaled-1m machine profile",
        _kron_m,
    ),
    "uniform-m": DatasetSpec(
        "uniform-m",
        "(scale tier control)",
        "uniform 1,048,576-vertex, 8,388,608-edge graph: no-skew "
        "control for the million-vertex tier",
        _uniform_m,
    ),
    "road-m": DatasetSpec(
        "road-m",
        "(scale tier, road-like sparsity)",
        "uniform 1,048,576-vertex, 2,097,152-edge graph: road-network "
        "average degree, small enough (~40MB of arrays) that a fully "
        "huge-page-backed placement fits the paper machine's L1 TLB "
        "reach — the regime where translation is nearly free",
        _road_m,
    ),
    "test-small": DatasetSpec(
        "test-small",
        "(test only)",
        "512-vertex uniform graph for fast tests",
        _test_small,
    ),
}

EVALUATION_DATASETS = ("kron-s", "twitter-s", "web-s", "wiki-s")
"""The Table 2 inputs, in the paper's presentation order."""

SCALE_TIER_DATASETS = ("kron-m", "uniform-m", "road-m")
"""Million-vertex synthetic datasets (run with the ``scaled-1m``
machine profile; see :func:`repro.config.scaled_1m`).  ``road-m`` is
also the translation-kernel benchmark's huge-page-backed cell: its
footprint fits the paper machine's L1 TLB reach under a full hugetlb
placement."""

PAPER_NAME_ALIASES = {
    "kr25": "kron-s",
    "kronecker25": "kron-s",
    "twit": "twitter-s",
    "twitter": "twitter-s",
    "web": "web-s",
    "sd1arc": "web-s",
    "wiki": "wiki-s",
    "wikipedia": "wiki-s",
}
"""Paper shorthand -> registry key."""

_CACHE: dict[tuple[str, bool], Dataset] = {}


def dataset_names() -> tuple[str, ...]:
    """All registered dataset names."""
    return tuple(DATASETS)


def load_dataset(name: str, weighted: bool = False) -> Dataset:
    """Materialize a dataset by name (paper aliases accepted).

    Results are cached per (name, weighted); the returned graph is shared,
    so callers must not mutate it.

    Raises:
        DatasetError: if the name is unknown.
    """
    key = PAPER_NAME_ALIASES.get(name.lower().replace(" ", ""), name)
    spec = DATASETS.get(key)
    if spec is None:
        known = ", ".join(sorted(DATASETS))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}")
    cache_key = (key, weighted)
    if cache_key not in _CACHE:
        _CACHE[cache_key] = Dataset(
            spec.name, spec.paper_name, spec.description, spec.build(weighted)
        )
    return _CACHE[cache_key]


def clear_dataset_cache() -> None:
    """Drop all cached datasets (tests use this to bound memory)."""
    _CACHE.clear()
