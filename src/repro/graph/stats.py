"""Degree-distribution statistics.

The paper's analysis rests on two structural facts about real networks:
access frequency is highly skewed (§5.1.1: "hot" vertices) and the hot
set is tiny relative to the footprint.  These helpers quantify both for
any input, and power the dataset inspection CLI — a downstream user can
check whether *their* graph is in the regime where selective huge pages
pay off before committing to the preprocessing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CsrGraph


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's in-degree (property-access) distribution.

    Attributes:
        max_degree: highest in-degree.
        average_degree: E / V.
        gini: Gini coefficient of the in-degree distribution (0 =
            perfectly uniform access frequency, -> 1 = extreme skew).
        hot_set_fraction: fraction of vertices receiving
            ``coverage`` of all property accesses (smaller = hotter).
        coverage: the access-coverage level ``hot_set_fraction`` is
            reported at.
        zero_degree_fraction: vertices never accessed through the
            property array (candidates for huge-page exclusion).
    """

    max_degree: int
    average_degree: float
    gini: float
    hot_set_fraction: float
    coverage: float
    zero_degree_fraction: float

    @property
    def skew_class(self) -> str:
        """Coarse label used in reports: how strongly selective
        huge-page placement is expected to pay off."""
        if self.hot_set_fraction <= 0.05:
            return "extreme"
        if self.hot_set_fraction <= 0.25:
            return "high"
        if self.hot_set_fraction <= 0.6:
            return "moderate"
        return "low"


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample.

    0 for a uniform distribution, approaching 1 as a vanishing minority
    holds all the mass.  Computed via the sorted-rank formula.

    >>> round(gini_coefficient(np.array([1, 1, 1, 1])), 3)
    0.0
    """
    values = np.sort(np.asarray(values, dtype=np.float64))
    n = values.size
    if n == 0:
        return 0.0
    total = values.sum()
    if total == 0:
        return 0.0
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (ranks * values).sum()) / (n * total) - (n + 1) / n)


def hot_set_fraction(
    degrees: np.ndarray, coverage: float = 0.8
) -> float:
    """Fraction of vertices (hottest first) covering ``coverage`` of all
    accesses — the quantity the advisor's madvise range is sized by."""
    degrees = np.asarray(degrees, dtype=np.int64)
    total = int(degrees.sum())
    if total == 0 or degrees.size == 0:
        return 0.0
    ordered = np.sort(degrees)[::-1]
    covered = np.cumsum(ordered) / total
    count = int(np.searchsorted(covered, coverage) + 1)
    return min(count, degrees.size) / degrees.size


def degree_stats(graph: CsrGraph, coverage: float = 0.8) -> DegreeStats:
    """Compute :class:`DegreeStats` for a graph's in-degrees."""
    in_degrees = graph.in_degrees()
    return DegreeStats(
        max_degree=int(in_degrees.max(initial=0)),
        average_degree=graph.average_degree,
        gini=gini_coefficient(in_degrees),
        hot_set_fraction=hot_set_fraction(in_degrees, coverage),
        coverage=coverage,
        zero_degree_fraction=(
            float(np.count_nonzero(in_degrees == 0)) / graph.num_vertices
            if graph.num_vertices
            else 0.0
        ),
    )
