"""Graph (de)serialization and on-disk size accounting.

Two formats:

- a compact binary format (numpy ``.npz``) used by the examples to avoid
  regenerating graphs,
- a plain edge-list text format for interchange and tests.

:func:`on_disk_bytes` reports how large a graph's file representation is
— the number that drives the page-cache interference model of §4.3: when
the loader streams that many bytes through the page cache on the
application's NUMA node, exactly that much single-use memory competes
with the application's huge page allocations.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from ..errors import GraphError
from .csr import CsrGraph

EDGE_RECORD_BYTES = 8
"""Bytes per array element in the simulated on-disk format (the paper's
binary CSR inputs use 8-byte records)."""


def on_disk_bytes(graph: CsrGraph) -> int:
    """Size of the graph's serialized form, as cached by the OS when the
    application loads it (vertex + edge + optional values array)."""
    elements = graph.indptr.size + graph.indices.size
    if graph.weights is not None:
        elements += graph.weights.size
    return elements * EDGE_RECORD_BYTES


def save_npz(graph: CsrGraph, path: str) -> None:
    """Write the graph to ``path`` in compressed numpy format."""
    arrays = {"indptr": graph.indptr, "indices": graph.indices}
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    np.savez_compressed(path, **arrays)


def load_npz(path: str) -> CsrGraph:
    """Load a graph written by :func:`save_npz`."""
    if not os.path.exists(path):
        raise GraphError(f"no such graph file: {path}")
    with np.load(path) as data:
        weights: Optional[np.ndarray] = (
            data["weights"] if "weights" in data.files else None
        )
        return CsrGraph(data["indptr"], data["indices"], weights)


def save_edge_list(graph: CsrGraph, path: str) -> None:
    """Write a whitespace-separated edge list (``src dst [weight]``)."""
    src, dst = graph.edge_endpoints()
    with open(path, "w", encoding="ascii") as handle:
        if graph.weights is None:
            for s, d in zip(src.tolist(), dst.tolist()):
                handle.write(f"{s} {d}\n")
        else:
            for s, d, w in zip(
                src.tolist(), dst.tolist(), graph.weights.tolist()
            ):
                handle.write(f"{s} {d} {w}\n")


def load_edge_list(path: str, num_vertices: Optional[int] = None) -> CsrGraph:
    """Load a whitespace-separated edge list.

    Lines are ``src dst`` or ``src dst weight``; blank lines and lines
    starting with ``#`` are ignored.  ``num_vertices`` defaults to
    ``max(id) + 1``.
    """
    if not os.path.exists(path):
        raise GraphError(f"no such edge list: {path}")
    srcs: list[int] = []
    dsts: list[int] = []
    weights: list[int] = []
    with open(path, "r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(f"malformed edge line: {line!r}")
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if len(parts) == 3:
                weights.append(int(parts[2]))
    if weights and len(weights) != len(srcs):
        raise GraphError("either all or no edges may carry weights")
    src = np.array(srcs, dtype=np.int64)
    dst = np.array(dsts, dtype=np.int64)
    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
    w = np.array(weights, dtype=np.int64) if weights else None
    return CsrGraph.from_edges(src, dst, num_vertices, weights=w)
