"""Synthetic graph generators.

The paper evaluates one synthetic power-law network (Kronecker, the
Graph500 generator) and three real crawls (Twitter, Sd1 Arc, Wikipedia).
The real datasets are not redistributable at simulator scale, so
:func:`power_law_graph` produces structurally analogous networks with two
knobs the paper's analysis turns on:

- **popularity skew** (``alpha``): the in-degree power law that creates
  "hot" vertices with highly-reused property entries (§5.1.1);
- **community structure** (``community_fraction``): how much traffic stays
  inside blocks of *nearby vertex ids*.  Real social/web graphs "naturally
  have hot vertices in close proximity to one another" (§5.2), which is
  why DBG barely changes them, whereas Kronecker ids carry no locality
  (we shuffle labels, as Graph500 does) and DBG helps a lot.

All generators are deterministic given a seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import GraphError
from .csr import CsrGraph


def _weights(rng: np.random.Generator, count: int) -> np.ndarray:
    """Positive integer edge weights for SSSP (1..63)."""
    return rng.integers(1, 64, size=count, dtype=np.int64)


def rmat_graph(
    scale: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 1,
    shuffle_labels: bool = True,
    weighted: bool = False,
) -> CsrGraph:
    """R-MAT / Kronecker generator (Graph500 parameters by default).

    Each edge picks one quadrant per recursion level with probabilities
    (a, b, c, d = 1-a-b-c).  With ``shuffle_labels`` the vertex ids are
    randomly permuted afterwards — as the Graph500 specification requires
    — which destroys any id-space locality and makes Kronecker the
    "no community structure" case of the paper.

    Args:
        scale: log2 of the number of vertices.
        num_edges: number of directed edges to sample.
        a, b, c: R-MAT quadrant probabilities (d is implied).
        seed: RNG seed.
        shuffle_labels: permute vertex ids after generation.
        weighted: attach a values array of random weights.
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphError("R-MAT probabilities must be non-negative")
    rng = np.random.default_rng(seed)
    num_vertices = 1 << scale
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(num_edges)
        # Quadrants in CDF order: a (0,0), b (0,1), c (1,0), d (1,1).
        src_bit = r >= a + b
        dst_bit = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        src |= src_bit.astype(np.int64) << bit
        dst |= dst_bit.astype(np.int64) << bit
    if shuffle_labels:
        perm = rng.permutation(num_vertices).astype(np.int64)
        src = perm[src]
        dst = perm[dst]
    weights = _weights(rng, num_edges) if weighted else None
    return CsrGraph.from_edges(src, dst, num_vertices, weights=weights)


def power_law_graph(
    num_vertices: int,
    num_edges: int,
    alpha: float = 0.9,
    community_fraction: float = 0.0,
    community_size: int = 4096,
    hub_shuffle: float = 0.0,
    seed: int = 1,
    weighted: bool = False,
) -> CsrGraph:
    """Power-law network with tunable community structure.

    Destinations are drawn from a Zipf-like popularity distribution
    ``p(v) ∝ (v + 10)^-alpha`` so low-id vertices are hot hubs — matching
    crawl orderings where popular pages/users were discovered first.  A
    ``community_fraction`` of edges instead stays within the source's
    id-block of ``community_size`` vertices (with the block's own local
    hub skew), producing the spatial locality of real web graphs.

    ``hub_shuffle`` (0..1) randomly relocates that fraction of vertices in
    the id space, degrading the natural hot-vertex proximity — use 1.0 to
    emulate a fully shuffled crawl.

    Args:
        num_vertices: V.
        num_edges: E (directed).
        alpha: popularity skew exponent (larger = hotter hubs).
        community_fraction: fraction of edges kept inside id-blocks.
        community_size: block width in vertex ids.
        hub_shuffle: fraction of ids randomly permuted afterwards.
        seed: RNG seed.
        weighted: attach a values array of random weights.
    """
    if not 0.0 <= community_fraction <= 1.0:
        raise GraphError("community_fraction must be in [0, 1]")
    if not 0.0 <= hub_shuffle <= 1.0:
        raise GraphError("hub_shuffle must be in [0, 1]")
    rng = np.random.default_rng(seed)
    popularity = 1.0 / np.power(
        np.arange(num_vertices, dtype=np.float64) + 10.0, alpha
    )
    cdf = np.cumsum(popularity)
    cdf /= cdf[-1]

    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = np.searchsorted(cdf, rng.random(num_edges)).astype(np.int64)
    dst = np.minimum(dst, num_vertices - 1)

    if community_fraction > 0.0:
        local = rng.random(num_edges) < community_fraction
        n_local = int(np.count_nonzero(local))
        if n_local:
            block = np.minimum(community_size, num_vertices)
            local_pop = 1.0 / np.power(
                np.arange(block, dtype=np.float64) + 5.0, alpha
            )
            local_cdf = np.cumsum(local_pop)
            local_cdf /= local_cdf[-1]
            offsets = np.searchsorted(
                local_cdf, rng.random(n_local)
            ).astype(np.int64)
            offsets = np.minimum(offsets, block - 1)
            block_starts = (src[local] // block) * block
            dst[local] = np.minimum(
                block_starts + offsets, num_vertices - 1
            )

    if hub_shuffle > 0.0:
        perm = np.arange(num_vertices, dtype=np.int64)
        moved = rng.random(num_vertices) < hub_shuffle
        moved_ids = np.flatnonzero(moved)
        perm[moved_ids] = rng.permutation(moved_ids)
        src = perm[src]
        dst = perm[dst]

    weights = _weights(rng, num_edges) if weighted else None
    return CsrGraph.from_edges(src, dst, num_vertices, weights=weights)


def uniform_graph(
    num_vertices: int,
    num_edges: int,
    seed: int = 1,
    weighted: bool = False,
) -> CsrGraph:
    """Uniform random directed graph (Erdős–Rényi-style), for tests and
    as a no-skew control in ablations."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    weights = _weights(rng, num_edges) if weighted else None
    return CsrGraph.from_edges(src, dst, num_vertices, weights=weights)


def path_graph(num_vertices: int, weighted: bool = False) -> CsrGraph:
    """A directed path 0 -> 1 -> ... -> V-1 (a tiny deterministic oracle
    graph for unit tests)."""
    src = np.arange(num_vertices - 1, dtype=np.int64)
    dst = src + 1
    weights: Optional[np.ndarray] = (
        np.ones(num_vertices - 1, dtype=np.int64) if weighted else None
    )
    return CsrGraph.from_edges(src, dst, num_vertices, weights=weights)
