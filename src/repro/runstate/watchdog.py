"""The cell watchdog: bounded simulated cycles and wall-clock time.

PR 1's access budget bounds how much *work* a cell may simulate; the
watchdog completes the story with two further bounds:

- ``max_cycles`` — a cap on the cell's simulated cycle cost (accesses ×
  cost model + kernel stalls).  Deterministic: the same cell trips it
  at the same point on every run, so it participates in cell identity
  (:func:`~repro.runstate.serialize.spec_fingerprint`).
- ``deadline_seconds`` — a wall-clock deadline for the *host* process
  running the cell.  Deliberately nondeterministic (that is its job —
  catching hangs and pathological slowdowns the simulated clock cannot
  see), so it is excluded from cell identity and from cache keys.

The machine's compute loop calls :meth:`CellWatchdog.check` once per
access stream — the same cadence as the access-budget check — so a
runaway cell is converted into an absorbing ``FAILED(watchdog)``
within one workload iteration instead of wedging the whole sweep.
"""

from __future__ import annotations

import time
from typing import Optional

from ..errors import WatchdogExpiredError


class CellWatchdog:
    """Bounds one cell attempt; raises when a bound is exceeded.

    One watchdog instance covers one attempt: the harness creates a
    fresh one per attempt so retry backoff does not inherit an
    already-spent budget.
    """

    def __init__(
        self,
        max_cycles: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> None:
        if max_cycles is not None and max_cycles <= 0:
            raise ValueError(f"max_cycles must be positive, got {max_cycles}")
        if deadline_seconds is not None and deadline_seconds < 0:
            raise ValueError(
                f"deadline_seconds must be >= 0, got {deadline_seconds}"
            )
        self.max_cycles = max_cycles
        self.deadline_seconds = deadline_seconds
        self._started_at: Optional[float] = None

    @property
    def armed(self) -> bool:
        """Whether any bound is configured."""
        return self.max_cycles is not None or self.deadline_seconds is not None

    def start(self) -> None:
        """Begin the wall-clock window (called at the top of a run)."""
        if self.deadline_seconds is not None:
            # The watchdog is the one place real time is allowed: its
            # whole purpose is bounding the host's clock, not the
            # simulation's.
            self._started_at = time.monotonic()  # repro: noqa REP001

    def elapsed_seconds(self) -> float:
        """Wall-clock seconds since :meth:`start` (0.0 if not started)."""
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at  # repro: noqa REP001

    def check(self, simulated_cycles: int) -> None:
        """Raise if either bound is exceeded.

        Args:
            simulated_cycles: the cell's simulated cycle cost so far.

        Raises:
            WatchdogExpiredError: cycle budget or deadline exceeded.
        """
        if (
            self.max_cycles is not None
            and simulated_cycles > self.max_cycles
        ):
            raise WatchdogExpiredError(
                "cycles",
                f"{simulated_cycles:,} simulated cycles > budget "
                f"{self.max_cycles:,}",
            )
        if self.deadline_seconds is not None and self._started_at is not None:
            elapsed = self.elapsed_seconds()
            if elapsed > self.deadline_seconds:
                raise WatchdogExpiredError(
                    "wall-clock",
                    f"{elapsed:.3f}s elapsed > deadline "
                    f"{self.deadline_seconds:.3f}s",
                )
