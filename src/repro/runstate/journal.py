"""The crash-safe run journal.

An append-only JSONL file with one record per cell *event*:

``{"seq": N, "spec": "<fingerprint>", "status": "running" | "done" |
"failed", "cell": {workload, dataset, policy, scenario}, "attempts": A,
"kernel_cycles": C, "payload": {...}, "integrity": "<hash>"}``

- ``spec`` is the cell's :func:`~repro.runstate.serialize
  .spec_fingerprint` — derived from the cell specification alone, so a
  fresh process (or a runner whose caches were cleared) recomputes the
  same identity.
- ``integrity`` is a truncated sha256 over the record's canonical JSON
  (without the hash field itself).  Appends can tear on a crash; a torn
  record fails the parse or the hash and is treated as never written.
- The *last valid* record per spec wins: ``begin`` appends a
  ``running`` record before the cell simulates and ``record_result``
  appends the ``done``/``failed`` outcome after, so a crash mid-cell
  leaves ``running`` as the latest state and resume re-runs the cell.

Resume semantics (:meth:`RunJournal.result`): only ``done`` records are
reusable.  ``failed`` and ``running`` records — and torn tails — are
re-run; deterministic failures will simply fail again and be
re-recorded.

``RunJournal.gc`` compacts the file to the latest ``done`` record per
spec via an atomic whole-file rewrite (:func:`~repro.runstate.atomic
.atomic_write_text`), dropping superseded, failed, in-flight and torn
records.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from ..errors import JournalError
from ..faults.injector import FaultInjector
from .atomic import append_durable_line, atomic_write_text
from .lock import PidLock
from .serialize import canonical_json, decode_result, encode_result, integrity_hash

STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"

STATUSES = (STATUS_RUNNING, STATUS_DONE, STATUS_FAILED)


@dataclass
class JournalRecord:
    """One validated journal record (integrity hash already checked)."""

    seq: int
    spec: str
    status: str
    cell: dict[str, str]
    attempts: int = 1
    kernel_cycles: Optional[int] = None
    payload: Optional[dict[str, Any]] = None

    @property
    def label(self) -> str:
        """``workload/dataset/policy/scenario`` for listings."""
        return "{workload}/{dataset}/{policy}/{scenario}".format(
            **{
                key: self.cell.get(key, "?")
                for key in ("workload", "dataset", "policy", "scenario")
            }
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict *without* the integrity field."""
        return {
            "seq": self.seq,
            "spec": self.spec,
            "status": self.status,
            "cell": self.cell,
            "attempts": self.attempts,
            "kernel_cycles": self.kernel_cycles,
            "payload": self.payload,
        }


def _parse_line(line: str) -> Optional[JournalRecord]:
    """One line → record, or ``None`` for a torn/corrupt line."""
    try:
        raw = json.loads(line)
    except ValueError:
        return None
    if not isinstance(raw, dict):
        return None
    claimed = raw.pop("integrity", None)
    if claimed is None or integrity_hash(raw) != claimed:
        return None
    try:
        record = JournalRecord(
            seq=int(raw["seq"]),
            spec=str(raw["spec"]),
            status=str(raw["status"]),
            cell=dict(raw.get("cell") or {}),
            attempts=int(raw.get("attempts", 1)),
            kernel_cycles=raw.get("kernel_cycles"),
            payload=raw.get("payload"),
        )
    except (KeyError, TypeError, ValueError):
        return None
    if record.status not in STATUSES:
        return None
    return record


def _render_line(record: JournalRecord) -> str:
    payload = record.to_dict()
    payload["integrity"] = integrity_hash(payload)
    return canonical_json(payload)


def render_line(record: JournalRecord) -> str:
    """Render one record to its canonical journal line (hash included).

    Public for tools (the chaos harness) that need to author or compare
    journal lines byte-for-byte without appending through a journal.
    """
    return _render_line(record)


def parse_line(line: str) -> Optional[JournalRecord]:
    """Parse one journal line; ``None`` for torn/corrupt lines."""
    return _parse_line(line)


def scan_records(path: str) -> list[JournalRecord]:
    """Every *valid* record in file order, including superseded ones.

    Unlike :meth:`RunJournal.records` (latest-per-spec), this returns
    the full valid history — what the chaos harness needs to assert
    exactly-once execution (exactly one ``running`` record per
    deduplicated spec).  Torn lines are skipped, never raised.
    """
    out: list[JournalRecord] = []
    if not os.path.exists(path):
        return out
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            record = _parse_line(line)
            if record is not None:
                out.append(record)
    return out


class RunJournal:
    """Append-only, integrity-hashed JSONL journal for one sweep.

    Args:
        path: the journal file; created on first append.
        injector: optional fault injector consulted at the
            ``journal.write`` / ``journal.fsync`` sites (crash-safety
            testing); ``None`` (the default) is the zero-cost path.
        lock: when true, take the journal's pidfile liveness lock
            (:class:`repro.runstate.lock.PidLock`) for the lifetime of
            this object, so ``repro runs gc`` and second writers refuse
            to touch the file while this process is alive.  Raises
            :class:`repro.errors.JournalLockedError` if another live
            process already owns it.
    """

    def __init__(
        self,
        path: str,
        injector: Optional[FaultInjector] = None,
        lock: bool = False,
    ) -> None:
        self.path = os.fspath(path)
        self.injector = injector
        self._lock: Optional[PidLock] = None
        if lock:
            guard = PidLock(self.path)
            guard.acquire()
            self._lock = guard
        self._latest: dict[str, JournalRecord] = {}
        self._seq = 0
        self.torn_records = 0
        """Torn/corrupt lines skipped during the initial load."""
        self._tail_torn = False
        self._load()

    def close(self) -> None:
        """Release the liveness lock, if held (idempotent)."""
        if self._lock is not None:
            self._lock.release()
            self._lock = None

    # ------------------------------------------------------------------
    # Loading / recovery
    # ------------------------------------------------------------------

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        if os.path.isdir(self.path):
            raise JournalError(f"journal path {self.path!r} is a directory")
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise JournalError(
                f"cannot read journal {self.path!r}: {exc}"
            ) from exc
        self._tail_torn = bool(text) and not text.endswith("\n")
        for line in text.splitlines():
            if not line.strip():
                continue
            record = _parse_line(line)
            if record is None:
                self.torn_records += 1
                continue
            self._latest[record.spec] = record
            self._seq = max(self._seq, record.seq)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._latest)

    def lookup(self, spec: str) -> Optional[JournalRecord]:
        """The latest valid record for ``spec``, if any."""
        return self._latest.get(spec)

    def result(self, spec: str) -> Optional[Any]:
        """The reusable result for ``spec``: the decoded payload of a
        ``done`` record, else ``None`` (failed/in-flight/torn records
        are never reused — resume re-runs those cells)."""
        record = self._latest.get(spec)
        if record is None or record.status != STATUS_DONE:
            return None
        if record.payload is None:
            return None
        return decode_result(record.payload)

    def records(self) -> Iterator[JournalRecord]:
        """Latest record per spec, in first-seen (seq) order."""
        return iter(
            sorted(self._latest.values(), key=lambda record: record.seq)
        )

    def counts(self) -> dict[str, int]:
        """``{status: count}`` over the latest records."""
        out = {status: 0 for status in STATUSES}
        for record in self._latest.values():
            out[record.status] += 1
        return out

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------

    def _append(self, record: JournalRecord) -> None:
        if self._tail_torn:
            # Terminate the torn tail left by a crash so the new record
            # starts on its own line (the torn prefix stays — and stays
            # invalid — for post-mortems; `runs gc` drops it).
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            self._tail_torn = False
        append_durable_line(
            self.path, _render_line(record), injector=self.injector
        )
        self._latest[record.spec] = record

    def begin(self, spec: str, cell: dict[str, str]) -> None:
        """Record that ``spec`` is about to simulate (in-flight)."""
        self._seq += 1
        self._append(
            JournalRecord(
                seq=self._seq, spec=spec, status=STATUS_RUNNING, cell=cell
            )
        )

    def record_result(
        self, spec: str, cell: dict[str, str], result: Any
    ) -> None:
        """Record a finished cell: metrics → ``done``, failure →
        ``failed`` (with the full payload either way, so resume can
        reconstruct metrics and reports can show failure causes)."""
        payload = encode_result(result)
        ok = bool(getattr(result, "ok", False))
        kernel_cycles = result.kernel_cycles if ok else None
        self._seq += 1
        self._append(
            JournalRecord(
                seq=self._seq,
                spec=spec,
                status=STATUS_DONE if ok else STATUS_FAILED,
                cell=cell,
                attempts=int(getattr(result, "attempts", 1) or 1),
                kernel_cycles=kernel_cycles,
                payload=payload,
            )
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def gc(self) -> tuple[int, int]:
        """Compact to the latest ``done`` record per spec.

        Returns ``(kept, dropped)`` where dropped counts superseded,
        failed, in-flight and torn records removed from the file.  The
        rewrite is atomic: a crash mid-gc leaves the original journal.
        """
        total_lines = 0
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as handle:
                total_lines = sum(
                    1 for line in handle if line.strip()
                )
        kept = [
            record
            for record in self.records()
            if record.status == STATUS_DONE
        ]
        text = "".join(_render_line(record) + "\n" for record in kept)
        atomic_write_text(self.path, text, injector=self.injector)
        self._latest = {record.spec: record for record in kept}
        self.torn_records = 0
        self._tail_torn = False
        return len(kept), total_lines - len(kept)
