"""Canonical serialization for journal records.

Three concerns live here:

- :func:`canonical_json` / :func:`integrity_hash` — the byte-stable
  encoding every journal record is hashed over.  Keys are sorted and
  separators fixed, so the hash of a record is a pure function of its
  contents, independent of dict insertion order or Python version.
- :func:`spec_fingerprint` — the identity of one experiment cell.  It
  is derived *only* from the cell's specification (workload, dataset,
  policy plan, scenario, machine profile name, harness knobs), never
  from object identity — so clearing the runner's caches, restarting
  the process, or re-parsing the same CLI flags all reproduce the same
  fingerprint and a resumed sweep recognizes its own completed cells.
- :func:`encode_result` / :func:`decode_result` — full-fidelity
  round-trip of a :class:`~repro.machine.metrics.RunMetrics` or
  :class:`~repro.experiments.harness.CellFailure` through JSON, so a
  figure regenerated from journal payloads is byte-identical to one
  regenerated from live simulation.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Optional

import numpy as np

from ..errors import JournalError
from ..faults.sites import SITES_BY_NAME
from ..faults.spec import FaultPlan

FINGERPRINT_BYTES = 16
"""Hex characters kept from the spec/integrity sha256 digests."""


def canonical_json(payload: dict[str, Any]) -> str:
    """Byte-stable JSON: sorted keys, fixed separators, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def integrity_hash(payload: dict[str, Any]) -> str:
    """Truncated sha256 over the canonical encoding of ``payload``."""
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()[:FINGERPRINT_BYTES]


# ----------------------------------------------------------------------
# Cell identity
# ----------------------------------------------------------------------


def _plan_fingerprint(plan: Optional[FaultPlan]) -> Optional[str]:
    """The fault plan's cell-facing identity.

    Journal-infrastructure sites (``journal.*``) are excluded: they
    perturb the *recording* of a cell, never its simulation, so a sweep
    interrupted by an armed ``journal.write`` fault and resumed without
    it must still recognize its completed cells.
    """
    if plan is None:
        return None
    specs = [
        f"{spec.site.value}:{spec.trigger_label}"
        for spec in plan.specs
        if not spec.site.value.startswith("journal.")
    ]
    if not specs:
        return None
    return f"{','.join(specs)}@seed={plan.seed}"


def spec_fingerprint(
    workload: str,
    dataset: str,
    policy: Any,
    scenario: Any,
    pagerank_iterations: int,
    profile_name: str,
    fault_plan: Optional[FaultPlan],
    max_retries: int,
    cell_budget: Optional[int],
    cell_cycles: Optional[int] = None,
) -> str:
    """Deterministic identity of one experiment cell.

    Everything that can change the cell's *simulated outcome* is
    included; everything that cannot (wall-clock deadlines, journal
    paths, journal-site faults) is deliberately excluded, so resuming
    under different infrastructure settings still matches.
    """
    spec = {
        "workload": workload,
        "dataset": dataset,
        "policy": policy.name,
        "order": policy.plan.order.value,
        "advise": sorted(policy.plan.advise_fractions.items()),
        "hugetlb": sorted(policy.plan.hugetlb_fractions.items()),
        "reorder": policy.plan.reorder,
        "scenario": {
            "name": scenario.name,
            "pressure_gb": scenario.pressure_gb,
            "frag_level": scenario.frag_level,
            "noise_nonmovable_gb": scenario.noise_nonmovable_gb,
            "noise_movable_gb": scenario.noise_movable_gb,
            "tmpfs_remote": scenario.tmpfs_remote,
        },
        "pagerank_iterations": pagerank_iterations,
        "profile": profile_name,
        "faults": _plan_fingerprint(fault_plan),
        "max_retries": max_retries,
        "cell_budget": cell_budget,
        "cell_cycles": cell_cycles,
    }
    digest = hashlib.sha256(canonical_json(spec).encode("utf-8"))
    return digest.hexdigest()[:FINGERPRINT_BYTES]


# ----------------------------------------------------------------------
# Result payloads
# ----------------------------------------------------------------------


def encode_result(result: Any) -> dict[str, Any]:
    """Encode a cell result (metrics or failure) as a JSON-safe dict."""
    from ..experiments.harness import CellFailure

    if isinstance(result, CellFailure):
        return {
            "kind": "failure",
            "workload": result.workload,
            "dataset": result.dataset,
            "policy": result.policy,
            "scenario": result.scenario,
            "error": result.error,
            "message": result.message,
            "attempts": result.attempts,
            "site": result.site.value if result.site is not None else None,
            "fault_hit": result.fault_hit,
        }
    translation = result.translation
    return {
        "kind": "metrics",
        "workload": result.workload,
        "policy_label": result.policy_label,
        "dataset": result.dataset,
        "translation": {
            "accesses": [int(v) for v in translation.accesses],
            "l1_misses": [int(v) for v in translation.l1_misses],
            "walks": [int(v) for v in translation.walks],
        },
        "array_names": {
            str(array_id): name
            for array_id, name in result.array_names.items()
        },
        "compute_cycles": result.compute_cycles,
        "init_cycles": result.init_cycles,
        "preprocess_cycles": result.preprocess_cycles,
        "init_kernel": result.init_kernel,
        "compute_kernel": result.compute_kernel,
        "swap_ins": result.swap_ins,
        "swap_outs": result.swap_outs,
        "footprint_bytes": result.footprint_bytes,
        "huge_bytes": result.huge_bytes,
        "huge_fraction_per_array": result.huge_fraction_per_array,
        "manager_promotions": result.manager_promotions,
        "manager_demotions": result.manager_demotions,
        "attempts": result.attempts,
        "retry_cycles": result.retry_cycles,
        "context": result.context,
        "trace": result.trace,
        "obs_metrics": result.obs_metrics,
    }


def decode_result(payload: dict[str, Any]) -> Any:
    """Rebuild the cell result :func:`encode_result` serialized.

    Raises:
        JournalError: if the payload's ``kind`` is unknown (a journal
            from a newer/older schema).
    """
    from ..experiments.harness import CellFailure
    from ..machine.metrics import RunMetrics
    from ..tlb.hierarchy import TranslationStats

    kind = payload.get("kind")
    if kind == "failure":
        site = payload.get("site")
        return CellFailure(
            workload=payload["workload"],
            dataset=payload["dataset"],
            policy=payload["policy"],
            scenario=payload["scenario"],
            error=payload["error"],
            message=payload["message"],
            attempts=payload.get("attempts", 1),
            site=SITES_BY_NAME.get(site) if site is not None else None,
            fault_hit=payload.get("fault_hit"),
        )
    if kind != "metrics":
        raise JournalError(f"unknown journal payload kind {kind!r}")
    translation = TranslationStats(
        accesses=np.asarray(payload["translation"]["accesses"], dtype=np.int64),
        l1_misses=np.asarray(
            payload["translation"]["l1_misses"], dtype=np.int64
        ),
        walks=np.asarray(payload["translation"]["walks"], dtype=np.int64),
    )
    return RunMetrics(
        workload=payload["workload"],
        policy_label=payload["policy_label"],
        dataset=payload["dataset"],
        translation=translation,
        array_names={
            int(array_id): name
            for array_id, name in payload["array_names"].items()
        },
        compute_cycles=payload["compute_cycles"],
        init_cycles=payload["init_cycles"],
        preprocess_cycles=payload["preprocess_cycles"],
        init_kernel=payload["init_kernel"],
        compute_kernel=payload["compute_kernel"],
        swap_ins=payload["swap_ins"],
        swap_outs=payload["swap_outs"],
        footprint_bytes=payload["footprint_bytes"],
        huge_bytes=payload["huge_bytes"],
        huge_fraction_per_array=payload["huge_fraction_per_array"],
        manager_promotions=payload["manager_promotions"],
        manager_demotions=payload["manager_demotions"],
        attempts=payload.get("attempts", 1),
        retry_cycles=payload.get("retry_cycles", 0),
        context=payload.get("context", {}),
        trace=payload.get("trace", []),
        obs_metrics=payload.get("obs_metrics", {}),
    )
