"""Durable run state: crash-safe journaling, resume, and the watchdog.

The paper's figures come from large multi-cell sweeps; this package
makes sweep execution restartable and bounded:

- :class:`RunJournal` — an append-only JSONL journal (one
  integrity-hashed record per cell event) written through the atomic /
  durable helpers in :mod:`repro.runstate.atomic`;
- :func:`spec_fingerprint` — cell identity derived purely from the cell
  specification, so resumed sweeps recognize completed cells across
  processes and cache clears;
- :class:`CellWatchdog` — per-cell simulated-cycle budget plus
  wall-clock deadline, absorbing hung cells as ``FAILED(watchdog)``;
- :func:`merge_journals` / :func:`write_merged` — the
  partition-tolerant multi-host journal merge behind ``repro runs
  merge`` (union by fingerprint, split-brain refusal, byte-stable
  output).

See ``docs/checkpointing.md`` for the journal format and resume
semantics, and ``docs/faults.md`` for the ``journal.*`` fault sites
that make the crash path itself testable.
"""

from .atomic import append_durable_line, atomic_write_text
from .journal import (
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_RUNNING,
    JournalRecord,
    RunJournal,
    parse_line,
    render_line,
    scan_records,
)
from .lock import PidLock, live_holder, lock_path_for
from .merge import (
    MergeReport,
    format_conflict_report,
    merge_journals,
    record_digest,
    write_merged,
)
from .serialize import (
    canonical_json,
    decode_result,
    encode_result,
    integrity_hash,
    spec_fingerprint,
)
from .watchdog import CellWatchdog

__all__ = [
    "CellWatchdog",
    "JournalRecord",
    "MergeReport",
    "PidLock",
    "RunJournal",
    "STATUS_DONE",
    "STATUS_FAILED",
    "STATUS_RUNNING",
    "append_durable_line",
    "atomic_write_text",
    "canonical_json",
    "decode_result",
    "encode_result",
    "format_conflict_report",
    "integrity_hash",
    "live_holder",
    "lock_path_for",
    "merge_journals",
    "parse_line",
    "record_digest",
    "render_line",
    "scan_records",
    "spec_fingerprint",
    "write_merged",
]
