"""Pidfile-based liveness lock for run-state files.

A journal is owned by at most one live process at a time: the sweep or
server writing it.  Maintenance commands (``repro runs gc``) and a
second ``repro serve`` on the same journal must *refuse* to touch a
journal whose owner is still alive — compacting a file another process
is appending to would corrupt the exactly-once accounting the chaos
harness verifies.

The lock is a sidecar file (``<journal>.lock``) containing the owner's
PID.  Liveness is checked with ``os.kill(pid, 0)``: a lock whose owner
is dead (a crashed or SIGKILLed sweep) is *stale* and silently broken —
crash recovery must never require manual lock cleanup.  Acquisition is
atomic (``O_CREAT | O_EXCL``), and re-acquiring from the owning process
itself succeeds (one process may build several ``RunJournal`` views of
the same path).

This is a liveness guard, not a byte-range lock: it serializes *owners*
(one writer process per journal), which is the only discipline the
append-only journal needs.
"""

from __future__ import annotations

import atexit
import os
from typing import Optional

from ..errors import JournalLockedError

LOCK_SUFFIX = ".lock"


def lock_path_for(path: str) -> str:
    """The sidecar lock path guarding ``path``."""
    return os.fspath(path) + LOCK_SUFFIX


def pid_alive(pid: int) -> bool:
    """True when ``pid`` names a live process we can see.

    ``PermissionError`` means the process exists but belongs to someone
    else — that still counts as alive (never steal a foreign lock).
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def read_holder(lock_path: str) -> Optional[int]:
    """The PID recorded in ``lock_path``, or ``None`` if absent/garbled."""
    try:
        with open(lock_path, "r", encoding="utf-8") as handle:
            text = handle.read().strip()
    except OSError:
        return None
    try:
        return int(text.split()[0])
    except (ValueError, IndexError):
        return None


def live_holder(path: str) -> Optional[int]:
    """The live PID holding the lock for ``path``, or ``None``.

    ``path`` is the *protected* file (e.g. the journal); the sidecar
    lock is derived.  A recorded-but-dead holder is reported as ``None``
    — stale locks never block anyone.
    """
    holder = read_holder(lock_path_for(path))
    if holder is None or not pid_alive(holder):
        return None
    return holder


class PidLock:
    """Advisory single-owner lock on one run-state file.

    Usage::

        lock = PidLock(journal_path)
        lock.acquire()   # raises JournalLockedError if a live foreign
                         # process owns it; breaks stale locks silently
        ...
        lock.release()   # also registered atexit

    The lock content is ``"<pid>\\n"``; liveness — not file existence —
    is what blocks acquisition, so a SIGKILLed owner never wedges the
    journal.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self.lock_path = lock_path_for(self.path)
        self._owned = False

    @property
    def owned(self) -> bool:
        return self._owned

    def acquire(self) -> None:
        """Take the lock, breaking stale (dead-owner) locks.

        Raises:
            JournalLockedError: a different live process holds it.
        """
        if self._owned:
            return
        pid = os.getpid()
        while True:
            try:
                fd = os.open(
                    self.lock_path,
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                    0o644,
                )
            except FileExistsError:
                holder = read_holder(self.lock_path)
                if holder == pid:
                    # Same process re-acquiring (a second RunJournal
                    # view of the same path): already ours.
                    self._owned = True
                    atexit.register(self.release)
                    return
                if holder is not None and pid_alive(holder):
                    raise JournalLockedError(
                        f"{self.path!r} is locked by live process "
                        f"{holder} ({self.lock_path}); refusing to "
                        "take over a journal another run/server owns"
                    )
                # Stale (dead owner or garbled): break it and retry.
                try:
                    os.unlink(self.lock_path)
                except FileNotFoundError:
                    pass
                continue
            try:
                os.write(fd, f"{pid}\n".encode("ascii"))
            finally:
                os.close(fd)
            self._owned = True
            atexit.register(self.release)
            return

    def release(self) -> None:
        """Drop the lock if we own it (idempotent; atexit-safe)."""
        if not self._owned:
            return
        self._owned = False
        if read_holder(self.lock_path) == os.getpid():
            try:
                os.unlink(self.lock_path)
            except FileNotFoundError:
                pass

    def __enter__(self) -> "PidLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
