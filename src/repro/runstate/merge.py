"""Partition-tolerant journal merge (``repro runs merge``).

A distributed sweep leaves one journal per host: the coordinator's
(written in spec order at batch commit) and one per worker agent
(written in lease-completion order).  After a partition or a coordinator
crash, the union of those shards is the sweep's durable state.  This
module merges N shards into one canonical journal:

- **Union by spec fingerprint.**  Records are grouped by ``spec``; the
  fingerprint is derived from the cell specification alone
  (:func:`~repro.runstate.serialize.spec_fingerprint`), so the same
  cell executed on two hosts lands in the same group no matter which
  host ran it.
- **Integrity-verified, torn-tolerant reads.**  Each line is validated
  against its own integrity hash (:func:`~repro.runstate.journal
  .parse_line`); torn trailing records — a worker SIGKILLed mid-append —
  are counted and skipped, never fatal.
- **Split-brain refusal.**  Cells are deterministic, so two ``done``
  records for one fingerprint must agree on everything but ``seq``.  If
  their semantic digests differ the shards were produced under
  divergent settings (or one is corrupt) and the merge raises
  :class:`~repro.errors.MergeConflictError` naming every conflicting
  fingerprint and the shard each variant came from — it never guesses a
  winner.
- **Byte-stable, order-independent output.**  Kept records (the
  ``done`` set, like ``runs gc``) are sorted by fingerprint and
  renumbered ``seq`` 1..N, so ``merge(a, b)`` and ``merge(b, a)`` — and
  ``merge(serial_reference)`` over the same completed cells — produce
  identical bytes.  ``running`` and ``failed`` records are dropped:
  resume semantics never reuse them, and a re-leased cell's stale
  ``running`` entry on a partitioned worker must not shadow the
  completed result streamed from its replacement.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..errors import JournalError, MergeConflictError
from .atomic import atomic_write_text
from .journal import STATUS_DONE, JournalRecord, parse_line, render_line
from .serialize import integrity_hash


def record_digest(record: JournalRecord) -> str:
    """The semantic identity of one record: everything but ``seq``.

    ``seq`` is shard-local bookkeeping (two hosts number their appends
    independently); the cell coordinates, status, attempts, kernel
    cycles and full payload are deterministic functions of the spec, so
    any divergence in them is a real conflict.
    """
    body = record.to_dict()
    body.pop("seq", None)
    return integrity_hash(body)


@dataclass
class ShardStats:
    """What one shard contributed to the merge."""

    path: str
    records: int = 0
    done: int = 0
    torn: int = 0


@dataclass
class MergeReport:
    """The outcome of one conflict-free merge."""

    text: str
    """The merged journal, byte-stable and order-independent."""
    kept: int = 0
    """Completed cells (one ``done`` record each) in the output."""
    duplicates: int = 0
    """Identical ``done`` records dropped as exact re-executions."""
    dropped: int = 0
    """``running``/``failed``/superseded records left out."""
    shards: list[ShardStats] = field(default_factory=list)


def _scan_shard(path: str) -> tuple[ShardStats, list[JournalRecord]]:
    stats = ShardStats(path=path)
    records: list[JournalRecord] = []
    if not os.path.exists(path):
        # A missing shard is an empty shard: a worker that leased
        # nothing before the partition simply has no journal yet.
        return stats, records
    if os.path.isdir(path):
        raise JournalError(f"journal shard {path!r} is a directory")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        raise JournalError(
            f"cannot read journal shard {path!r}: {exc}"
        ) from exc
    for line in lines:
        if not line.strip():
            continue
        record = parse_line(line)
        if record is None:
            stats.torn += 1
            continue
        stats.records += 1
        if record.status == STATUS_DONE:
            stats.done += 1
        records.append(record)
    return stats, records


def merge_journals(paths: Sequence[str]) -> MergeReport:
    """Merge N journal shards into one canonical journal text.

    Raises:
        MergeConflictError: two shards hold semantically different
            ``done`` records for the same spec fingerprint
            (split-brain) — the report names every such fingerprint.
        JournalError: a shard path exists but cannot be read.
    """
    if not paths:
        raise JournalError("merge needs at least one journal shard")
    report = MergeReport(text="")
    # spec -> digest -> (record, first source path); insertion order of
    # the digest map preserves which variant was seen first, purely for
    # the conflict report — a conflict refuses, it never picks.
    done: dict[str, dict[str, tuple[JournalRecord, str]]] = {}
    for path in paths:
        stats, records = _scan_shard(path)
        report.shards.append(stats)
        for record in records:
            if record.status != STATUS_DONE:
                report.dropped += 1
                continue
            variants = done.setdefault(record.spec, {})
            digest = record_digest(record)
            if digest in variants:
                report.duplicates += 1
            else:
                variants[digest] = (record, path)

    conflicts: list[dict[str, Any]] = []
    for spec in sorted(done):
        variants = done[spec]
        if len(variants) > 1:
            first = next(iter(variants.values()))[0]
            conflicts.append(
                {
                    "spec": spec,
                    "label": first.label,
                    "variants": [
                        {
                            "source": source,
                            "digest": digest,
                            "status": record.status,
                        }
                        for digest, (record, source) in variants.items()
                    ],
                }
            )
    if conflicts:
        raise MergeConflictError(conflicts)

    lines = []
    for seq, spec in enumerate(sorted(done), start=1):
        (record, _source) = next(iter(done[spec].values()))
        merged = JournalRecord(
            seq=seq,
            spec=record.spec,
            status=record.status,
            cell=record.cell,
            attempts=record.attempts,
            kernel_cycles=record.kernel_cycles,
            payload=record.payload,
        )
        lines.append(render_line(merged))
    report.kept = len(lines)
    report.text = "".join(line + "\n" for line in lines)
    return report


def write_merged(paths: Sequence[str], out_path: str) -> MergeReport:
    """Merge shards and write the result atomically to ``out_path``.

    The write is a whole-file atomic replace: a crash mid-merge leaves
    either the previous file or the complete new one, never a torn mix.
    """
    report = merge_journals(paths)
    atomic_write_text(out_path, report.text)
    return report


def format_conflict_report(error: MergeConflictError) -> str:
    """The named-fingerprint refusal report for the CLI (stderr)."""
    lines = [
        "merge refused: conflicting results (split-brain) for "
        f"{len(error.conflicts)} fingerprint(s):"
    ]
    for conflict in error.conflicts:
        lines.append(f"  spec {conflict['spec']}  ({conflict['label']})")
        for variant in conflict["variants"]:
            lines.append(
                f"    digest {variant['digest']}  from {variant['source']}"
            )
    lines.append(
        "no records were written; re-run the divergent cells under "
        "identical settings or drop the corrupt shard, then merge again"
    )
    return "\n".join(lines)
