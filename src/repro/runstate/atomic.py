"""Durable write primitives for run-state files.

Two write disciplines, matching the two kinds of run-state file:

- :func:`atomic_write_text` — whole-file replacement via
  write-to-temp + fsync + ``os.replace``.  Readers never observe a
  partial file: they see either the old contents or the new, which is
  what figure outputs and journal compaction (``runs gc``) need.
- :func:`append_durable_line` — append one newline-terminated record to
  an existing file with flush + fsync.  Appends can tear (a crash mid-
  write leaves a prefix of the line), which is why every journal record
  carries an integrity hash (:mod:`repro.runstate.journal`) and torn
  records are detected on load and treated as never written.

Both helpers expose the fault sites ``journal.write`` (evaluated before
bytes reach the file; on fire the helper *tears* the record — writes a
truncated prefix — before re-raising, so crash-mid-write is genuinely
simulated) and ``journal.fsync`` (evaluated between write and fsync; on
fire the bytes are in the file but durability is unknown).

Everything else in the repository that persists journal or result files
must route through these helpers — rule ``REP007`` in
:mod:`repro.analysis` enforces it.
"""

from __future__ import annotations

import os
from typing import Optional

from ..faults.injector import FaultInjector
from ..faults.sites import FaultSite


def _fsync_directory(path: str) -> None:
    """fsync the directory entry so a rename/append survives a crash."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platforms/filesystems without directory fsync
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_text(
    path: str,
    text: str,
    injector: Optional[FaultInjector] = None,
) -> None:
    """Replace ``path``'s contents atomically (write-temp-then-rename).

    The temporary file lives in the target's directory so the final
    ``os.replace`` stays within one filesystem and is atomic.  A crash
    at any point leaves either the old file or the new file, never a
    mix; the orphaned ``.tmp`` is overwritten by the next write.
    """
    path = os.fspath(path)
    if injector is not None:
        injector.check(FaultSite.JOURNAL_WRITE)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        if injector is not None:
            injector.check(FaultSite.JOURNAL_FSYNC)
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    _fsync_directory(path)


def append_durable_line(
    path: str,
    line: str,
    injector: Optional[FaultInjector] = None,
) -> None:
    """Append one record line to ``path`` with flush + fsync.

    ``line`` must not contain a newline; the terminator is added here.
    When the ``journal.write`` fault fires, a *prefix* of the line is
    written before the error propagates — deliberately simulating the
    torn record a real crash mid-append leaves behind, so recovery
    paths are exercised against genuine tearing.
    """
    path = os.fspath(path)
    if "\n" in line:
        raise ValueError("journal records are single lines")
    if injector is not None:
        try:
            injector.check(FaultSite.JOURNAL_WRITE)
        except Exception:
            # Crash mid-write: half the record reaches the disk.
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(line[: max(1, len(line) // 2)])
                handle.flush()
                os.fsync(handle.fileno())
            raise
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        if injector is not None:
            injector.check(FaultSite.JOURNAL_FSYNC)
        os.fsync(handle.fileno())
