"""The simulated evaluation machine (paper Table 1, §3.1).

A :class:`Machine` bundles the substrates — physical memory across NUMA
nodes, page cache, swap device, THP policy, TLB hierarchy — and runs
instrumented workloads through them, producing
:class:`~repro.machine.metrics.RunMetrics`.

Mirroring the paper's methodology, the application is bound to one NUMA
node (``membind``); graph input files can be staged through the page
cache either on the application's node (the interfering default) or on
the remote node via tmpfs (the paper's mitigation).  Scenario state —
memory pressure (memhog), fragmentation (frag), background noise — is
applied by the experiment harness through the setup helpers before
:meth:`Machine.run`.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.sanitizer import make_sanitizer
from ..config import MachineConfig, scaled
from ..core.plan import PlacementPlan
from ..errors import CellBudgetExceededError
from ..faults.injector import FaultInjector
from ..faults.spec import FaultPlan
from ..mem.frag import Fragmenter
from ..mem.heuristics import HugePageManager
from ..mem.memhog import Memhog
from ..mem.noise import BackgroundNoise
from ..mem.page_cache import PageCache
from ..mem.physical import PhysicalMemory
from ..mem.profiler import PageProfiler
from ..mem.swap import SwapDevice
from ..mem.thp import ThpPolicy
from ..mem.vmm import VirtualMemoryManager
from ..obs.tracer import Tracer
from ..runstate.watchdog import CellWatchdog
from ..tlb.engine import make_hierarchy
from ..tlb.hierarchy import TranslationStats
from ..workloads.base import ARRAY_NAMES, Workload
from ..workloads.layout import MemoryLayout
from .metrics import RunMetrics
from .process import SimProcess

INPUT_FILE = "graph-input"
"""Name under which the workload's input file is cached."""


class Machine:
    """A two-node machine running one graph workload at a time."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        thp: Optional[ThpPolicy] = None,
        faults: Optional[FaultPlan] = None,
        injector: Optional[FaultInjector] = None,
        sanitize: Optional[bool] = None,
        trace: "Optional[Tracer | bool]" = None,
        tlb_engine: str = "auto",
    ) -> None:
        self.config = config if config is not None else scaled()
        # Translation engine policy ("exact" | "batch" | "auto"); both
        # engines produce identical counts, so this is an execution
        # knob, never part of a cell's identity.
        self.tlb_engine = tlb_engine
        self.thp = thp if thp is not None else ThpPolicy.never()
        if injector is None:
            plan = faults if faults is not None else self.config.fault_plan
            if plan is not None and plan.enabled:
                injector = plan.make_injector()
        self.fault_injector = injector
        if injector is not None:
            # The THP engine consults the injector through its gates
            # (promotion / demotion / khugepaged stalls).
            self.thp.injector = injector
        # MemSan: sanitize=None defers to REPRO_SANITIZE / set_sanitize();
        # an explicit False wins over the environment (the overhead
        # benchmark's baseline needs a guaranteed-off machine).
        self.sanitizer = make_sanitizer(sanitize)
        self.thp.sanitizer = self.sanitizer
        self.physical = PhysicalMemory(
            self.config, injector=injector, sanitizer=self.sanitizer
        )
        self.page_cache = PageCache(self.physical.nodes, injector=injector)
        self.swap = SwapDevice(injector=injector)
        # Observability (docs/observability.md): trace=True builds a
        # fresh Tracer, trace=Tracer() attaches the caller's, None/False
        # leaves every subsystem hook at its zero-cost `None` state.
        if trace is True:
            trace = Tracer()
        elif trace is False:
            trace = None
        self.tracer: Optional[Tracer] = trace
        if trace is not None:
            # The tracer's clock is the *current* kernel ledger, read at
            # every emission — finish_setup()'s ledger swap is picked up
            # transparently.
            trace.bind_clock(lambda: self.physical.ledger.total_cycles)
            self.thp.tracer = trace
            for node in self.physical.nodes:
                node.tracer = trace
            self.page_cache.tracer = trace
            self.swap.tracer = trace
        self.hugetlb_pool = None
        # The application binds to the last node; node 0 is "remote"
        # (where tmpfs-staged input lives in the paper's setup).
        self.app_node_id = self.config.num_nodes - 1
        self.remote_node_id = 0

    @property
    def app_node(self):
        """Frame map of the node the application is bound to."""
        return self.physical.node(self.app_node_id)

    # ------------------------------------------------------------------
    # Scenario setup helpers (used by the experiment harness)
    # ------------------------------------------------------------------

    def memhog_leave_free(self, free_bytes: int) -> Memhog:
        """Pin all but ``free_bytes`` of the app node (memhog + mlock)."""
        hog = Memhog(self.app_node)
        hog.leave_free_bytes(free_bytes)
        return hog

    def fragment(self, level: float) -> Fragmenter:
        """Fragment ``level`` of the app node's free memory with
        non-movable sentinel pages (the paper's ``frag`` tool)."""
        frag = Fragmenter(self.app_node)
        frag.fragment(level)
        return frag

    def reserve_hugetlb(self, num_regions: int) -> int:
        """Boot-time hugetlbfs reservation on the app node (must run
        *before* pressure/fragmentation setup to model
        ``vm.nr_hugepages`` at boot).  Returns regions reserved."""
        from ..mem.hugetlb import HugetlbPool

        if self.hugetlb_pool is None:
            self.hugetlb_pool = HugetlbPool(self.app_node)
        return self.hugetlb_pool.reserve(num_regions)

    def scatter_noise(
        self, nonmovable_bytes: int = 0, movable_bytes: int = 0, seed: int = 0
    ) -> BackgroundNoise:
        """Plant long-running-system background noise on the app node."""
        noise = BackgroundNoise(self.app_node)
        noise.scatter(nonmovable_bytes, movable_bytes, seed=seed)
        return noise

    def finish_setup(self) -> None:
        """Mark the end of scenario setup: kernel work done so far (by
        memhog/frag/noise) is not charged to the measured run."""
        self.physical.reset_ledger()
        self.swap.reset()

    # ------------------------------------------------------------------
    # The measured run
    # ------------------------------------------------------------------

    def run(
        self,
        workload: Workload,
        plan: Optional[PlacementPlan] = None,
        load_bytes: int = 0,
        tmpfs_remote: bool = True,
        drop_cache_after_load: bool = False,
        preprocess_accesses: int = 0,
        dataset: str = "",
        manager: Optional[HugePageManager] = None,
        access_budget: Optional[int] = None,
        watchdog: Optional[CellWatchdog] = None,
    ) -> RunMetrics:
        """Execute one workload end to end and measure it.

        Phases, matching the paper's application structure (Fig. 4):

        1. *Load*: stage ``load_bytes`` of input through the page cache —
           on the remote node when ``tmpfs_remote`` (the paper's
           interference-free methodology) or on the application's node
           (the realistic default the paper warns about).
        2. *Initialize*: map and first-touch every array in the plan's
           allocation order; the THP policy allocates huge pages at fault
           time as eligibility and physical contiguity allow, then a
           khugepaged pass promotes what the fault path missed.
        3. *Compute*: run the kernel, translating its access streams
           through the TLB hierarchy and servicing swap faults if memory
           was oversubscribed.  When a :class:`HugePageManager` is
           supplied, it observes each iteration's trace through a
           :class:`PageProfiler` and may promote/demote between
           iterations (khugepaged-style asynchrony); its work is charged
           to kernel time and promotions shoot down the TLB.

        The returned metrics charge phases separately; kernel-time
        speedups between runs reproduce the paper's figures.

        ``access_budget`` caps the compute phase's simulated accesses —
        the harness's runaway guard.  The check runs once per access
        stream, so a cell stops within one workload iteration of the
        budget instead of consuming a whole figure batch's time.

        ``watchdog`` (a :class:`~repro.runstate.watchdog.CellWatchdog`)
        additionally bounds the run by simulated-cycle budget and
        wall-clock deadline, checked at the same per-stream cadence
        (plus once after initialization, so an init-phase runaway is
        caught too).

        Raises:
            CellBudgetExceededError: if the compute phase passes
                ``access_budget`` simulated accesses.
            WatchdogExpiredError: if the watchdog's cycle budget or
                wall-clock deadline is exceeded.
            InjectedFaultError: if a fault plan is armed and one of its
                sites fires during the run.
        """
        if plan is None:
            plan = PlacementPlan.none()
        if watchdog is not None:
            watchdog.start()
        ledger = self.physical.ledger
        init_start_cycles = ledger.total_cycles
        tracer = self.tracer

        # Phase 1: load.
        if tracer is not None:
            tracer.emit("phase.begin", phase="load")
        if load_bytes:
            cache_node = (
                self.remote_node_id if tmpfs_remote else self.app_node_id
            )
            self.page_cache.read_file(INPUT_FILE, load_bytes, cache_node)
        load_cycles = ledger.total_cycles - init_start_cycles
        if tracer is not None:
            tracer.emit("phase.end", phase="load", phase_cycles=load_cycles)
            tracer.emit("phase.begin", phase="init")

        # Phase 2: initialize.
        vmm = VirtualMemoryManager(self.app_node, self.thp, self.config)
        if self.config.swap_enabled:
            vmm.swap_device = self.swap
        layout = MemoryLayout(workload, plan.order)
        process = SimProcess(vmm, workload, layout, self.config)
        process.allocate_and_touch(plan, hugetlb_pool=self.hugetlb_pool)
        vmm.khugepaged_pass()
        if drop_cache_after_load:
            self.page_cache.evict_file(INPUT_FILE)
        if self.sanitizer is not None:
            # End-of-initialization sweep: the fault storm, khugepaged
            # pass and page-cache staging must leave every map coherent.
            self.sanitizer.verify_vmm(vmm)
            self.sanitizer.verify_node(self.app_node)
            self.sanitizer.verify_page_cache(self.page_cache)
        init_kernel = ledger.snapshot()
        init_counts = dict(ledger.counts)
        init_cycle_counts = dict(ledger.cycles)
        init_cycles = ledger.total_cycles - init_start_cycles
        if watchdog is not None:
            watchdog.check(init_cycles)
        if tracer is not None:
            tracer.emit(
                "phase.end",
                phase="init",
                phase_cycles=init_cycles - load_cycles,
            )
            tracer.emit("phase.begin", phase="compute")

        # Phase 3: compute.
        cost = self.config.cost
        hierarchy = make_hierarchy(self.tlb_engine, self.config.tlb)
        hierarchy.tracer = tracer
        stats = TranslationStats()
        compute_start_cycles = ledger.total_cycles
        swap_ins = 0
        swap_outs = 0
        check_swap = process.has_swapped_pages()
        profiler: Optional[PageProfiler] = None
        if manager is not None:
            profiler = PageProfiler(self.config)
            for vma in process.vma_by_array.values():
                profiler.track(vma)
            manager.attach(process, profiler, self.config)
        for stream in workload.run():
            trace = process.translate(stream)
            if check_swap:
                ins, outs = process.service_swap(trace)
                swap_ins += ins
                swap_outs += outs
            hierarchy.simulate(trace, stats)
            if (
                access_budget is not None
                and stats.total_accesses > access_budget
            ):
                raise CellBudgetExceededError(
                    f"cell exceeded its access budget: "
                    f"{stats.total_accesses:,} simulated accesses > "
                    f"budget {access_budget:,}"
                )
            if watchdog is not None:
                # Same expression as the final compute_cycles, evaluated
                # incrementally; only paid when a watchdog is armed.
                watchdog.check(
                    init_cycles
                    + int(
                        stats.total_accesses * cost.mem_access
                        + stats.translation_cycles(cost)
                        + (ledger.total_cycles - compute_start_cycles)
                    )
                )
            if manager is not None and profiler is not None:
                profiler.observe(trace, process.vma_by_array)
                if manager.on_iteration():
                    # Promotions rewrite page tables: full shootdown.
                    hierarchy.flush()
        kernel_stall_cycles = ledger.total_cycles - compute_start_cycles

        compute_cycles = int(
            stats.total_accesses * cost.mem_access
            + stats.translation_cycles(cost)
            + kernel_stall_cycles
        )
        preprocess_cycles = int(preprocess_accesses * cost.mem_access)
        if tracer is not None:
            tracer.emit(
                "phase.end", phase="compute", phase_cycles=compute_cycles
            )

        metrics = RunMetrics(
            workload=workload.name,
            policy_label=plan.label,
            dataset=dataset,
            translation=stats,
            array_names={
                array_id: ARRAY_NAMES[array_id]
                for array_id in workload.array_ids()
            },
            compute_cycles=compute_cycles,
            init_cycles=init_cycles,
            preprocess_cycles=preprocess_cycles,
            init_kernel=init_kernel,
            compute_kernel={
                "counts": {
                    k: v - init_counts.get(k, 0)
                    for k, v in ledger.counts.items()
                    if v - init_counts.get(k, 0)
                },
                "cycles": {
                    k: v - init_cycle_counts.get(k, 0)
                    for k, v in ledger.cycles.items()
                    if v - init_cycle_counts.get(k, 0)
                },
            },
            swap_ins=swap_ins,
            swap_outs=swap_outs,
            footprint_bytes=process.footprint_bytes(),
            huge_bytes=process.total_huge_bytes(),
            huge_fraction_per_array=process.huge_fraction_per_array(),
            manager_promotions=(
                manager.total_promotions if manager is not None else 0
            ),
            manager_demotions=(
                manager.total_demotions if manager is not None else 0
            ),
        )

        # Restore machine state so further runs see the same scenario.
        process.release()
        self.page_cache.evict_file(INPUT_FILE)
        if self.sanitizer is not None:
            # Teardown sweep: the released process must leave no frame
            # behind (leak detection) and the node map must be coherent.
            self.sanitizer.verify_teardown(vmm)
            self.sanitizer.verify_node(self.app_node)
        if tracer is not None:
            # Snapshot counters *before* drain() — drain resets the
            # registry along with the event buffer.
            metrics.obs_metrics = tracer.metrics.snapshot()
            metrics.trace = tracer.drain()
        return metrics

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def free_bytes(self) -> int:
        """Free memory on the application's node."""
        return self.app_node.free_bytes

    def fragmentation_level(self) -> float:
        """Current fragmentation of the app node's free memory."""
        return self.app_node.fragmentation_level()
