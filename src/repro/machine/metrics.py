"""Per-run measurements.

A :class:`RunMetrics` captures everything the paper's experiment scripts
record for one application run (Appendix §6): kernel computation time,
initialization (user + kernel memory-management) time, TLB miss rates,
page-walk rates, and — beyond the paper's perf counters — exact huge-page
usage per data structure, which the paper could only infer.

Cycle counts are deterministic functions of the simulated event counts
and the profile's cost model; speedups between runs of the same workload
and dataset are therefore exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..tlb.hierarchy import TranslationStats


@dataclass
class RunMetrics:
    """Results of one simulated workload run."""

    workload: str
    policy_label: str
    dataset: str = ""

    # Translation behaviour (the paper's Fig. 2/3 outputs).
    translation: TranslationStats = field(default_factory=TranslationStats)
    array_names: dict[int, str] = field(default_factory=dict)

    # Cycle accounting.
    compute_cycles: int = 0
    init_cycles: int = 0
    preprocess_cycles: int = 0

    # Memory-management activity.
    init_kernel: dict[str, dict[str, int]] = field(default_factory=dict)
    compute_kernel: dict[str, dict[str, int]] = field(default_factory=dict)
    swap_ins: int = 0
    swap_outs: int = 0

    # Huge page usage (the paper's §4.5 / abstract budget numbers).
    footprint_bytes: int = 0
    huge_bytes: int = 0
    huge_fraction_per_array: dict[str, float] = field(default_factory=dict)

    # Run-time huge-page management (heuristic managers / autotuner).
    manager_promotions: int = 0
    manager_demotions: int = 0

    # Harness resilience: attempts taken to produce this result and the
    # deterministic simulated backoff charged for the failed ones.
    attempts: int = 1
    retry_cycles: int = 0

    # Free-form context attached by the harness (scenario parameters).
    context: dict[str, Any] = field(default_factory=dict)

    # Observability (docs/observability.md): structured events drained
    # from the machine's tracer and the counter/gauge snapshot taken at
    # drain time.  Both empty when tracing is off.
    trace: list[dict[str, Any]] = field(default_factory=list)
    obs_metrics: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True — this cell produced metrics (see ``CellFailure.ok``)."""
        return True

    @property
    def total_cycles(self) -> int:
        """End-to-end runtime: preprocessing + init + kernel compute,
        plus any retry backoff the harness charged."""
        return (
            self.preprocess_cycles
            + self.init_cycles
            + self.compute_cycles
            + self.retry_cycles
        )

    @property
    def kernel_cycles(self) -> int:
        """The paper's primary metric ("total kernel computation time"):
        algorithm execution including any swap stalls, excluding data
        loading/initialization.  Preprocessing (DBG) is charged here, as
        the paper "account[s] for the preprocessing times when measuring
        application runtimes" (§5.1.2).  Retry backoff cycles (injected
        faults survived by the harness) are charged here too — a retried
        cell is slower, exactly as a retried real run would be."""
        return self.compute_cycles + self.preprocess_cycles + self.retry_cycles

    @property
    def dtlb_miss_rate(self) -> float:
        """First-level data TLB miss rate (Fig. 3 bar heights)."""
        return self.translation.l1_miss_rate

    @property
    def walk_rate(self) -> float:
        """Page-walk (STLB miss) rate (Fig. 3 striped portion)."""
        return self.translation.walk_rate

    @property
    def huge_footprint_fraction(self) -> float:
        """Fraction of the application footprint backed by huge pages
        (the 0.58–2.92% headline statistic)."""
        if self.footprint_bytes == 0:
            return 0.0
        return self.huge_bytes / self.footprint_bytes

    def speedup_over(self, baseline: "RunMetrics") -> float:
        """Kernel-time speedup of this run relative to ``baseline``."""
        if self.kernel_cycles == 0:
            return float("inf")
        return baseline.kernel_cycles / self.kernel_cycles

    def per_array_translation(self) -> dict[str, dict[str, int]]:
        """Access/miss/walk counts broken down by data structure."""
        return self.translation.per_array(self.array_names)

    def summary(self) -> dict[str, Any]:
        """A flat dict for table rendering and JSON export."""
        return {
            "workload": self.workload,
            "dataset": self.dataset,
            "policy": self.policy_label,
            "kernel_cycles": self.kernel_cycles,
            "init_cycles": self.init_cycles,
            "total_cycles": self.total_cycles,
            "accesses": self.translation.total_accesses,
            "dtlb_miss_rate": round(self.dtlb_miss_rate, 4),
            "walk_rate": round(self.walk_rate, 4),
            "huge_bytes": self.huge_bytes,
            "huge_footprint_fraction": round(
                self.huge_footprint_fraction, 4
            ),
            "swap_ins": self.swap_ins,
            "swap_outs": self.swap_outs,
            "attempts": self.attempts,
            "retry_cycles": self.retry_cycles,
        }
