"""Simulated process: array mapping and address translation.

:class:`SimProcess` owns the binding between a workload's logical arrays
and the VMAs backing them, translates logical access streams into
page-granular TLB traces, and services swap faults during the compute
phase when memory is oversubscribed.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..config import MachineConfig
from ..core.plan import PlacementPlan
from ..mem.thp import ThpMode
from ..mem.vmm import VirtualMemoryManager, Vma
from ..tlb.trace import AccessStream, TlbTrace, compress_trace
from ..workloads.base import Workload
from ..workloads.layout import MemoryLayout


class SimProcess:
    """One workload's address-space state on a machine."""

    def __init__(
        self,
        vmm: VirtualMemoryManager,
        workload: Workload,
        layout: MemoryLayout,
        config: MachineConfig,
    ) -> None:
        self.vmm = vmm
        self.workload = workload
        self.layout = layout
        self.config = config
        self.vma_by_array: dict[int, Vma] = {}
        self._start_vpn: dict[int, int] = {}
        self._start_hvpn: dict[int, int] = {}
        self._elem_bytes: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Initialization phase
    # ------------------------------------------------------------------

    def allocate_and_touch(
        self, plan: PlacementPlan, hugetlb_pool=None
    ) -> None:
        """Map and first-touch every array in the layout's order.

        ``madvise`` advice from the plan is applied *before* touching (as
        a programmer would), so fault-time THP allocation sees it.  Advice
        only matters when the THP mode is ``madvise``; under ``always``
        every eligible chunk is huge-candidate regardless.

        Arrays with a ``hugetlb_fractions`` entry have their leading
        chunks mapped from the boot-time reservation pool first (the
        explicit hugetlbfs mmap), with the remainder demand-faulted as
        usual.
        """
        pages = self.config.pages
        for spec in self.layout.allocation_sequence():
            vma = self.vmm.mmap(spec.name, spec.length_bytes)
            pool_fraction = plan.hugetlb_fractions.get(spec.array_id)
            if pool_fraction is not None and hugetlb_pool is not None:
                self._back_from_pool(vma, pool_fraction, hugetlb_pool)
            fraction = plan.advise_fractions.get(spec.array_id)
            if fraction is not None and self.vmm.policy.mode is ThpMode.MADVISE:
                advise_len = max(1, int(spec.length_bytes * fraction))
                self.vmm.madvise_huge(vma, 0, advise_len)
            self.vmm.touch(vma)
            self.vma_by_array[spec.array_id] = vma
            self._start_vpn[spec.array_id] = vma.start >> pages.base_shift
            self._start_hvpn[spec.array_id] = vma.start >> pages.huge_shift
            self._elem_bytes[spec.array_id] = spec.element_bytes

    def _back_from_pool(self, vma, fraction: float, pool) -> None:
        """Map the leading ``fraction`` of a VMA from the reservation."""
        huge = self.config.pages.huge_page_size
        want_bytes = max(1, int(vma.length * fraction))
        want_chunks = -(-want_bytes // huge)
        for chunk in range(min(want_chunks, vma.nchunks)):
            if not vma.chunk_is_full(chunk) or pool.available == 0:
                break
            self.vmm.back_chunk_from_pool(vma, chunk, pool)

    def release(self) -> None:
        """Unmap every array (end of run), freeing physical memory."""
        for vma in list(self.vma_by_array.values()):
            self.vmm.unmap(vma)
        self.vma_by_array.clear()

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------

    def translate(self, stream: AccessStream) -> TlbTrace:
        """Turn a logical access stream into a compressed TLB trace.

        Page keys follow :mod:`repro.tlb.trace`: base-page accesses get
        ``(vpn << 1)``, accesses landing in huge-mapped pages get
        ``(huge_vpn << 1) | 1``.  The per-page size map is the VMM's
        ground truth, so promotions/demotions between streams are
        reflected automatically.
        """
        pages = self.config.pages
        base_shift = pages.base_shift
        huge_shift = pages.huge_shift
        aids = stream.array_ids
        keys = np.empty(aids.size, dtype=np.int64)
        for array_id in np.unique(aids):
            array_id = int(array_id)
            mask = aids == array_id
            vma = self.vma_by_array[array_id]
            offsets = stream.indices[mask] * self._elem_bytes[array_id]
            page = offsets >> base_shift
            base_keys = (self._start_vpn[array_id] + page) << 1
            huge_keys = (
                (self._start_hvpn[array_id] + (offsets >> huge_shift)) << 1
            ) | 1
            keys[mask] = np.where(vma.is_huge[page], huge_keys, base_keys)
        return compress_trace(keys, aids)

    # ------------------------------------------------------------------
    # Swap servicing (oversubscribed memory)
    # ------------------------------------------------------------------

    def has_swapped_pages(self) -> bool:
        """Whether any mapped page currently lives on the swap device."""
        return any(
            vma.swapped_pages > 0 for vma in self.vma_by_array.values()
        )

    def service_swap(self, trace: TlbTrace) -> tuple[int, int]:
        """Simulate demand paging over a trace under oversubscription.

        Maintains a FIFO residency set sized by the pages that are
        resident at trace start; every access to a non-resident base page
        swaps it in and evicts the FIFO head (a frame-for-frame exchange —
        the steady state of a thrashing system).  Charges swap I/O and
        fault costs to the kernel ledger and returns ``(swap_ins,
        swap_outs)``.

        Residency is tracked per call; the VMM's page tables are not
        rewritten (the run's translation behaviour is unaffected: vpns do
        not change when a page moves between RAM and swap).
        """
        resident: dict[int, list[bool]] = {}
        start_vpn = self._start_vpn
        fifo: deque[tuple[int, int]] = deque()
        for array_id, vma in self.vma_by_array.items():
            flags = (vma.frame >= 0).tolist()
            resident[array_id] = flags
            for page, is_resident in enumerate(flags):
                if is_resident and not vma.is_huge[page]:
                    fifo.append((array_id, page))
        swap_ins = 0
        keys = trace.keys.tolist()
        aids = trace.array_ids.tolist()
        for key, array_id in zip(keys, aids):
            if key & 1:
                continue  # huge-mapped pages were never swapped out
            page = (key >> 1) - start_vpn[array_id]
            flags = resident[array_id]
            if flags[page]:
                continue
            # Exchange: evict the FIFO head, reuse its frame.
            while True:
                victim_aid, victim_page = fifo.popleft()
                if resident[victim_aid][victim_page]:
                    break
            resident[victim_aid][victim_page] = False
            flags[page] = True
            fifo.append((array_id, page))
            swap_ins += 1
        if swap_ins:
            ledger = self.vmm.node.ledger
            ledger.swap_in(swap_ins)
            ledger.swap_out(swap_ins)
            ledger.minor_fault(swap_ins)
            if self.vmm.swap_device is not None:
                self.vmm.swap_device.page_in(swap_ins)
                self.vmm.swap_device.page_out(swap_ins)
        return swap_ins, swap_ins

    # ------------------------------------------------------------------
    # Huge-page census
    # ------------------------------------------------------------------

    def huge_fraction_per_array(self) -> dict[str, float]:
        """Huge-page-backed fraction of each array (Fig. 6's outcome)."""
        return {
            vma.name: vma.huge_backed_fraction
            for vma in self.vma_by_array.values()
        }

    def total_huge_bytes(self) -> int:
        """Bytes of the workload's footprint backed by huge pages."""
        return sum(
            vma.huge_backed_bytes for vma in self.vma_by_array.values()
        )

    def footprint_bytes(self) -> int:
        """The workload's working-set size."""
        return self.layout.total_bytes
