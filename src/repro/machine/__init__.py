"""The simulated machine: process, translation, metrics, orchestration.

- :mod:`repro.machine.process` — maps a workload's arrays into simulated
  virtual memory and translates access streams into TLB traces.
- :mod:`repro.machine.machine` — :class:`Machine`: physical memory, page
  cache, swap, THP policy and the TLB hierarchy, with the run loop that
  produces :class:`~repro.machine.metrics.RunMetrics`.
- :mod:`repro.machine.metrics` — per-run measurements (the paper's
  outputs: runtime, TLB miss rates, page walk rates, huge page usage).
"""

from .machine import Machine
from .metrics import RunMetrics
from .process import SimProcess

__all__ = ["Machine", "RunMetrics", "SimProcess"]
