"""Named memory-state scenarios (paper §3, §4.3, §4.4).

A :class:`Scenario` describes the machine state the application finds at
startup.  Pressure levels are expressed in the paper's "GB" units, which
scale with the profile (see :attr:`MachineConfig.gb_equivalent`): on the
64GB ``paper-x86`` node 1 unit is 1 GiB; on the 64MB SCALED node it is
1 MiB.

Pressured scenarios also carry *background noise* — the non-movable
kernel pages and movable stragglers that fragment a long-running system
(§2.3.2, Fig. 6) — sized so that, matching the paper's observation,
Linux's THP policy needs roughly 2.5 "GB" of slack before it reaches its
unbounded performance (§4.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

DEFAULT_NONMOVABLE_NOISE_GB = 2.25
"""Non-movable background noise in pressured scenarios ("GB" units)."""

DEFAULT_MOVABLE_NOISE_GB = 0.5
"""Movable background noise in pressured scenarios ("GB" units)."""


@dataclass(frozen=True)
class Scenario:
    """Machine memory state for one experiment cell.

    Attributes:
        name: scenario label in reports.
        pressure_gb: free memory left beyond the application's working
            set, in "GB" units.  ``None`` = fresh boot (no memhog, no
            noise).  Negative values oversubscribe memory (swap).
        frag_level: fraction of available memory fragmented with
            non-movable sentinels by the ``frag`` tool (§4.4.1).
        noise_nonmovable_gb / noise_movable_gb: background-noise sizes;
            only applied when ``pressure_gb`` is not None.
        tmpfs_remote: stage the input file's page cache on the remote
            NUMA node (the paper's interference-free methodology).  When
            False the cache competes with the application on its own
            node (§4.3's single-use-memory interference).
    """

    name: str
    pressure_gb: Optional[float] = None
    frag_level: float = 0.0
    noise_nonmovable_gb: float = DEFAULT_NONMOVABLE_NOISE_GB
    noise_movable_gb: float = DEFAULT_MOVABLE_NOISE_GB
    tmpfs_remote: bool = True

    @property
    def is_pressured(self) -> bool:
        """Whether memhog (and noise) will run."""
        return self.pressure_gb is not None


def fresh() -> Scenario:
    """Freshly booted machine: all memory free and contiguous."""
    return Scenario(name="fresh")


def constrained(pressure_gb: float) -> Scenario:
    """Constrained memory: WSS + ``pressure_gb`` left free (§4.3.1)."""
    return Scenario(
        name=f"constrained(+{pressure_gb:g}GB)", pressure_gb=pressure_gb
    )


def fragmented(frag_level: float, pressure_gb: float = 3.0) -> Scenario:
    """Low pressure (default WSS+3GB) with ``frag_level`` of the
    available memory fragmented by non-movable pages (§4.4).

    Background noise is reduced (not the constrained-scenario default):
    the paper's fragmentation experiments inject a *controlled* amount
    of non-movable litter with the ``frag`` tool, so ambient noise must
    stay a minor residual — but a real long-running node is never
    perfectly clean, and a small floor keeps the 25%-fragmentation cliff
    of Fig. 9 where the paper observes it.
    """
    return Scenario(
        name=f"fragmented({frag_level:.0%},+{pressure_gb:g}GB)",
        pressure_gb=pressure_gb,
        frag_level=frag_level,
        noise_nonmovable_gb=1.0,
        noise_movable_gb=0.25,
    )


def oversubscribed(deficit_gb: float = 0.5) -> Scenario:
    """Memory oversubscribed by ``deficit_gb``: swapping dominates."""
    return Scenario(
        name=f"oversubscribed(-{deficit_gb:g}GB)", pressure_gb=-deficit_gb
    )


def page_cache_interference(pressure_gb: float) -> Scenario:
    """Constrained memory with the input file cached on the *local*
    node — the single-use-memory interference of §4.3."""
    return Scenario(
        name=f"pagecache-local(+{pressure_gb:g}GB)",
        pressure_gb=pressure_gb,
        tmpfs_remote=False,
    )


SCENARIOS = {
    "fresh": fresh(),
    "high-pressure": constrained(0.5),
    "low-pressure": constrained(3.0),
    "frag-50": fragmented(0.5),
    "oversubscribed": oversubscribed(0.5),
}
"""The paper's recurring scenario set."""
