"""String → experiment-object parsers shared by the CLI and the service.

The sweep service ships cell specs between processes as plain strings
(policy and scenario names survive pickling and HTTP trivially; policy
objects with closures do not), so the parsers that used to live in
:mod:`repro.cli` are hoisted here where both the CLI and
:mod:`repro.serve` workers can reach them.

Grammar (same as the CLI flags):

- policy: a name from ``POLICIES``, ``selective:<s>[:<reorder>]``, or
  a zoo spec ``NAME[:k=v,...]`` from the policy registry
  (:mod:`repro.policy.registry` — see ``repro policies``);
- scenario: a name from ``SCENARIOS``, or ``constrained:<gb>``, or
  ``fragmented:<level>[:<gb>]``.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ReproError


def parse_policy(spec: str, dataset: Optional[str] = None, config=None):
    """Resolve a policy spec string to a ``PolicyCell``.

    The historical grammar (``POLICIES`` names,
    ``selective:<s>[:<reorder>]``) resolves first — their names and
    journal fingerprints are pinned — then the zoo registry.
    ``dataset``/``config`` are forwarded to dataset-aware zoo entries
    (``advisor`` derives its plan from the input graph)."""
    from .policies import POLICIES, selective_policy

    if spec.startswith("selective:"):
        parts = spec.split(":")
        try:
            fraction = float(parts[1])
        except (IndexError, ValueError) as exc:
            raise ReproError(
                f"bad selective policy spec {spec!r}: expected "
                "selective:<s>[:<reorder>]"
            ) from exc
        reorder = parts[2] if len(parts) > 2 else "dbg"
        return selective_policy(fraction, reorder=reorder)
    if spec in POLICIES:
        return POLICIES[spec]
    from ..policy.registry import (
        get_policy,
        parse_policy_spec,
        registered_policies,
    )

    try:
        name, _ = parse_policy_spec(spec)
    except ReproError:
        name = None
    if name is not None and name in registered_policies():
        return get_policy(spec, dataset=dataset, config=config)
    raise ReproError(
        f"unknown policy {spec!r}; known: "
        + ", ".join(sorted(set(POLICIES) | set(registered_policies())))
        + ", selective:<s>[:<reorder>], and zoo specs NAME[:k=v,...]"
    )


def parse_scenario(spec: str):
    """Resolve a scenario spec string to a ``Scenario``."""
    from .scenarios import SCENARIOS, constrained, fragmented

    if spec in SCENARIOS:
        return SCENARIOS[spec]
    if spec.startswith("constrained:"):
        try:
            return constrained(float(spec.split(":")[1]))
        except (IndexError, ValueError) as exc:
            raise ReproError(
                f"bad constrained scenario spec {spec!r}: expected "
                "constrained:<gb>"
            ) from exc
    if spec.startswith("fragmented:"):
        parts = spec.split(":")
        try:
            level = float(parts[1])
            pressure = float(parts[2]) if len(parts) > 2 else 3.0
        except (IndexError, ValueError) as exc:
            raise ReproError(
                f"bad fragmented scenario spec {spec!r}: expected "
                "fragmented:<level>[:<gb>]"
            ) from exc
        return fragmented(level, pressure)
    raise ReproError(
        f"unknown scenario {spec!r}; known: "
        + ", ".join(sorted(SCENARIOS))
        + ", constrained:<gb>, fragmented:<level>[:<gb>]"
    )
