"""One function per paper table/figure.

Each function drives the :class:`~repro.experiments.harness
.ExperimentRunner` through the cells behind one figure and returns a
:class:`FigureResult` whose rows mirror the paper's bars/series.  The
``benchmarks/`` directory wraps these functions one-to-one; EXPERIMENTS.md
records the paper-vs-measured comparison.

Speedups are kernel-time ratios against the 4KB baseline in the *same*
scenario (the paper normalizes each figure to its baseline bars; the 4KB
baseline is unaffected by pressure/fragmentation, which
:func:`fig07_pressure_alloc_order` verifies explicitly).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..workloads.base import ARRAY_NAMES
from .harness import CellFailure, ExperimentRunner
from .policies import POLICIES, Policy, selective_policy
from .reporting import format_table, geomean, save_figure_result
from .scenarios import (
    Scenario,
    constrained,
    fragmented,
    fresh,
    oversubscribed,
)

ALL_WORKLOADS = ("bfs", "sssp", "pagerank")
"""The paper's three applications."""


@dataclass
class FigureResult:
    """Rows reproducing one paper figure/table."""

    figure_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        """Aligned text table with heading."""
        out = format_table(
            self.rows, title=f"[{self.figure_id}] {self.title}"
        )
        if self.notes:
            out += f"\n  note: {self.notes}"
        failed = self.failed_cells()
        if failed:
            out += (
                f"\n  {len(failed)} cell(s) FAILED — values above marked "
                f"FAILED(site); see `repro` output or runner.failures."
            )
        return out

    def failed_cells(self) -> list[CellFailure]:
        """Distinct :class:`~repro.experiments.harness.CellFailure`
        records embedded in the rows (graceful degradation leaves the
        failure object where the metric value would be)."""
        failed: list[CellFailure] = []
        for row in self.rows:
            for value in row.values():
                if isinstance(value, CellFailure) and value not in failed:
                    failed.append(value)
        return failed

    def to_json(self) -> str:
        """JSON document (id, title, notes, rows) for downstream
        plotting/analysis tooling.  Failed cells serialize as their
        ``FAILED(site)`` marker string."""
        import json

        def encode(value: object) -> object:
            try:
                return float(value)  # numpy scalars and the like
            except (TypeError, ValueError):
                return str(value)  # CellFailure -> "FAILED(site)"

        return json.dumps(
            {
                "figure_id": self.figure_id,
                "title": self.title,
                "notes": self.notes,
                "rows": self.rows,
            },
            indent=2,
            default=encode,
        )

    def save(self, directory: str) -> tuple[str, str]:
        """Write this figure's ``.txt`` and ``.json`` into ``directory``
        via the crash-safe atomic path (see :func:`~repro.experiments
        .reporting.save_figure_result`); returns the two paths."""
        return save_figure_result(self, directory)

    def series(self, key_column: str, value_column: str,
               **filters: object) -> dict:
        """Extract one plottable series: ``{key: value}`` over the rows
        matching ``filters`` (exact equality per column)."""
        out = {}
        for row in self.rows:
            if all(row.get(col) == want for col, want in filters.items()):
                out[row[key_column]] = row[value_column]
        return out


def _cells(
    runner: ExperimentRunner,
    workloads: Sequence[str],
    datasets: Optional[Sequence[str]],
):
    datasets = runner.datasets if datasets is None else datasets
    for workload in workloads:
        for dataset in datasets:
            yield workload, dataset


class _PlanningRunner:
    """Shim runner for the parallel prefetch planning pass.

    Figure functions enumerate their cells implicitly, through inline
    ``run_cell`` calls.  To batch those cells onto the process pool
    without duplicating each figure's enumeration logic, the decorated
    figure body runs once against this shim: every ``run_cell`` call is
    *recorded* (in exact body order, which is what makes the parallel
    journal byte-identical to a serial one) and answered with an
    absorbing :class:`~repro.experiments.harness.CellFailure` dummy, so
    the body's derived arithmetic degrades instead of crashing.  All
    other attributes delegate to the real runner; nothing is simulated,
    cached, journaled or recorded as a failure.
    """

    def __init__(self, runner: ExperimentRunner) -> None:
        self._runner = runner
        self.cells: list[tuple] = []

    def __getattr__(self, name: str):
        return getattr(self._runner, name)

    def run_cell(self, workload, dataset, policy, scenario) -> CellFailure:
        self.cells.append((workload, dataset, policy, scenario))
        return CellFailure(
            workload=workload,
            dataset=dataset,
            policy=policy.name,
            scenario=scenario.name,
            error="planning",
            message="parallel prefetch planning pass",
        )


def _parallel_figure(func: Callable) -> Callable:
    """Give a figure function a parallel fast path.

    With ``runner.workers`` at the default ``1`` this is a no-op.  With
    fan-out enabled, the figure body first runs against a
    :class:`_PlanningRunner` to discover its cells, the batch executes
    on the process pool via :meth:`~repro.experiments.harness
    .ExperimentRunner.run_cells` (which owns dedupe, journal order and
    the deterministic merge), and the body then re-runs for real with
    every cell already cached.  A planning-pass surprise degrades to
    plain serial execution — parallelism is an accelerator, never a
    correctness dependency.
    """

    @functools.wraps(func)
    def wrapper(runner: ExperimentRunner, *args, **kwargs):
        if (
            getattr(runner, "workers", 1) != 1
            or getattr(runner, "dist_executor", None) is not None
        ):
            planner = _PlanningRunner(runner)
            try:
                func(planner, *args, **kwargs)
                cells = planner.cells
            except Exception:
                cells = []
            if cells:
                runner.run_cells(cells)
        return func(runner, *args, **kwargs)

    return wrapper


# ---------------------------------------------------------------------------
# Introduction characterization
# ---------------------------------------------------------------------------


@_parallel_figure
def fig01_thp_speedup(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ALL_WORKLOADS,
    datasets: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Fig. 1: THP speedup on a fresh machine vs a realistic
    (pressured) machine, over the 4KB baseline."""
    result = FigureResult(
        "fig01",
        "THP speedup over 4KB pages: fresh boot vs memory pressure",
        notes="paper: large gains fresh, near-none under pressure",
    )
    pressured = constrained(0.5)
    for workload, dataset in _cells(runner, workloads, datasets):
        base = runner.run_cell(workload, dataset, POLICIES["base4k"], fresh())
        thp_fresh = runner.run_cell(workload, dataset, POLICIES["thp"], fresh())
        thp_press = runner.run_cell(workload, dataset, POLICIES["thp"], pressured)
        base_press = runner.run_cell(
            workload, dataset, POLICIES["base4k"], pressured
        )
        result.rows.append(
            {
                "workload": workload,
                "dataset": dataset,
                "thp_fresh_speedup": thp_fresh.speedup_over(base),
                "thp_pressured_speedup": thp_press.speedup_over(base_press),
            }
        )
    return result


@_parallel_figure
def fig02_translation_overhead(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ALL_WORKLOADS,
    datasets: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Fig. 2: fraction of 4KB-baseline runtime spent on address
    translation."""
    result = FigureResult(
        "fig02",
        "Address translation share of 4KB-baseline kernel time",
        notes="paper: translation overheads are a significant runtime share",
    )
    cost = runner.config.cost
    for workload, dataset in _cells(runner, workloads, datasets):
        base = runner.run_cell(workload, dataset, POLICIES["base4k"], fresh())
        translation = base.translation.translation_cycles(cost)
        result.rows.append(
            {
                "workload": workload,
                "dataset": dataset,
                "translation_fraction": translation
                / max(1, base.compute_cycles),
            }
        )
    return result


@_parallel_figure
def fig03_tlb_miss_rates(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ALL_WORKLOADS,
    datasets: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Fig. 3: DTLB miss rate and page-walk rate, 4KB vs THP (fresh)."""
    result = FigureResult(
        "fig03",
        "TLB miss rates: 4KB pages vs system-wide THP (fresh boot)",
        notes=(
            "paper: 12.6-47.6% DTLB miss (avg 26.3%) at 4KB, "
            "4-26.7% (avg 11.5%) with THP; most DTLB misses walk"
        ),
    )
    for workload, dataset in _cells(runner, workloads, datasets):
        base = runner.run_cell(workload, dataset, POLICIES["base4k"], fresh())
        thp = runner.run_cell(workload, dataset, POLICIES["thp"], fresh())
        result.rows.append(
            {
                "workload": workload,
                "dataset": dataset,
                "dtlb_miss_4k": base.dtlb_miss_rate,
                "walk_rate_4k": base.walk_rate,
                "dtlb_miss_thp": thp.dtlb_miss_rate,
                "walk_rate_thp": thp.walk_rate,
            }
        )
    return result


# ---------------------------------------------------------------------------
# §4.1 data structure analysis
# ---------------------------------------------------------------------------


@_parallel_figure
def fig04_access_breakdown(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ALL_WORKLOADS,
    datasets: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Fig. 4 (annotations): per-data-structure access and walk shares
    under 4KB pages."""
    result = FigureResult(
        "fig04",
        "Access and page-walk share per data structure (4KB baseline)",
        notes=(
            "paper: edge+property arrays dominate accesses; the "
            "pointer-indirect property array dominates TLB misses"
        ),
    )
    for workload, dataset in _cells(runner, workloads, datasets):
        base = runner.run_cell(workload, dataset, POLICIES["base4k"], fresh())
        per = base.per_array_translation()
        total_acc = max(1, base.translation.total_accesses)
        total_walks = max(1, base.translation.total_walks)
        for array_name, counts in per.items():
            result.rows.append(
                {
                    "workload": workload,
                    "dataset": dataset,
                    "array": array_name,
                    "access_share": counts["accesses"] / total_acc,
                    "walk_share": counts["walks"] / total_walks,
                }
            )
    return result


@_parallel_figure
def fig05_data_structure_thp(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ("bfs",),
    datasets: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Fig. 5: speedup from applying THPs to individual data structures
    (BFS, no memory pressure)."""
    result = FigureResult(
        "fig05",
        "Per-data-structure madvise(MADV_HUGEPAGE) speedup over 4KB (BFS)",
        notes=(
            "paper: property-array THPs nearly match system-wide THPs; "
            "vertex/edge THPs help far less"
        ),
    )
    policies = ["madv-vertex", "madv-edge", "madv-property", "thp"]
    for workload, dataset in _cells(runner, workloads, datasets):
        base = runner.run_cell(workload, dataset, POLICIES["base4k"], fresh())
        row: dict = {"workload": workload, "dataset": dataset}
        for policy_name in policies:
            run = runner.run_cell(
                workload, dataset, POLICIES[policy_name], fresh()
            )
            row[policy_name] = run.speedup_over(base)
        result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------


def table2_datasets(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ALL_WORKLOADS,
    datasets: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Table 2: application/input inventory with memory footprints."""
    from ..graph.datasets import load_dataset
    from ..workloads.layout import MemoryLayout
    from ..workloads.registry import create_workload, workload_needs_weights

    result = FigureResult(
        "table2",
        "Evaluation applications and inputs (scaled Table 2)",
        notes="footprints are the simulated working-set sizes",
    )
    datasets = runner.datasets if datasets is None else datasets
    for workload_name in workloads:
        for dataset_name in datasets:
            data = load_dataset(
                dataset_name, weighted=workload_needs_weights(workload_name)
            )
            workload = create_workload(workload_name, data.graph)
            layout = MemoryLayout(workload)
            result.rows.append(
                {
                    "workload": workload_name,
                    "dataset": dataset_name,
                    "paper_input": data.paper_name,
                    "vertices": data.graph.num_vertices,
                    "edges": data.graph.num_edges,
                    "footprint_bytes": layout.total_bytes,
                }
            )
    return result


# ---------------------------------------------------------------------------
# §4.3 constrained memory
# ---------------------------------------------------------------------------


@_parallel_figure
def fig07_pressure_alloc_order(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ALL_WORKLOADS,
    datasets: Optional[Sequence[str]] = None,
    pressure_gb: float = 0.5,
) -> FigureResult:
    """Fig. 7: THP under high memory pressure with natural vs optimized
    (property-first) allocation order."""
    result = FigureResult(
        "fig07",
        f"THP under +{pressure_gb:g}GB pressure: allocation order matters",
        notes=(
            "paper: natural order loses most THP gains; property-first "
            "nearly matches the fresh-boot ideal; 4KB baseline unaffected"
        ),
    )
    scenario = constrained(pressure_gb)
    for workload, dataset in _cells(runner, workloads, datasets):
        base_fresh = runner.run_cell(
            workload, dataset, POLICIES["base4k"], fresh()
        )
        base_press = runner.run_cell(
            workload, dataset, POLICIES["base4k"], scenario
        )
        thp_fresh = runner.run_cell(workload, dataset, POLICIES["thp"], fresh())
        thp_nat = runner.run_cell(workload, dataset, POLICIES["thp"], scenario)
        thp_opt = runner.run_cell(
            workload, dataset, POLICIES["thp-opt"], scenario
        )
        result.rows.append(
            {
                "workload": workload,
                "dataset": dataset,
                "base4k_pressured": base_press.speedup_over(base_fresh),
                "thp_ideal": thp_fresh.speedup_over(base_fresh),
                "thp_natural": thp_nat.speedup_over(base_press),
                "thp_property_first": thp_opt.speedup_over(base_press),
            }
        )
    return result


@_parallel_figure
def fig07b_pressure_sweep(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ("bfs",),
    datasets: Optional[Sequence[str]] = None,
    levels: Sequence[float] = (-0.5, 0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
) -> FigureResult:
    """§4.3.1 sweep: 7 free-memory levels plus oversubscription."""
    result = FigureResult(
        "fig07b",
        "Memory-pressure sweep (free memory beyond WSS, in GB units)",
        notes=(
            "paper: >=2.5GB extra needed for unbounded THP gains; "
            "oversubscription slows 4KB/THP by 24.6x/23.6x"
        ),
    )
    for workload, dataset in _cells(runner, workloads, datasets):
        base_fresh = runner.run_cell(
            workload, dataset, POLICIES["base4k"], fresh()
        )
        for level in levels:
            scenario = (
                oversubscribed(-level) if level < 0 else constrained(level)
            )
            base = runner.run_cell(
                workload, dataset, POLICIES["base4k"], scenario
            )
            thp = runner.run_cell(workload, dataset, POLICIES["thp"], scenario)
            opt = runner.run_cell(
                workload, dataset, POLICIES["thp-opt"], scenario
            )
            result.rows.append(
                {
                    "workload": workload,
                    "dataset": dataset,
                    "free_gb": level,
                    "base4k": base.speedup_over(base_fresh),
                    "thp_natural": thp.speedup_over(base_fresh),
                    "thp_property_first": opt.speedup_over(base_fresh),
                }
            )
    return result


@_parallel_figure
def page_cache_interference(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ("bfs",),
    datasets: Optional[Sequence[str]] = None,
    pressure_gb: float = 1.0,
) -> FigureResult:
    """§4.3: single-use page-cache interference — input cached on the
    local node vs staged on remote tmpfs.

    The THP configuration is Linux's deferred-reclaim default (no direct
    reclaim in the fault path): exactly the setting under which the
    paper observes that cached input data "cannot be reclaimed in time"
    and huge page creation suffers during initialization, even with the
    optimized allocation order.
    """
    from ..policy.registry import get_policy as zoo_policy
    from .scenarios import page_cache_interference as local_cache

    thp_defer = zoo_policy("thp-opt-defer")
    result = FigureResult(
        "fig-pagecache",
        "Single-use page cache interference with THP allocation",
        notes=(
            "paper: page cache on the local node steals memory that "
            "huge pages needed; tmpfs-remote staging avoids it"
        ),
    )
    for workload, dataset in _cells(runner, workloads, datasets):
        base = runner.run_cell(
            workload, dataset, POLICIES["base4k"], constrained(pressure_gb)
        )
        remote = runner.run_cell(
            workload, dataset, thp_defer, constrained(pressure_gb)
        )
        local = runner.run_cell(
            workload, dataset, thp_defer, local_cache(pressure_gb)
        )
        result.rows.append(
            {
                "workload": workload,
                "dataset": dataset,
                "thp_tmpfs_remote": remote.speedup_over(base),
                "thp_local_cache": local.speedup_over(base),
                "huge_frac_remote": remote.huge_footprint_fraction,
                "huge_frac_local": local.huge_footprint_fraction,
            }
        )
    return result


# ---------------------------------------------------------------------------
# §4.4 fragmentation
# ---------------------------------------------------------------------------


@_parallel_figure
def fig08_fragmentation(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ALL_WORKLOADS,
    datasets: Optional[Sequence[str]] = None,
    frag_level: float = 0.5,
    pressure_gb: float = 3.0,
) -> FigureResult:
    """Fig. 8: THP under 50% non-movable fragmentation (low pressure),
    natural vs optimized allocation order."""
    result = FigureResult(
        "fig08",
        f"THP under {frag_level:.0%} fragmentation (+{pressure_gb:g}GB free)",
        notes=(
            "paper: fragmentation starves greedy THP; property-first "
            "order keeps most of the gain"
        ),
    )
    scenario = fragmented(frag_level, pressure_gb)
    for workload, dataset in _cells(runner, workloads, datasets):
        base_fresh = runner.run_cell(
            workload, dataset, POLICIES["base4k"], fresh()
        )
        base_frag = runner.run_cell(
            workload, dataset, POLICIES["base4k"], scenario
        )
        thp_fresh = runner.run_cell(workload, dataset, POLICIES["thp"], fresh())
        thp_nat = runner.run_cell(workload, dataset, POLICIES["thp"], scenario)
        thp_opt = runner.run_cell(
            workload, dataset, POLICIES["thp-opt"], scenario
        )
        result.rows.append(
            {
                "workload": workload,
                "dataset": dataset,
                "base4k_fragmented": base_frag.speedup_over(base_fresh),
                "thp_ideal": thp_fresh.speedup_over(base_fresh),
                "thp_natural": thp_nat.speedup_over(base_frag),
                "thp_property_first": thp_opt.speedup_over(base_frag),
            }
        )
    return result


@_parallel_figure
def fig09_frag_sweep(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ("bfs",),
    datasets: Optional[Sequence[str]] = None,
    levels: Sequence[float] = (0.0, 0.25, 0.5, 0.75),
    pressure_gb: float = 3.0,
) -> FigureResult:
    """Fig. 9: fragmentation-level sensitivity (BFS, WSS+3GB)."""
    result = FigureResult(
        "fig09",
        "Fragmentation sweep 0/25/50/75% (BFS, +3GB free)",
        notes=(
            "paper: THP drops sharply at 25% already; optimized order "
            "retains gains even at 75%"
        ),
    )
    for workload, dataset in _cells(runner, workloads, datasets):
        base_fresh = runner.run_cell(
            workload, dataset, POLICIES["base4k"], fresh()
        )
        for level in levels:
            scenario = (
                constrained(pressure_gb)
                if level == 0.0
                else fragmented(level, pressure_gb)
            )
            base = runner.run_cell(
                workload, dataset, POLICIES["base4k"], scenario
            )
            thp = runner.run_cell(workload, dataset, POLICIES["thp"], scenario)
            opt = runner.run_cell(
                workload, dataset, POLICIES["thp-opt"], scenario
            )
            result.rows.append(
                {
                    "workload": workload,
                    "dataset": dataset,
                    "frag_level": level,
                    "base4k": base.speedup_over(base_fresh),
                    "thp_natural": thp.speedup_over(base_fresh),
                    "thp_property_first": opt.speedup_over(base_fresh),
                }
            )
    return result


# ---------------------------------------------------------------------------
# §5 selective THP
# ---------------------------------------------------------------------------


@_parallel_figure
def fig10_selective_thp(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ALL_WORKLOADS,
    datasets: Optional[Sequence[str]] = None,
    frag_level: float = 0.5,
    pressure_gb: float = 3.0,
) -> FigureResult:
    """Fig. 10: DBG preprocessing x selective THP under low pressure and
    50% fragmentation."""
    result = FigureResult(
        "fig10",
        "DBG + selective THP under pressure and 50% fragmentation",
        notes=(
            "paper: selective s=100% beats DBG and system-wide THP; "
            "s=50% beats them for most configurations"
        ),
    )
    scenario = fragmented(frag_level, pressure_gb)
    policies: list[tuple[str, Policy]] = [
        ("dbg_4k", POLICIES["dbg"]),
        ("thp", POLICIES["thp"]),
        ("dbg_thp", POLICIES["dbg+thp"]),
        ("selective_50_dbg", selective_policy(0.5)),
        ("selective_100_dbg", selective_policy(1.0)),
    ]
    for workload, dataset in _cells(runner, workloads, datasets):
        base = runner.run_cell(workload, dataset, POLICIES["base4k"], scenario)
        row: dict = {"workload": workload, "dataset": dataset}
        for label, policy in policies:
            run = runner.run_cell(workload, dataset, policy, scenario)
            row[label] = run.speedup_over(base)
        result.rows.append(row)
    return result


@_parallel_figure
def fig11_selectivity_sweep(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ("bfs",),
    datasets: Optional[Sequence[str]] = None,
    fractions: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    frag_level: float = 0.5,
    pressure_gb: float = 3.0,
) -> FigureResult:
    """Fig. 11: sensitivity to the THP selectivity level s, with and
    without DBG preprocessing."""
    result = FigureResult(
        "fig11",
        "Selectivity sweep: s% of the property array madvised",
        notes=(
            "paper: with DBG (or natural community structure) gains "
            "saturate at small s; without it they grow ~linearly"
        ),
    )
    scenario = fragmented(frag_level, pressure_gb)
    for workload, dataset in _cells(runner, workloads, datasets):
        base = runner.run_cell(workload, dataset, POLICIES["base4k"], scenario)
        for reorder in ("original", "dbg"):
            for fraction in fractions:
                policy = selective_policy(fraction, reorder=reorder)
                run = runner.run_cell(workload, dataset, policy, scenario)
                result.rows.append(
                    {
                        "workload": workload,
                        "dataset": dataset,
                        "reorder": reorder,
                        "s": fraction,
                        "speedup": run.speedup_over(base),
                        "huge_frac_of_footprint": run.huge_footprint_fraction,
                    }
                )
    return result


@_parallel_figure
def dbg_overhead(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ALL_WORKLOADS,
    datasets: Optional[Sequence[str]] = None,
) -> FigureResult:
    """§5.1.2: DBG preprocessing overhead relative to kernel time."""
    result = FigureResult(
        "dbg-overhead",
        "DBG preprocessing overhead (share of kernel time)",
        notes=(
            "paper: up to 2.36% for SSSP/PR (avg 1.32%); up to 16.5% "
            "for short-running BFS (avg 13%)"
        ),
    )
    for workload, dataset in _cells(runner, workloads, datasets):
        run = runner.run_cell(workload, dataset, POLICIES["dbg"], fresh())
        result.rows.append(
            {
                "workload": workload,
                "dataset": dataset,
                "preprocess_fraction": run.preprocess_cycles
                / max(1, run.kernel_cycles),
            }
        )
    return result


def recommended_reorder(runner: ExperimentRunner, dataset: str) -> str:
    """The advisor's per-input reorder decision (§5.2: DBG helps inputs
    whose hot vertices are scattered; naturally clustered crawls keep
    their order and skip the preprocessing cost)."""
    from ..core.advisor import PageSizeAdvisor
    from ..graph.datasets import load_dataset

    graph = load_dataset(dataset).graph
    report = PageSizeAdvisor(graph, config=runner.config).advise()
    return report.plan.reorder


@_parallel_figure
def headline_summary(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ALL_WORKLOADS,
    datasets: Optional[Sequence[str]] = None,
    fraction: float = 0.2,
    frag_level: float = 0.5,
    pressure_gb: float = 3.0,
) -> FigureResult:
    """Abstract/§4.5 headline: selective THP speedup over 4KB, fraction
    of unbounded-THP performance, and huge-page budget.

    Preprocessing follows the advisor's per-input decision, as the
    paper's tuning does: DBG for scattered-hub inputs (Kronecker),
    original order for naturally clustered crawls.
    """
    result = FigureResult(
        "headline",
        "Headline: degree-aware selective THP vs 4KB and unbounded THP",
        notes=(
            "paper: 1.26-1.57x over 4KB, 77.3-96.3% of unbounded THP, "
            "0.58-2.92% of memory in huge pages"
        ),
    )
    scenario = fragmented(frag_level, pressure_gb)
    speedups = []
    for workload, dataset in _cells(runner, workloads, datasets):
        policy = selective_policy(
            fraction, reorder=recommended_reorder(runner, dataset)
        )
        base = runner.run_cell(workload, dataset, POLICIES["base4k"], scenario)
        ideal = runner.run_cell(workload, dataset, POLICIES["thp"], fresh())
        base_fresh = runner.run_cell(
            workload, dataset, POLICIES["base4k"], fresh()
        )
        run = runner.run_cell(workload, dataset, policy, scenario)
        speedup = run.speedup_over(base)
        speedups.append(speedup)
        result.rows.append(
            {
                "workload": workload,
                "dataset": dataset,
                "reorder": policy.plan.reorder,
                "selective_speedup": speedup,
                "pct_of_unbounded": run.speedup_over(base)
                / max(1e-12, ideal.speedup_over(base_fresh)),
                "huge_budget_frac": run.huge_footprint_fraction,
            }
        )
    result.notes += f" | measured geomean speedup: {geomean(speedups):.3f}"
    return result


# ---------------------------------------------------------------------------
# Ablations beyond the paper's figures (DESIGN.md §4)
# ---------------------------------------------------------------------------


@_parallel_figure
def ablation_alloc_order_census(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ("bfs",),
    datasets: Optional[Sequence[str]] = None,
    pressure_gb: float = 0.5,
) -> FigureResult:
    """Which arrays actually got huge pages, natural vs property-first
    (the Fig. 6 narrative, measured)."""
    result = FigureResult(
        "abl-census",
        "Huge-page census per array under pressure (natural vs optimized)",
    )
    scenario = constrained(pressure_gb)
    for workload, dataset in _cells(runner, workloads, datasets):
        for policy_name in ("thp", "thp-opt"):
            run = runner.run_cell(
                workload, dataset, POLICIES[policy_name], scenario
            )
            row: dict = {
                "workload": workload,
                "dataset": dataset,
                "policy": policy_name,
            }
            for name in ARRAY_NAMES.values():
                if name in run.huge_fraction_per_array:
                    row[name] = run.huge_fraction_per_array[name]
            result.rows.append(row)
    return result


@_parallel_figure
def ablation_promotion_path(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ("bfs",),
    datasets: Optional[Sequence[str]] = None,
    pressure_gb: float = 2.5,
) -> FigureResult:
    """THP variants: fault-time allocation with direct compaction vs
    khugepaged-only promotion vs a fault path without compaction and
    without khugepaged (Linux's ``defrag``/``enabled`` settings).

    The scenario carries heavy *movable* litter (a long-running node
    where most free regions need compaction), so the variants genuinely
    diverge: the no-compaction/no-daemon configuration can only use
    pristine regions and loses the property array.
    """
    from ..policy.registry import get_policy as zoo_policy

    # All three run the property-first plan (registered zoo entries),
    # so the allocation path is the only variable.
    variants = [
        ("fault+compact", zoo_policy("thp-direct")),
        ("khugepaged-only", zoo_policy("thp-khugepaged")),
        ("no-compact", zoo_policy("thp-defer")),
    ]
    result = FigureResult(
        "abl-promotion",
        "THP allocation-path ablation (movable-litter-heavy node)",
    )
    # Movable litter saturates every free region: without compaction
    # (in the fault path or the daemon) no huge page can be assembled.
    scenario = Scenario(
        name=f"constrained(+{pressure_gb:g}GB,movable-saturated)",
        pressure_gb=pressure_gb,
        noise_nonmovable_gb=1.0,
        noise_movable_gb=64.0,
    )
    for workload, dataset in _cells(runner, workloads, datasets):
        base = runner.run_cell(workload, dataset, POLICIES["base4k"], scenario)
        row: dict = {"workload": workload, "dataset": dataset}
        for label, policy in variants:
            run = runner.run_cell(workload, dataset, policy, scenario)
            row[label] = run.speedup_over(base)
            row[f"{label}_prop_huge"] = run.huge_fraction_per_array.get(
                "property_array", 0.0
            )
        result.rows.append(row)
    return result


@_parallel_figure
def ablation_reorder(
    runner: ExperimentRunner,
    workloads: Sequence[str] = ("bfs",),
    datasets: Optional[Sequence[str]] = None,
    fraction: float = 0.4,
    frag_level: float = 0.5,
) -> FigureResult:
    """Reordering-strategy ablation for selective THP: DBG vs full
    degree sort vs random vs original."""
    result = FigureResult(
        "abl-reorder",
        f"Selective THP (s={fraction:.0%}) under alternative orderings",
    )
    scenario = fragmented(frag_level)
    for workload, dataset in _cells(runner, workloads, datasets):
        base = runner.run_cell(workload, dataset, POLICIES["base4k"], scenario)
        row: dict = {"workload": workload, "dataset": dataset}
        for reorder in ("original", "dbg", "degree-sort", "random"):
            policy = selective_policy(fraction, reorder=reorder)
            run = runner.run_cell(workload, dataset, policy, scenario)
            row[reorder] = run.speedup_over(base)
        result.rows.append(row)
    return result


def _run_tournament_figure(
    runner: ExperimentRunner, **kwargs
) -> FigureResult:
    """``repro figure tournament``: the policy-zoo leaderboard (see
    :func:`repro.policy.tournament.run_tournament`).  Accepts
    ``policies=`` in addition to the standard ``workloads=`` /
    ``datasets=`` keywords."""
    from ..policy.tournament import run_tournament

    return run_tournament(runner, **kwargs)


FIGURES: dict[str, Callable] = {
    "fig01": fig01_thp_speedup,
    "fig02": fig02_translation_overhead,
    "fig03": fig03_tlb_miss_rates,
    "fig04": fig04_access_breakdown,
    "fig05": fig05_data_structure_thp,
    "table2": table2_datasets,
    "fig07": fig07_pressure_alloc_order,
    "fig07b": fig07b_pressure_sweep,
    "fig08": fig08_fragmentation,
    "fig09": fig09_frag_sweep,
    "fig10": fig10_selective_thp,
    "fig11": fig11_selectivity_sweep,
    "pagecache": page_cache_interference,
    "dbg-overhead": dbg_overhead,
    "headline": headline_summary,
    "abl-census": ablation_alloc_order_census,
    "abl-promotion": ablation_promotion_path,
    "abl-reorder": ablation_reorder,
    "tournament": _run_tournament_figure,
}
"""Figure registry: CLI ``repro figure <id>`` ids to entry points (the
stable surface re-exported by :mod:`repro.api`)."""
