"""Named page-management policies (the bars of the paper's figures).

A :class:`Policy` pairs a THP kernel configuration with a placement plan
(allocation order, madvise ranges, reordering).  The registry covers
every policy the paper evaluates:

- ``base4k`` — THP disabled system-wide (the baseline, green bars);
- ``thp`` — Linux's greedy system-wide THP with the natural allocation
  order (orange/red bars);
- ``thp-opt`` — system-wide THP with the property-first allocation order
  (purple bars of Figs. 7/8);
- ``madv-vertex`` / ``madv-edge`` / ``madv-values`` / ``madv-property``
  — huge pages for a single data structure via ``madvise`` (Fig. 5);
- ``dbg`` — DBG preprocessing with 4KB pages (Fig. 10 green);
- ``dbg+thp`` — DBG with system-wide THP (Fig. 10 red);
- selective policies from :func:`selective_policy` — DBG + madvise on
  the leading s% of the property array (Fig. 10 purple/brown, Fig. 11).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.plan import PlacementPlan
from ..core.selective import selective_property_plan
from ..mem.heuristics import HugePageManager
from ..mem.thp import ThpPolicy
from ..workloads.base import (
    ARRAY_EDGE,
    ARRAY_PROPERTY,
    ARRAY_VALUES,
    ARRAY_VERTEX,
)
from ..workloads.layout import AllocationOrder


@dataclass(frozen=True)
class Policy:
    """One page-management configuration.

    Optionally carries a run-time huge-page manager factory (heuristic
    kernel policies and the online autotuner run *during* execution,
    unlike the static plans).
    """

    name: str
    thp_factory: Callable[[], ThpPolicy]
    plan: PlacementPlan
    manager_factory: Optional[Callable[[], HugePageManager]] = None

    def make_thp(self) -> ThpPolicy:
        """Fresh THP policy object (policies are stateless; machines are
        not)."""
        return self.thp_factory()

    def make_manager(self) -> Optional[HugePageManager]:
        """Fresh run-time manager, if this policy uses one."""
        if self.manager_factory is None:
            return None
        return self.manager_factory()


def _madvise_one(array_id: int, array_name: str) -> Policy:
    return Policy(
        name=f"madv-{array_name}",
        thp_factory=ThpPolicy.madvise,
        plan=PlacementPlan(
            advise_fractions={array_id: 1.0},
            label=f"madv-{array_name}",
        ),
    )


POLICIES: dict[str, Policy] = {
    "base4k": Policy(
        name="base4k",
        thp_factory=ThpPolicy.never,
        plan=PlacementPlan(label="base4k"),
    ),
    "thp": Policy(
        name="thp",
        thp_factory=ThpPolicy.always,
        plan=PlacementPlan(label="thp"),
    ),
    "thp-opt": Policy(
        name="thp-opt",
        thp_factory=ThpPolicy.always,
        plan=PlacementPlan(
            order=AllocationOrder.PROPERTY_FIRST, label="thp-opt"
        ),
    ),
    "madv-vertex": _madvise_one(ARRAY_VERTEX, "vertex"),
    "madv-edge": _madvise_one(ARRAY_EDGE, "edge"),
    "madv-values": _madvise_one(ARRAY_VALUES, "values"),
    "madv-property": _madvise_one(ARRAY_PROPERTY, "property"),
    "dbg": Policy(
        name="dbg",
        thp_factory=ThpPolicy.never,
        plan=PlacementPlan(reorder="dbg", label="dbg"),
    ),
    "dbg+thp": Policy(
        name="dbg+thp",
        thp_factory=ThpPolicy.always,
        plan=PlacementPlan(reorder="dbg", label="dbg+thp"),
    ),
}
"""Registry of the paper's fixed policies."""


def selective_policy(
    fraction: float, reorder: str = "dbg"
) -> Policy:
    """Selective THP: madvise the leading ``fraction`` of the property
    array on a (optionally DBG-reordered) graph, property-first order."""
    plan = selective_property_plan(fraction, reorder=reorder)
    return Policy(
        name=plan.label,
        thp_factory=ThpPolicy.madvise,
        plan=plan,
    )


def hugetlb_policy(fraction: float = 1.0, reorder: str = "dbg") -> Policy:
    """Explicit hugetlbfs reservation for the leading ``fraction`` of
    the property array, reserved at boot time (§2.3's alternative to
    THP).  THP stays off: every other array uses base pages."""
    return Policy(
        name=f"hugetlb(s={fraction:.0%},{reorder})",
        thp_factory=ThpPolicy.never,
        plan=PlacementPlan(
            order=AllocationOrder.PROPERTY_FIRST,
            hugetlb_fractions={ARRAY_PROPERTY: fraction},
            reorder=reorder,
            label=f"hugetlb(s={fraction:.0%},{reorder})",
        ),
    )


def _zoo_builder(name: str):
    """The registered zoo builder for ``name`` (shims delegate here so
    the registry is the single construction path)."""
    from ..policy.registry import registered_policies

    return registered_policies()[name].builder


def utilization_manager_policy(
    threshold: float = 0.9, promotions_per_pass: int = 8
) -> Policy:
    """Deprecated shim: build the Ingens-style policy via the registry.

    .. deprecated::
        Use ``repro.policy.registry.get_policy("ingens[:threshold=...,
        per_pass=...]")``.  Kept so historical call sites keep working;
        materializes the identical policy (same name, same journal
        fingerprint)."""
    warnings.warn(
        "utilization_manager_policy() is deprecated; use "
        "repro.policy.registry.get_policy('ingens:threshold=...,"
        "per_pass=...') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _zoo_builder("ingens")(
        threshold=threshold, per_pass=promotions_per_pass
    )


def hotness_manager_policy(promotions_per_pass: int = 8) -> Policy:
    """Deprecated shim: build the HawkEye-style policy via the registry.

    .. deprecated::
        Use ``repro.policy.registry.get_policy("hawkeye[:per_pass=...]"
        )``.  Materializes the identical policy."""
    warnings.warn(
        "hotness_manager_policy() is deprecated; use "
        "repro.policy.registry.get_policy('hawkeye:per_pass=...') "
        "instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _zoo_builder("hawkeye")(per_pass=promotions_per_pass)


def autotuner_policy(
    coverage_target: float = 0.85, max_chunks: Optional[int] = None
) -> Policy:
    """Deprecated shim: build the online-autotuner policy via the
    registry.

    .. deprecated::
        Use ``repro.policy.registry.get_policy("autotuner[:coverage=...,
        max_chunks=...]")``.  Materializes the identical policy."""
    warnings.warn(
        "autotuner_policy() is deprecated; use "
        "repro.policy.registry.get_policy('autotuner:coverage=...,"
        "max_chunks=...') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _zoo_builder("autotuner")(
        coverage=coverage_target, max_chunks=max_chunks
    )


def get_policy(name: str) -> Policy:
    """Look up a fixed policy by name.

    Raises:
        KeyError: if the name is unknown (selective policies are built
        with :func:`selective_policy`, not looked up).
    """
    return POLICIES[name]
