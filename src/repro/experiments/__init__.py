"""Experiment harness: the paper's evaluation, cell by cell.

- :mod:`repro.experiments.scenarios` — named memory-state scenarios
  (fresh boot, constrained by Δ, fragmented F%, oversubscribed).
- :mod:`repro.experiments.policies` — named page-management policies
  (4KB baseline, Linux THP, madvise-per-array, DBG, selective THP).
- :mod:`repro.experiments.harness` — :class:`ExperimentRunner`: runs one
  (workload, dataset, policy, scenario) cell on a freshly configured
  machine, with caching across figures.
- :mod:`repro.experiments.runconfig` — :class:`RunConfig`: the runner's
  validated, immutable execution policy (workers, journal, retries,
  budgets, faults, tracing).
- :mod:`repro.experiments.figures` — one function per paper table/figure.
- :mod:`repro.experiments.reporting` — text-table rendering.
"""

from .scenarios import Scenario, SCENARIOS
from .policies import Policy, POLICIES, selective_policy
from .runconfig import RunConfig
from .harness import ExperimentRunner, run_cells
from .reporting import format_table

__all__ = [
    "ExperimentRunner",
    "POLICIES",
    "Policy",
    "RunConfig",
    "SCENARIOS",
    "Scenario",
    "format_table",
    "run_cells",
    "selective_policy",
]
