"""The experiment runner: one (workload, dataset, policy, scenario) cell
per call, on a freshly configured machine.

Every cell is deterministic, so results are cached by cell key — figures
share baselines (e.g. the 4KB fresh-boot run) without re-simulating.

The runner reproduces the paper's measurement methodology (§3.1,
Appendix):

- the machine is configured (memhog → background noise → frag) before
  the application starts, and setup-time kernel work is not charged;
- the input file is staged through the page cache (remote tmpfs by
  default, local node to reproduce §4.3's interference);
- DBG preprocessing happens before the measured run but its cost is
  recorded and charged to kernel time, as the paper does (§5.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config import MachineConfig, scaled
from ..errors import ExperimentError
from ..graph.csr import CsrGraph
from ..graph.datasets import EVALUATION_DATASETS, load_dataset
from ..graph.io import on_disk_bytes
from ..graph.reorder import DBG_COST, ORDERINGS
from ..machine.machine import Machine
from ..machine.metrics import RunMetrics
from ..workloads.layout import MemoryLayout
from ..workloads.registry import create_workload, workload_needs_weights
from .policies import Policy
from .scenarios import Scenario


@dataclass
class ExperimentRunner:
    """Runs and caches experiment cells on one machine profile.

    Attributes:
        config: machine profile (default SCALED).
        pagerank_iterations: iteration cap for PR cells, keeping trace
            volume proportional across datasets (the paper runs to
            convergence on real hardware; the cap does not change which
            policy wins, only absolute cycle counts).
        datasets: dataset names used by the figure functions.
    """

    config: MachineConfig = field(default_factory=scaled)
    pagerank_iterations: int = 3
    datasets: tuple[str, ...] = EVALUATION_DATASETS
    _cache: dict[tuple, RunMetrics] = field(default_factory=dict)
    _graph_cache: dict[tuple[str, str, bool], tuple[CsrGraph, int]] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------

    def run_cell(
        self,
        workload_name: str,
        dataset_name: str,
        policy: Policy,
        scenario: Scenario,
    ) -> RunMetrics:
        """Simulate one cell; cached on repeat calls."""
        key = (
            workload_name,
            dataset_name,
            policy.name,
            policy.plan.order.value,
            tuple(sorted(policy.plan.advise_fractions.items())),
            tuple(sorted(policy.plan.hugetlb_fractions.items())),
            policy.plan.reorder,
            scenario,
            self.pagerank_iterations,
            self.config.name,
        )
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        graph, preprocess_accesses = self._prepared_graph(
            dataset_name, policy.plan.reorder,
            weighted=workload_needs_weights(workload_name),
        )
        workload = self._make_workload(workload_name, graph)
        machine = Machine(self.config, policy.make_thp())
        layout = MemoryLayout(workload, policy.plan.order)
        self._apply_scenario(machine, scenario, layout, policy.plan)
        metrics = machine.run(
            workload,
            plan=policy.plan,
            load_bytes=on_disk_bytes(graph),
            tmpfs_remote=scenario.tmpfs_remote,
            preprocess_accesses=preprocess_accesses,
            dataset=dataset_name,
            manager=policy.make_manager(),
        )
        metrics.context.update(
            scenario=scenario.name,
            pressure_gb=scenario.pressure_gb,
            frag_level=scenario.frag_level,
            policy=policy.name,
        )
        self._cache[key] = metrics
        return metrics

    # ------------------------------------------------------------------

    def _prepared_graph(
        self, dataset_name: str, reorder: str, weighted: bool
    ) -> tuple[CsrGraph, int]:
        """The dataset's graph under the requested ordering, plus the
        preprocessing access count to charge."""
        key = (dataset_name, reorder, weighted)
        cached = self._graph_cache.get(key)
        if cached is not None:
            return cached
        graph = load_dataset(dataset_name, weighted=weighted).graph
        if reorder == "original":
            result = (graph, 0)
        else:
            try:
                ordering = ORDERINGS[reorder]
            except KeyError:
                raise ExperimentError(f"unknown reordering {reorder!r}")
            perm = ordering(graph)
            accesses = DBG_COST.accesses(
                graph.num_vertices, graph.num_edges
            )
            result = (graph.relabel(perm), accesses)
        self._graph_cache[key] = result
        return result

    def _make_workload(self, workload_name: str, graph: CsrGraph):
        kwargs = {}
        if workload_name == "pagerank":
            kwargs["max_iterations"] = self.pagerank_iterations
        return create_workload(workload_name, graph, **kwargs)

    def _apply_scenario(
        self,
        machine: Machine,
        scenario: Scenario,
        layout: MemoryLayout,
        plan=None,
    ) -> None:
        """Configure machine memory state before the measured run.

        hugetlbfs reservations are made *first* (boot-time semantics:
        ``vm.nr_hugepages`` is set before any pressure exists), then
        memhog, background noise and fragmentation follow.
        """
        if plan is not None and plan.hugetlb_fractions:
            lengths = {
                spec.array_id: spec.length_bytes
                for spec in layout.specs.values()
            }
            regions = plan.hugetlb_regions_needed(
                lengths, machine.config.pages.huge_page_size
            )
            machine.reserve_hugetlb(regions)
        if scenario.is_pressured:
            assert scenario.pressure_gb is not None
            gb = machine.config.gb_equivalent
            free_target = layout.total_bytes + int(scenario.pressure_gb * gb)
            if free_target < 0:
                raise ExperimentError(
                    f"scenario {scenario.name} leaves negative free memory"
                )
            machine.memhog_leave_free(free_target)
            machine.scatter_noise(
                nonmovable_bytes=int(scenario.noise_nonmovable_gb * gb),
                movable_bytes=int(scenario.noise_movable_gb * gb),
            )
        if scenario.frag_level > 0.0:
            machine.fragment(scenario.frag_level)
        machine.finish_setup()

    # ------------------------------------------------------------------

    def speedup(
        self,
        workload_name: str,
        dataset_name: str,
        policy: Policy,
        scenario: Scenario,
        baseline_policy: Policy,
        baseline_scenario: Optional[Scenario] = None,
    ) -> float:
        """Kernel-time speedup of (policy, scenario) over the baseline
        cell for the same workload and dataset."""
        if baseline_scenario is None:
            baseline_scenario = scenario
        run = self.run_cell(workload_name, dataset_name, policy, scenario)
        base = self.run_cell(
            workload_name, dataset_name, baseline_policy, baseline_scenario
        )
        return run.speedup_over(base)

    def clear_cache(self) -> None:
        """Drop all cached cells (frees memory between figure batches)."""
        self._cache.clear()
