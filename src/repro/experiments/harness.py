"""The experiment runner: one (workload, dataset, policy, scenario) cell
per call, on a freshly configured machine.

Every cell is deterministic, so results are cached by cell key — figures
share baselines (e.g. the 4KB fresh-boot run) without re-simulating.

The runner reproduces the paper's measurement methodology (§3.1,
Appendix):

- the machine is configured (memhog → background noise → frag) before
  the application starts, and setup-time kernel work is not charged;
- the input file is staged through the page cache (remote tmpfs by
  default, local node to reproduce §4.3's interference);
- DBG preprocessing happens before the measured run but its cost is
  recorded and charged to kernel time, as the paper does (§5.1.2).

Resilience (see ``docs/faults.md``): when a :class:`~repro.faults.spec
.FaultPlan` is armed — or a cell legitimately runs out of memory or
exceeds its access budget — the runner degrades gracefully instead of
aborting the whole figure batch:

- injected faults are retried up to ``max_retries`` times with a
  deterministic simulated backoff that is charged to the surviving
  run's kernel time;
- exhausted retries, out-of-memory and budget overruns are captured as
  a structured :class:`CellFailure` (site attribution included), which
  is cached like any result so the batch completes with partial data;
- deterministic failures (OOM, budget) are *not* retried — replaying an
  identical simulation cannot change the outcome.

Each cell gets its own injector seeded from the plan alone, so a cell's
fault sequence does not depend on batch order, and cells the plan never
touches stay bit-for-bit identical to a fault-free run.

Durability (see ``docs/checkpointing.md``): attach a
:class:`~repro.runstate.journal.RunJournal` and every cell outcome is
recorded crash-safely; with ``resume=True`` cells whose spec
fingerprint matches a completed journal record are reconstructed from
the journal instead of re-simulated, so an interrupted sweep picks up
where it left off.  A :class:`~repro.runstate.watchdog.CellWatchdog`
(``cell_cycles`` / ``cell_deadline_seconds``) bounds each cell by
simulated-cycle budget and wall-clock deadline, absorbing hung or
runaway cells as ``FAILED(watchdog)``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Union

from ..config import MachineConfig, scaled
from ..errors import (
    CellBudgetExceededError,
    ExperimentError,
    InjectedFaultError,
    OutOfMemoryError,
    WatchdogExpiredError,
)
from ..faults.injector import FaultInjector
from ..faults.sites import FaultSite
from ..faults.spec import FaultPlan
from ..graph.csr import CsrGraph
from ..graph.datasets import EVALUATION_DATASETS, load_dataset
from ..graph.io import on_disk_bytes
from ..graph.reorder import DBG_COST, ORDERINGS
from ..machine.machine import Machine
from ..machine.metrics import RunMetrics
from ..obs.tracer import MetricsRegistry, Tracer
from ..runstate.journal import RunJournal
from ..runstate.serialize import spec_fingerprint
from ..runstate.watchdog import CellWatchdog
from ..workloads.layout import MemoryLayout
from ..workloads.registry import create_workload, workload_needs_weights
from .policies import Policy
from .runconfig import RunConfig
from .scenarios import Scenario

RETRY_BACKOFF_BASE_CYCLES = 1_000_000
"""Simulated backoff charged for the first retry; doubles per attempt.

Sized like a long direct-reclaim stall: large enough to be visible in
kernel time (a retried cell is measurably slower), small enough not to
drown the phenomenon being measured."""


def retry_backoff_cycles(attempt: int) -> int:
    """Deterministic exponential backoff for the given 1-based failed
    attempt: base, 2x base, 4x base, ..."""
    return RETRY_BACKOFF_BASE_CYCLES * (2 ** (attempt - 1))


@dataclass
class CellFailure:
    """Structured record of one cell that could not produce metrics.

    Stored in the cell cache and placed into figure rows where a
    :class:`~repro.machine.metrics.RunMetrics` would normally go.  To
    keep figure code free of per-cell error handling, a failure is
    *absorbing*: any metric attribute, call or arithmetic involving it
    yields the failure itself, comparisons rank it *after* every number
    (failures always sort last, ordered among themselves by cell
    coordinates), and it renders as ``FAILED(site)`` — so derived
    columns degrade to an explicit failure marker instead of crashing
    the batch.
    """

    workload: str
    dataset: str
    policy: str
    scenario: str
    error: str
    message: str
    attempts: int = 1
    site: Optional[FaultSite] = None
    fault_hit: Optional[int] = None

    ok = False
    """False — counterpart of ``RunMetrics.ok``."""

    @property
    def label(self) -> str:
        """The explicit marker rendered into tables: ``FAILED(site)``."""
        cause = self.site.value if self.site is not None else self.error
        return f"FAILED({cause})"

    @property
    def huge_fraction_per_array(self) -> dict:
        """Empty — a failed cell backed nothing with huge pages."""
        return {}

    def speedup_over(self, baseline) -> "CellFailure":
        """A failed cell has no speedup; propagate the failure."""
        return baseline if isinstance(baseline, CellFailure) else self

    def describe(self) -> str:
        """Multi-line human-readable account (CLI output)."""
        lines = [
            f"{self.label}: {self.workload} on {self.dataset} "
            f"| policy={self.policy} | scenario={self.scenario}",
            f"  error    : {self.error}",
            f"  message  : {self.message}",
            f"  attempts : {self.attempts}",
        ]
        if self.site is not None:
            lines.append(
                f"  site     : {self.site.value} (fire #{self.fault_hit})"
            )
        return "\n".join(lines)

    # -- absorbing protocol -------------------------------------------
    # Figure code computes `run.speedup_over(base)`, divides counters,
    # feeds values to max()/geomean()/round(): all of it must degrade
    # to the failure marker, never crash.

    def __getattr__(self, name: str) -> "CellFailure":
        if name.startswith("__"):  # keep copy/pickle/introspection sane
            raise AttributeError(name)
        return self

    def __call__(self, *args, **kwargs) -> "CellFailure":
        return self

    def __iter__(self):
        return iter(())

    def __contains__(self, item) -> bool:
        return False

    def __add__(self, other):
        return self

    __radd__ = __sub__ = __rsub__ = __mul__ = __rmul__ = __add__
    __truediv__ = __rtruediv__ = __neg__ = __add__

    def __round__(self, ndigits: Optional[int] = None) -> "CellFailure":
        return self

    # -- ordering ------------------------------------------------------
    # Failures sort deterministically *last*: against anything that is
    # not a failure, `failure > x` is True and `failure < x` is False
    # (so sorted() pushes failures past every number); among failures,
    # the cell-coordinate key keeps the order stable across runs.

    def _order_key(self) -> tuple[str, str, str, str, str, str]:
        return (
            self.workload,
            self.dataset,
            self.policy,
            self.scenario,
            self.error,
            self.message,
        )

    def __lt__(self, other) -> bool:
        if isinstance(other, CellFailure):
            return self._order_key() < other._order_key()
        return False

    def __le__(self, other) -> bool:
        if isinstance(other, CellFailure):
            return self._order_key() <= other._order_key()
        return False

    def __gt__(self, other) -> bool:
        if isinstance(other, CellFailure):
            return self._order_key() > other._order_key()
        return True

    def __ge__(self, other) -> bool:
        if isinstance(other, CellFailure):
            return self._order_key() >= other._order_key()
        return True

    def __str__(self) -> str:
        return self.label


CellResult = Union[RunMetrics, CellFailure]
"""What :meth:`ExperimentRunner.run_cell` returns: metrics, or — with
graceful degradation — a structured failure."""


def run_cells(
    cells: Sequence[tuple[str, str, Policy, Scenario]],
    config: Optional[MachineConfig] = None,
    run_config: Optional["RunConfig"] = None,
) -> list[CellResult]:
    """One-shot batch entry point: build a runner, run ``cells``.

    Convenience wrapper for scripts that want results without holding a
    runner; use :class:`ExperimentRunner` directly when you need the
    cache, ``failures`` or ``trace_log`` afterwards.
    """
    runner = ExperimentRunner(config=config, run_config=run_config)
    return runner.run_cells(cells)


_LEGACY_RUNNER_KWARGS = {
    # constructor keyword -> RunConfig field
    "fault_plan": "faults",
    "max_retries": "retries",
    "cell_budget": "cell_budget",
    "journal": "journal",
    "resume": "resume",
    "cell_cycles": "cell_cycles",
    "cell_deadline_seconds": "cell_deadline_seconds",
    "workers": "workers",
}
"""Pre-:class:`~repro.experiments.runconfig.RunConfig` constructor
keywords, kept as deprecation shims (they warn, then fold into the run
config)."""


class ExperimentRunner:
    """Runs and caches experiment cells on one machine profile.

    Execution policy — parallelism, journaling, retries, budgets,
    watchdogs, fault injection, tracing — lives in one validated
    :class:`~repro.experiments.runconfig.RunConfig`::

        runner = ExperimentRunner(run_config=RunConfig(workers=4,
                                                       trace=True))

    The historical flat keywords (``workers=``, ``journal=``,
    ``fault_plan=``, ...) still work but emit ``DeprecationWarning``
    and fold into the run config; the matching attributes
    (``runner.workers``, ``runner.journal``, ...) remain readable and
    writable as thin views over ``runner.run_config``.

    Attributes:
        config: machine profile (default SCALED).
        run_config: the execution policy (see :class:`RunConfig`).
        pagerank_iterations: iteration cap for PR cells, keeping trace
            volume proportional across datasets (the paper runs to
            convergence on real hardware; the cap does not change which
            policy wins, only absolute cycle counts).
        datasets: dataset names used by the figure functions.
        capture_failures: when True (default), failed cells become
            cached :class:`CellFailure` results; when False the error
            propagates after retries (strict mode for tests/debugging).
        failures: structured records of every captured cell failure.
        trace_log: with ``run_config.trace``, one entry per newly
            resolved traced cell — ``{"cell": coords, "events": [...],
            "obs_metrics": {...}}`` — appended in spec order (identical
            bytes serial or parallel; see docs/observability.md).
    """

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        run_config: Optional[RunConfig] = None,
        *,
        pagerank_iterations: int = 3,
        datasets: tuple[str, ...] = EVALUATION_DATASETS,
        capture_failures: bool = True,
        **legacy: Any,
    ) -> None:
        self.config = config if config is not None else scaled()
        self.pagerank_iterations = pagerank_iterations
        self.datasets = datasets
        self.capture_failures = capture_failures
        overrides: dict[str, Any] = {}
        for name, value in legacy.items():
            try:
                target = _LEGACY_RUNNER_KWARGS[name]
            except KeyError:
                raise TypeError(
                    "ExperimentRunner() got an unexpected keyword "
                    f"argument {name!r}"
                ) from None
            warnings.warn(
                f"ExperimentRunner({name}=...) is deprecated; pass "
                f"run_config=RunConfig({target}=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            overrides[target] = value
        if run_config is None:
            run_config = RunConfig(**overrides)
        elif overrides:
            run_config = run_config.replace(**overrides)
        self.run_config = run_config
        self.failures: list[CellFailure] = []
        self.trace_log: list[dict[str, Any]] = []
        self.metrics = MetricsRegistry()
        """Always-on resilience counters (``harness.retries``,
        ``harness.cell_failures``, ``harness.watchdog_kills``,
        ``pool.autosize``), aggregated across every executed cell."""
        self._harness_clock = 0
        self.harness_tracer: Optional[Tracer] = None
        if self.run_config.trace:
            # Harness-level events (retries, absorbed failures, pool
            # sizing) are clocked by a logical resolved-cell counter —
            # identical serial or parallel, never a wall clock.
            self.harness_tracer = Tracer(clock=lambda: self._harness_clock)
        self._autosize_emitted = False
        self.dist_executor: Optional[
            Callable[[list[tuple]], list[CellResult]]
        ] = None
        """When set (``repro figure --distribute``), batches route
        through this callable — e.g. :meth:`repro.dist.DistCoordinator
        .execute_batch` — instead of the local process pool.  It
        receives the not-yet-known cells and must return results
        aligned with them; journaling, caching and trace merging stay
        in this process, in spec order, exactly like the pool path."""
        self._cache: dict[tuple, CellResult] = {}
        self._graph_cache: dict[
            tuple[str, str, bool], tuple[CsrGraph, int]
        ] = {}
        self._perm_cache: dict[tuple[str, str], Any] = {}

    # ------------------------------------------------------------------
    # Compatibility views over the run config.  Readable and writable
    # (tests and notebooks tweak knobs between batches); writes rebuild
    # the frozen RunConfig so validation always holds.
    # ------------------------------------------------------------------

    @property
    def fault_plan(self) -> Optional[FaultPlan]:
        return self.run_config.faults

    @fault_plan.setter
    def fault_plan(self, value: Optional[FaultPlan]) -> None:
        self.run_config = self.run_config.replace(faults=value)

    @property
    def max_retries(self) -> int:
        return self.run_config.retries

    @max_retries.setter
    def max_retries(self, value: int) -> None:
        self.run_config = self.run_config.replace(retries=value)

    @property
    def cell_budget(self) -> Optional[int]:
        return self.run_config.cell_budget

    @cell_budget.setter
    def cell_budget(self, value: Optional[int]) -> None:
        self.run_config = self.run_config.replace(cell_budget=value)

    @property
    def journal(self) -> Optional[RunJournal]:
        return self.run_config.journal

    @journal.setter
    def journal(self, value: Optional[RunJournal]) -> None:
        self.run_config = self.run_config.replace(journal=value)

    @property
    def resume(self) -> bool:
        return self.run_config.resume

    @resume.setter
    def resume(self, value: bool) -> None:
        self.run_config = self.run_config.replace(resume=value)

    @property
    def cell_cycles(self) -> Optional[int]:
        return self.run_config.cell_cycles

    @cell_cycles.setter
    def cell_cycles(self, value: Optional[int]) -> None:
        self.run_config = self.run_config.replace(cell_cycles=value)

    @property
    def cell_deadline_seconds(self) -> Optional[float]:
        return self.run_config.cell_deadline_seconds

    @cell_deadline_seconds.setter
    def cell_deadline_seconds(self, value: Optional[float]) -> None:
        self.run_config = self.run_config.replace(
            cell_deadline_seconds=value
        )

    @property
    def workers(self) -> int:
        return self.run_config.workers

    @workers.setter
    def workers(self, value: int) -> None:
        self.run_config = self.run_config.replace(workers=value)

    # ------------------------------------------------------------------

    @property
    def effective_fault_plan(self) -> Optional[FaultPlan]:
        """The armed plan: run-config level first, else the config's."""
        if self.run_config.faults is not None:
            return self.run_config.faults
        return self.config.fault_plan

    def run_cell(
        self,
        workload_name: str,
        dataset_name: str,
        policy: Policy,
        scenario: Scenario,
    ) -> CellResult:
        """Simulate one cell; cached on repeat calls.

        Returns :class:`RunMetrics`, or a :class:`CellFailure` when the
        cell fails and ``capture_failures`` is set.

        Raises:
            ExperimentError: on configuration mistakes (always), or any
                simulation failure when ``capture_failures`` is False.
        """
        key = self._cell_key(workload_name, dataset_name, policy, scenario)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        spec = None
        cell_coords = None
        if self.journal is not None:
            spec = self.cell_spec(workload_name, dataset_name, policy, scenario)
            cell_coords = self._cell_coords(
                workload_name, dataset_name, policy, scenario
            )
            if self.resume:
                recorded = self.journal.result(spec)
                if recorded is not None:
                    self._cache[key] = recorded
                    self._record_trace(
                        (workload_name, dataset_name, policy, scenario),
                        recorded,
                    )
                    return recorded
            self.journal.begin(spec, cell_coords)

        result = self._execute_cell(workload_name, dataset_name, policy, scenario)

        if self.journal is not None:
            # Journal append failures propagate: a sweep whose journal
            # cannot be written must crash (and later resume), not
            # silently continue unjournaled.
            self.journal.record_result(spec, cell_coords, result)
        self._cache[key] = result
        self._note_result(
            (workload_name, dataset_name, policy, scenario), result
        )
        self._record_trace(
            (workload_name, dataset_name, policy, scenario), result
        )
        return result

    def _note_result(
        self,
        cell: tuple[str, str, Policy, Scenario],
        result: CellResult,
    ) -> None:
        """Fold one *executed* cell's resilience outcome into the
        runner's metrics (and, when tracing, the harness event stream).

        Called once per execution — never for cache hits or journal
        resume reconstructions, whose retries were counted by the run
        that performed them.  Invoked in spec order on both the serial
        and the parallel path, so harness events are byte-identical
        however the batch was executed.
        """
        self._harness_clock += 1
        retries = max(0, int(getattr(result, "attempts", 1) or 1) - 1)
        label = "{}/{}/{}/{}".format(
            cell[0], cell[1], cell[2].name, cell[3].name
        )
        metrics = self.metrics
        tracer = self.harness_tracer
        if retries:
            metrics.count("harness.retries", retries)
            if tracer is not None:
                tracer.emit("harness.retry", cell=label, retries=retries)
        if isinstance(result, CellFailure):
            metrics.count("harness.cell_failures")
            if tracer is not None:
                tracer.emit(
                    "harness.cell_failure",
                    cell=label,
                    cause=result.error,
                    attempts=result.attempts,
                )
            if result.error == "watchdog":
                metrics.count("harness.watchdog_kills")
                if tracer is not None:
                    tracer.emit("harness.watchdog_kill", cell=label)

    def harness_trace_entry(self) -> Optional[dict[str, Any]]:
        """The harness's own pseudo-cell trace entry, or ``None``.

        Harness events (retries, failures, pool sizing) belong to the
        sweep, not to any one cell, so they ride in a synthetic cell
        labelled ``harness/-/-/-`` that the exporters and ``repro trace
        summary`` handle like any other.  Draining resets the tracer, so
        call this once, when flushing the trace.
        """
        tracer = self.harness_tracer
        if tracer is None:
            return None
        snapshot = tracer.metrics.snapshot()
        events = tracer.drain()
        if not events:
            return None
        return {
            "cell": {
                "workload": "harness",
                "dataset": "-",
                "policy": "-",
                "scenario": "-",
            },
            "events": events,
            "obs_metrics": snapshot,
        }

    def _record_trace(
        self,
        cell: tuple[str, str, Policy, Scenario],
        result: CellResult,
    ) -> None:
        """Append one newly resolved cell's events to ``trace_log``.

        Called exactly once per cache insertion (never on cache hits),
        and only in spec order — the parallel merge defers to a final
        in-order pass — so the accumulated log is byte-identical
        however the batch was executed."""
        if not self.run_config.trace or not result.ok:
            return
        events = result.trace
        if not events:
            return
        self.trace_log.append(
            {
                "cell": self._cell_coords(*cell),
                "events": events,
                "obs_metrics": result.obs_metrics,
            }
        )

    def run_cells(
        self, cells: Sequence[tuple[str, str, Policy, Scenario]]
    ) -> list[CellResult]:
        """Run a batch of cells, returning results aligned with ``cells``.

        With ``workers <= 1`` this is exactly ``[run_cell(*c) for c in
        cells]`` — the bit-for-bit serial path.  With ``workers > 1``
        the not-yet-known cells are executed on a work-stealing process
        pool and merged deterministically: the parent stays the single
        owner of the cell cache and the journal, and journal records,
        failure-list entries and cached results are committed in *spec
        order* (the order of ``cells``), never completion order — so
        journal bytes and figure output are identical to a serial run.

        Strict mode (``capture_failures=False``) falls back to the
        serial path: it exists to surface the original exception object
        at the failing cell, which a process boundary cannot preserve.
        """
        cells = list(cells)
        if (
            self.dist_executor is not None
            and len(cells) > 1
            and self.capture_failures
        ):
            # Distributed dispatch is orthogonal to the CPU clamp: a
            # 1-CPU coordinator host still shards across remote workers.
            return self._run_cells_parallel(cells)
        workers = self.workers
        if workers != 1 and len(cells) > 1 and self.capture_failures:
            import os

            from ..parallel.pool import resolve_workers

            requested = workers
            workers = resolve_workers(workers)
            if requested > 0 and workers < requested:
                # Clamped to available CPUs: oversubscription would be
                # pure overhead (the BENCH_sweep 0.82x regression).
                self.metrics.count("pool.autosize")
                if not self._autosize_emitted:
                    self._autosize_emitted = True
                    tracer = self.harness_tracer
                    if tracer is not None:
                        tracer.emit(
                            "pool.autosize",
                            requested=requested,
                            effective=workers,
                            cpus=os.cpu_count() or 1,
                        )
        if workers <= 1 or len(cells) <= 1 or not self.capture_failures:
            return [self.run_cell(*cell) for cell in cells]
        return self._run_cells_parallel(cells)

    def _run_cells_parallel(
        self, cells: list[tuple[str, str, Policy, Scenario]]
    ) -> list[CellResult]:
        from ..parallel.pool import execute_cells, resolve_workers

        results: list[Optional[CellResult]] = [None] * len(cells)
        keys = [self._cell_key(*cell) for cell in cells]
        dispatch: list[int] = []
        dispatched_keys: set = set()
        # Keys resolved by *this* batch (resume hits and executions, not
        # pre-existing cache entries): their traces are appended in one
        # final spec-order pass, matching the serial interleaving.
        fresh_keys: set = set()
        for i, cell in enumerate(cells):
            key = keys[i]
            if key in dispatched_keys:
                continue  # duplicate of a dispatched cell; merged below
            cached = self._cache.get(key)
            if cached is not None:
                results[i] = cached
                continue
            if self.journal is not None and self.resume:
                recorded = self.journal.result(self.cell_spec(*cell))
                if recorded is not None:
                    # Resume hit: cached without journal writes, exactly
                    # like the serial path — never dispatched.
                    self._cache[key] = recorded
                    results[i] = recorded
                    fresh_keys.add(key)
                    continue
            dispatched_keys.add(key)
            dispatch.append(i)

        executed: dict[int, CellResult] = {}
        if dispatch:
            if self.dist_executor is not None:
                outcomes = self.dist_executor(
                    [cells[i] for i in dispatch]
                )
            else:
                # Graph preparation happens once, in the parent: workers
                # inherit (fork) or receive (spawn) the prepared cache
                # and never duplicate load/reorder work.
                for i in dispatch:
                    workload_name, dataset_name, policy, _scenario = (
                        cells[i]
                    )
                    self._prepared_graph(
                        dataset_name, policy.plan.reorder,
                        weighted=workload_needs_weights(workload_name),
                    )
                outcomes = execute_cells(
                    self, [cells[i] for i in dispatch],
                    resolve_workers(self.workers),
                )
            executed = dict(zip(dispatch, outcomes))

        # Deterministic merge, in spec order: journal begin/result pairs,
        # failure-list entries and cache insertions replay exactly the
        # sequence a serial run would have produced.
        for i, cell in enumerate(cells):
            if i in executed:
                result = executed[i]
                if self.journal is not None:
                    spec = self.cell_spec(*cell)
                    coords = self._cell_coords(*cell)
                    self.journal.begin(spec, coords)
                    self.journal.record_result(spec, coords, result)
                if isinstance(result, CellFailure):
                    self.failures.append(result)
                self._cache[keys[i]] = result
                self._note_result(cell, result)
                results[i] = result
                fresh_keys.add(keys[i])
            elif results[i] is None:
                # Duplicate of a dispatched cell: its first occurrence
                # (earlier in spec order) has already filled the cache.
                results[i] = self._cache[keys[i]]
        if self.run_config.trace and fresh_keys:
            # Trace append runs as one in-order pass over the batch: a
            # serial run interleaves resume hits and executions in cell
            # order, so the parallel merge must too (first occurrence of
            # each newly resolved key only).
            appended: set = set()
            for i, cell in enumerate(cells):
                key = keys[i]
                if key in fresh_keys and key not in appended:
                    appended.add(key)
                    self._record_trace(cell, self._cache[key])
        return results  # type: ignore[return-value]

    def _cell_key(
        self,
        workload_name: str,
        dataset_name: str,
        policy: Policy,
        scenario: Scenario,
    ) -> tuple:
        """The in-memory cache identity of one cell (everything that can
        change its simulated outcome)."""
        return (
            workload_name,
            dataset_name,
            policy.name,
            policy.plan.order.value,
            tuple(sorted(policy.plan.advise_fractions.items())),
            tuple(sorted(policy.plan.hugetlb_fractions.items())),
            policy.plan.reorder,
            scenario,
            self.pagerank_iterations,
            self.config.name,
            self.effective_fault_plan,
            self.max_retries,
            self.cell_budget,
            self.cell_cycles,
        )

    @staticmethod
    def _cell_coords(
        workload_name: str,
        dataset_name: str,
        policy: Policy,
        scenario: Scenario,
    ) -> dict[str, str]:
        return {
            "workload": workload_name,
            "dataset": dataset_name,
            "policy": policy.name,
            "scenario": scenario.name,
        }

    def _execute_cell(
        self,
        workload_name: str,
        dataset_name: str,
        policy: Policy,
        scenario: Scenario,
    ) -> CellResult:
        """Simulate one cell (retries, fault injection, capture) without
        touching the cache or the journal — the part of :meth:`run_cell`
        that is safe to run in a worker process."""
        plan = self.effective_fault_plan
        graph, preprocess_accesses = self._prepared_graph(
            dataset_name, policy.plan.reorder,
            weighted=workload_needs_weights(workload_name),
        )
        # One injector for all attempts of this cell: counters persist
        # across retries, so transient (max_fires-capped) glitches are
        # survived while wear-out triggers keep failing.
        injector = (
            plan.make_injector()
            if plan is not None and plan.enabled
            else None
        )

        attempts = 0
        retry_cycles = 0
        while True:
            attempts += 1
            try:
                metrics = self._simulate_cell(
                    workload_name, dataset_name, policy, scenario,
                    graph, preprocess_accesses, injector,
                )
            except InjectedFaultError as error:
                if attempts <= self.max_retries:
                    # Deterministic simulated backoff, charged to the
                    # surviving run's kernel-time ledger.
                    retry_cycles += retry_backoff_cycles(attempts)
                    continue
                result = self._capture(
                    workload_name, dataset_name, policy, scenario,
                    error, attempts,
                )
            except (
                CellBudgetExceededError,
                OutOfMemoryError,
                WatchdogExpiredError,
            ) as error:
                # Deterministic failures: retrying replays the identical
                # simulation, so capture immediately.  (A wall-clock
                # watchdog expiry is not strictly deterministic, but a
                # cell slow enough to trip it would burn the retry
                # budget re-wedging the sweep — absorb it immediately.)
                result = self._capture(
                    workload_name, dataset_name, policy, scenario,
                    error, attempts,
                )
            else:
                metrics.attempts = attempts
                metrics.retry_cycles = retry_cycles
                metrics.context.update(
                    scenario=scenario.name,
                    pressure_gb=scenario.pressure_gb,
                    frag_level=scenario.frag_level,
                    policy=policy.name,
                )
                result = metrics
            break
        return result

    def cell_spec(
        self,
        workload_name: str,
        dataset_name: str,
        policy: Policy,
        scenario: Scenario,
    ) -> str:
        """The cell's journal identity (see
        :func:`~repro.runstate.serialize.spec_fingerprint`): derived
        from the cell specification alone — never from object identity
        or cache state — so :meth:`clear_cache` and process restarts do
        not invalidate journal records."""
        return spec_fingerprint(
            workload=workload_name,
            dataset=dataset_name,
            policy=policy,
            scenario=scenario,
            pagerank_iterations=self.pagerank_iterations,
            profile_name=self.config.name,
            fault_plan=self.effective_fault_plan,
            max_retries=self.max_retries,
            cell_budget=self.cell_budget,
            cell_cycles=self.cell_cycles,
        )

    def _simulate_cell(
        self,
        workload_name: str,
        dataset_name: str,
        policy: Policy,
        scenario: Scenario,
        graph: CsrGraph,
        preprocess_accesses: int,
        injector: Optional[FaultInjector],
    ) -> RunMetrics:
        """One attempt at one cell, on a fresh machine."""
        workload = self._make_workload(workload_name, graph)
        machine = Machine(
            self.config,
            policy.make_thp(),
            injector=injector,
            # sanitize=None defers to REPRO_SANITIZE / set_sanitize();
            # trace=True arms a fresh per-cell tracer (repro.obs).
            sanitize=True if self.run_config.sanitize else None,
            trace=self.run_config.trace,
            tlb_engine=self.run_config.tlb_engine,
        )
        layout = MemoryLayout(workload, policy.plan.order)
        self._apply_scenario(machine, scenario, layout, policy.plan)
        # A fresh watchdog per attempt: retries must not inherit an
        # already-spent cycle budget or wall-clock window.
        watchdog = None
        if self.cell_cycles is not None or self.cell_deadline_seconds is not None:
            watchdog = CellWatchdog(
                max_cycles=self.cell_cycles,
                deadline_seconds=self.cell_deadline_seconds,
            )
        return machine.run(
            workload,
            plan=policy.plan,
            load_bytes=on_disk_bytes(graph),
            tmpfs_remote=scenario.tmpfs_remote,
            preprocess_accesses=preprocess_accesses,
            dataset=dataset_name,
            manager=policy.make_manager(),
            access_budget=self.cell_budget,
            watchdog=watchdog,
        )

    def _capture(
        self,
        workload_name: str,
        dataset_name: str,
        policy: Policy,
        scenario: Scenario,
        error: Exception,
        attempts: int,
    ) -> CellFailure:
        """Fold a cell-level error into a structured failure record."""
        if not self.capture_failures:
            raise error
        failure = CellFailure(
            workload=workload_name,
            dataset=dataset_name,
            policy=policy.name,
            scenario=scenario.name,
            # Errors that declare a cause label (e.g. the watchdog's
            # "watchdog") render as FAILED(label); the rest fall back to
            # the exception class name.
            error=getattr(error, "cause_label", type(error).__name__),
            message=str(error),
            attempts=attempts,
            site=getattr(error, "site", None),
            fault_hit=getattr(error, "hit", None),
        )
        self.failures.append(failure)
        return failure

    # ------------------------------------------------------------------

    def _prepared_graph(
        self, dataset_name: str, reorder: str, weighted: bool
    ) -> tuple[CsrGraph, int]:
        """The dataset's graph under the requested ordering, plus the
        preprocessing access count to charge."""
        key = (dataset_name, reorder, weighted)
        cached = self._graph_cache.get(key)
        if cached is not None:
            return cached
        graph = load_dataset(dataset_name, weighted=weighted).graph
        if reorder == "original":
            result = (graph, 0)
        else:
            perm = self._reorder_permutation(dataset_name, reorder, graph)
            accesses = DBG_COST.accesses(
                graph.num_vertices, graph.num_edges
            )
            result = (graph.relabel(perm), accesses)
        self._graph_cache[key] = result
        return result

    def _reorder_permutation(
        self, dataset_name: str, reorder: str, graph: CsrGraph
    ) -> Any:
        """The reorder permutation for ``(dataset, reorder)``, computed
        once and shared across the weighted and unweighted graph
        variants: every ordering depends only on the graph *structure*
        (degrees, adjacency), which edge weights do not change."""
        key = (dataset_name, reorder)
        perm = self._perm_cache.get(key)
        if perm is None:
            try:
                ordering = ORDERINGS[reorder]
            except KeyError:
                raise ExperimentError(
                    f"unknown reordering {reorder!r}"
                ) from None
            perm = ordering(graph)
            self._perm_cache[key] = perm
        return perm

    def _make_workload(self, workload_name: str, graph: CsrGraph):
        kwargs = {}
        if workload_name == "pagerank":
            kwargs["max_iterations"] = self.pagerank_iterations
        return create_workload(workload_name, graph, **kwargs)

    def _apply_scenario(
        self,
        machine: Machine,
        scenario: Scenario,
        layout: MemoryLayout,
        plan=None,
    ) -> None:
        """Configure machine memory state before the measured run.

        hugetlbfs reservations are made *first* (boot-time semantics:
        ``vm.nr_hugepages`` is set before any pressure exists), then
        memhog, background noise and fragmentation follow.
        """
        if plan is not None and plan.hugetlb_fractions:
            lengths = {
                spec.array_id: spec.length_bytes
                for spec in layout.specs.values()
            }
            regions = plan.hugetlb_regions_needed(
                lengths, machine.config.pages.huge_page_size
            )
            machine.reserve_hugetlb(regions)
        if scenario.is_pressured:
            assert scenario.pressure_gb is not None
            gb = machine.config.gb_equivalent
            free_target = layout.total_bytes + int(scenario.pressure_gb * gb)
            if free_target < 0:
                raise ExperimentError(
                    f"scenario {scenario.name} leaves negative free memory"
                )
            machine.memhog_leave_free(free_target)
            machine.scatter_noise(
                nonmovable_bytes=int(scenario.noise_nonmovable_gb * gb),
                movable_bytes=int(scenario.noise_movable_gb * gb),
            )
        if scenario.frag_level > 0.0:
            machine.fragment(scenario.frag_level)
        machine.finish_setup()

    # ------------------------------------------------------------------

    def speedup(
        self,
        workload_name: str,
        dataset_name: str,
        policy: Policy,
        scenario: Scenario,
        baseline_policy: Policy,
        baseline_scenario: Optional[Scenario] = None,
    ) -> float:
        """Kernel-time speedup of (policy, scenario) over the baseline
        cell for the same workload and dataset (a :class:`CellFailure`
        if either cell failed)."""
        if baseline_scenario is None:
            baseline_scenario = scenario
        run = self.run_cell(workload_name, dataset_name, policy, scenario)
        base = self.run_cell(
            workload_name, dataset_name, baseline_policy, baseline_scenario
        )
        return run.speedup_over(base)

    def clear_cache(self) -> None:
        """Drop all cached cells *and* prepared graphs (frees memory
        between figure batches); failure records and the trace log are
        reset too.

        Journal state is untouched: spec fingerprints derive from the
        cell *specification* (see :meth:`cell_spec`), not from object
        identity or cache contents, so completed journal records remain
        valid — and resumable — across any number of cache clears."""
        self._cache.clear()
        self._graph_cache.clear()
        self._perm_cache.clear()
        self.failures.clear()
        self.trace_log.clear()
        self.metrics.reset()
        self._harness_clock = 0
        self._autosize_emitted = False
        tracer = self.harness_tracer
        if tracer is not None:
            tracer.drain()
