"""Plain-text table rendering and durable saving for experiment results.

The paper's artifact scripts emit text tables per experiment; these
helpers render the same kind of output from the harness's row dicts, so
benchmark runs print the rows a reader can compare against the paper's
figures.  :func:`save_figure_result` is the one sanctioned way to put a
figure on disk: it goes through :func:`repro.runstate.atomic
.atomic_write_text`, so an interrupted save can never leave a torn
half-figure behind (the REP007 lint enforces this discipline).
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Optional

from ..runstate.atomic import atomic_write_text


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    # Non-floats (including CellFailure) render via str(); a failed cell
    # prints its explicit "FAILED(site)" marker in place of the metric.
    return str(value)


def format_table(
    rows: Iterable[dict[str, Any]],
    columns: Optional[list[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned text table.

    Args:
        rows: dictionaries sharing (a superset of) the same keys.
        columns: column order; defaults to the first row's keys.
        title: optional heading line.
    """
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in table:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line))
        )
    return "\n".join(lines)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's cross-configuration aggregate).

    Failed cells are excluded explicitly: a ``CellFailure`` carries
    ``ok=False`` (and — because failures sort *after* every number —
    would otherwise pass a bare ``v > 0`` filter), so the ``ok`` check
    drops it and the aggregate covers the cells that did produce
    data."""
    values = [v for v in values if getattr(v, "ok", True) and v > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def save_figure_result(result: Any, directory: str) -> tuple[str, str]:
    """Write ``<figure_id>.txt`` (rendered table) and
    ``<figure_id>.json`` (machine-readable rows) under ``directory``.

    Both files are written atomically (tmp + fsync + rename), so a
    crash mid-save leaves either the previous complete version or
    nothing — never a torn file that a resumed run would have to
    second-guess.  Returns ``(txt_path, json_path)``.
    """
    os.makedirs(directory, exist_ok=True)
    txt_path = os.path.join(directory, f"{result.figure_id}.txt")
    json_path = os.path.join(directory, f"{result.figure_id}.json")
    atomic_write_text(txt_path, result.render() + "\n")
    atomic_write_text(json_path, result.to_json() + "\n")
    return txt_path, json_path
