"""Run configuration: one validated, immutable object for every knob
that controls *how* an experiment sweep executes.

:class:`~repro.experiments.harness.ExperimentRunner` accreted these
knobs one PR at a time — fault injection, retries, budgets, journaling,
watchdogs, parallelism, tracing — until its constructor was a grab-bag
of nine keyword arguments.  :class:`RunConfig` consolidates them:

- **one frozen dataclass** holds the full execution policy, validated
  on construction (a nonsense configuration fails loudly at build time,
  not three figures into a sweep);
- **normalization is built in**: ``journal`` accepts a path string or a
  :class:`~repro.runstate.journal.RunJournal`, ``faults`` accepts a
  plan string (``"compaction:0.5"``) or a parsed
  :class:`~repro.faults.spec.FaultPlan`;
- :meth:`RunConfig.from_cli` is the single translation point from
  ``argparse`` flags, shared by every subcommand.

The knobs deliberately exclude anything that changes the *simulated
outcome's identity* beyond what the journal fingerprints already cover:
``RunConfig`` says how to run, :class:`~repro.config.MachineConfig`
says what to simulate.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Union

from ..errors import ConfigError
from ..faults.spec import FaultPlan
from ..runstate.journal import RunJournal

if TYPE_CHECKING:
    import argparse


@dataclass(frozen=True)
class RunConfig:
    """Execution policy for an :class:`ExperimentRunner`.

    Attributes:
        workers: process fan-out for batched cells. ``1`` is the serial
            path (bit-for-bit identical to historical behavior), ``0``
            means one worker per CPU, ``N > 1`` uses a work-stealing
            pool with a deterministic spec-order merge.
        journal: crash-safe run journal — a
            :class:`~repro.runstate.journal.RunJournal` or a path
            string (normalized to one).  ``None`` disables journaling.
        resume: reuse completed journal records whose spec fingerprint
            matches instead of re-simulating.  Requires ``journal``.
        retries: bounded retries per cell for *injected* faults
            (deterministic OOM/budget failures are never retried).
        cell_budget: cap on simulated compute accesses per cell
            (runaway guard); ``None`` disables it.
        cell_cycles: per-cell simulated-cycle watchdog budget
            (deterministic — participates in cell identity).
        cell_deadline_seconds: per-cell wall-clock watchdog deadline
            (nondeterministic by design — excluded from cell identity).
        faults: fault-injection plan — a
            :class:`~repro.faults.spec.FaultPlan` or a plan string
            (normalized via :meth:`FaultPlan.parse` with
            ``fault_seed``).  Overrides ``config.fault_plan`` when set.
        fault_seed: seed used when ``faults`` is given as a string.
        sanitize: force MemSan on for every simulated cell (``False``
            defers to ``REPRO_SANITIZE`` / ``set_sanitize()``).
        trace: arm the observability tracer (:mod:`repro.obs`) on every
            simulated machine; events and counter snapshots ride on
            each cell's :class:`~repro.machine.metrics.RunMetrics` and
            accumulate on the runner's ``trace_log``.
        tlb_engine: translation engine per simulated cell — ``"exact"``
            (the reference per-lookup simulator), ``"batch"`` (the
            vectorized set-wise engine, docs/performance.md) or
            ``"auto"`` (batch after a one-time per-geometry equivalence
            self-check, falling back to exact).  Both engines produce
            identical counts, so the engine is pure execution policy:
            it is *excluded* from journal spec fingerprints, and a
            sweep journaled under one engine resumes cleanly under the
            other.
    """

    workers: int = 1
    journal: Optional[Union[RunJournal, str]] = None
    resume: bool = False
    retries: int = 2
    cell_budget: Optional[int] = None
    cell_cycles: Optional[int] = None
    cell_deadline_seconds: Optional[float] = None
    faults: Optional[Union[FaultPlan, str]] = None
    fault_seed: int = 0
    sanitize: bool = False
    trace: bool = False
    tlb_engine: str = "auto"

    def __post_init__(self) -> None:
        # Normalization first (idempotent: replace() re-runs this).
        if isinstance(self.journal, str):
            object.__setattr__(self, "journal", RunJournal(self.journal))
        if isinstance(self.faults, str):
            object.__setattr__(
                self,
                "faults",
                FaultPlan.parse(self.faults, seed=self.fault_seed),
            )
        # Validation.
        if self.workers < 0:
            raise ConfigError(
                f"workers must be >= 0 (0 = one per CPU), got {self.workers}"
            )
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.cell_budget is not None and self.cell_budget <= 0:
            raise ConfigError(
                f"cell_budget must be positive or None, got {self.cell_budget}"
            )
        if self.cell_cycles is not None and self.cell_cycles <= 0:
            raise ConfigError(
                f"cell_cycles must be positive or None, got {self.cell_cycles}"
            )
        if (
            self.cell_deadline_seconds is not None
            and self.cell_deadline_seconds <= 0
        ):
            raise ConfigError(
                "cell_deadline_seconds must be positive or None, "
                f"got {self.cell_deadline_seconds}"
            )
        if self.resume and self.journal is None:
            raise ConfigError("resume=True requires a journal")
        if self.journal is not None and not isinstance(
            self.journal, RunJournal
        ):
            raise ConfigError(
                "journal must be a RunJournal or a path string, "
                f"got {type(self.journal).__name__}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ConfigError(
                "faults must be a FaultPlan or a plan string, "
                f"got {type(self.faults).__name__}"
            )
        if self.tlb_engine not in ("exact", "batch", "auto"):
            raise ConfigError(
                "tlb_engine must be one of 'exact', 'batch', 'auto', "
                f"got {self.tlb_engine!r}"
            )

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def worker_view(self) -> "RunConfig":
        """The configuration a pool worker runs under: identical
        execution policy minus durability — the parent process is the
        single owner of the journal (docs/performance.md)."""
        if self.journal is None and not self.resume and self.workers == 1:
            return self
        return self.replace(journal=None, resume=False, workers=1)

    @classmethod
    def from_cli(cls, args: "argparse.Namespace") -> "RunConfig":
        """Build a :class:`RunConfig` from parsed CLI flags.

        Accepts the union of the ``run``/``figure`` flag sets; absent
        attributes fall back to their defaults, so subcommands that
        omit a flag group still translate cleanly.

        Raises:
            ConfigError: on an invalid combination (e.g. ``--resume``
                without ``--journal``).
        """
        plan = None
        fault_seed = getattr(args, "fault_seed", 0)
        if getattr(args, "faults", None):
            plan = FaultPlan.parse(args.faults, seed=fault_seed)
        journal = None
        if getattr(args, "journal", None):
            # The journal's own injector (for the journal.* crash-safety
            # sites) counts appends sweep-wide, unlike the per-cell
            # simulation injectors.
            # lock=True: CLI sweeps own their journal for the process
            # lifetime, so `repro runs gc` (and a second sweep) refuse
            # to touch it while this run is alive.
            journal = RunJournal(
                args.journal,
                injector=(
                    plan.make_injector() if plan and plan.enabled else None
                ),
                lock=True,
            )
        elif getattr(args, "resume", False):
            raise ConfigError("--resume requires --journal PATH")
        return cls(
            workers=getattr(args, "workers", 1),
            journal=journal,
            resume=getattr(args, "resume", False),
            retries=getattr(args, "retries", 2),
            cell_budget=getattr(args, "cell_budget", None),
            cell_cycles=getattr(args, "cell_cycles", None),
            cell_deadline_seconds=getattr(args, "cell_deadline", None),
            faults=plan,
            fault_seed=fault_seed,
            sanitize=getattr(args, "sanitize", False),
            trace=bool(getattr(args, "trace", None)),
            tlb_engine=getattr(args, "tlb_engine", None) or "auto",
        )
