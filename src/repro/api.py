"""repro.api — the supported public surface, in one import.

Everything here is stable across releases: scripts, notebooks and the
bundled ``examples/`` import from this module only, so internal
reorganizations (module moves, constructor consolidation like
:class:`RunConfig`) never break downstream code.  Anything *not*
re-exported here is internal and may change without notice.

Typical session::

    from repro.api import (ExperimentRunner, RunConfig, POLICIES,
                           SCENARIOS, fig07_pressure_alloc_order)

    runner = ExperimentRunner(run_config=RunConfig(workers=4,
                                                   trace=True))
    print(fig07_pressure_alloc_order(runner).render())

The surface groups into:

- **Simulation**: :class:`Machine`, :class:`ThpPolicy`,
  :class:`RunMetrics`, machine profiles.
- **Experiments**: :class:`ExperimentRunner`, :class:`RunConfig`,
  :func:`run_cells`, policies, scenarios, the figure entry points and
  the :data:`FIGURES` registry.
- **Graphs & workloads**: datasets, generators, edge-list I/O,
  reorderings, the workload registry.
- **Observability** (docs/observability.md): :class:`Tracer`, trace
  exporters and the event schema.
- **Core contribution**: the page-size advisor and placement plans.
- **Policy API** (docs/policies.md): the :class:`PagePolicy` hook
  protocol, the read-only :class:`PolicyView`, the zoo registry
  (:func:`register_policy` / :func:`get_policy`) and the
  :func:`run_tournament` leaderboard harness.
"""

from .config import (
    MachineConfig,
    PROFILES,
    get_profile,
    paper_x86,
    scaled,
    scaled_1m,
    tiny,
)
from .core import (
    AdvisorReport,
    PageSizeAdvisor,
    PlacementPlan,
    huge_page_budget,
    selective_property_plan,
)
from .errors import ReproError
from .experiments import (
    ExperimentRunner,
    POLICIES,
    Policy,
    RunConfig,
    SCENARIOS,
    Scenario,
    format_table,
    run_cells,
    selective_policy,
)
from .experiments.figures import (
    FIGURES,
    FigureResult,
    ablation_alloc_order_census,
    ablation_promotion_path,
    ablation_reorder,
    dbg_overhead,
    fig01_thp_speedup,
    fig02_translation_overhead,
    fig03_tlb_miss_rates,
    fig04_access_breakdown,
    fig05_data_structure_thp,
    fig07_pressure_alloc_order,
    fig07b_pressure_sweep,
    fig08_fragmentation,
    fig09_frag_sweep,
    fig10_selective_thp,
    fig11_selectivity_sweep,
    headline_summary,
    page_cache_interference,
    recommended_reorder,
    table2_datasets,
)
from .experiments.policies import (
    autotuner_policy,
    hugetlb_policy,
    hotness_manager_policy,
    utilization_manager_policy,
)
from .experiments.scenarios import constrained, fragmented, fresh
from .faults import FaultPlan
from .graph import (
    CsrGraph,
    DATASETS,
    apply_order,
    dbg_order,
    load_dataset,
    power_law_graph,
    rmat_graph,
)
from .graph.io import load_edge_list, save_edge_list
from .graph.reorder import ORDERINGS
from .machine import Machine, RunMetrics
from .mem import ThpMode, ThpPolicy
from .policy import (
    BasePagePolicy,
    DemoteCandidate,
    FaultContext,
    PageDecision,
    PagePolicy,
    PolicyView,
    PromotionCandidate,
)
from .policy.registry import (
    get_policy,
    register_policy,
    registered_policies,
)
from .policy.tournament import run_tournament
from .policy.zoo import AdvisorHook, AutotunerHook
from .obs import (
    EVENT_NAMES,
    EVENT_SCHEMA,
    Tracer,
    read_trace_jsonl,
    summarize,
    to_chrome_trace,
    validate_trace_records,
    write_chrome_trace,
    write_trace_jsonl,
)
from .chaos import ChaosPlan, run_scenarios
from .dist import DistConfig, DistCoordinator, WorkerConfig, work_loop
from .runstate import RunJournal
from .runstate.merge import (
    MergeConflictError,
    format_conflict_report,
    merge_journals,
    write_merged,
)
from .serve import ServiceConfig, SweepClient
from .tlb import (
    TLB_ENGINES,
    BatchTranslationHierarchy,
    TranslationHierarchy,
    batch_engine_matches,
    make_hierarchy,
)
from .units import format_bytes
from .workloads import Bfs, PageRank, Sssp, create_workload

__all__ = [
    "AdvisorHook",
    "AdvisorReport",
    "AutotunerHook",
    "BasePagePolicy",
    "BatchTranslationHierarchy",
    "Bfs",
    "ChaosPlan",
    "CsrGraph",
    "DATASETS",
    "DemoteCandidate",
    "DistConfig",
    "DistCoordinator",
    "EVENT_NAMES",
    "EVENT_SCHEMA",
    "ExperimentRunner",
    "FIGURES",
    "FaultContext",
    "FaultPlan",
    "FigureResult",
    "Machine",
    "MachineConfig",
    "MergeConflictError",
    "ORDERINGS",
    "POLICIES",
    "PROFILES",
    "PageDecision",
    "PagePolicy",
    "PageRank",
    "PageSizeAdvisor",
    "PlacementPlan",
    "Policy",
    "PolicyView",
    "PromotionCandidate",
    "ReproError",
    "RunConfig",
    "RunJournal",
    "RunMetrics",
    "SCENARIOS",
    "Scenario",
    "ServiceConfig",
    "Sssp",
    "SweepClient",
    "TLB_ENGINES",
    "ThpMode",
    "ThpPolicy",
    "Tracer",
    "TranslationHierarchy",
    "WorkerConfig",
    "ablation_alloc_order_census",
    "ablation_promotion_path",
    "ablation_reorder",
    "apply_order",
    "autotuner_policy",
    "batch_engine_matches",
    "constrained",
    "create_workload",
    "dbg_order",
    "dbg_overhead",
    "fig01_thp_speedup",
    "fig02_translation_overhead",
    "fig03_tlb_miss_rates",
    "fig04_access_breakdown",
    "fig05_data_structure_thp",
    "fig07_pressure_alloc_order",
    "fig07b_pressure_sweep",
    "fig08_fragmentation",
    "fig09_frag_sweep",
    "fig10_selective_thp",
    "fig11_selectivity_sweep",
    "format_bytes",
    "format_conflict_report",
    "format_table",
    "fragmented",
    "fresh",
    "get_policy",
    "get_profile",
    "headline_summary",
    "hotness_manager_policy",
    "huge_page_budget",
    "hugetlb_policy",
    "load_dataset",
    "load_edge_list",
    "make_hierarchy",
    "merge_journals",
    "page_cache_interference",
    "paper_x86",
    "power_law_graph",
    "read_trace_jsonl",
    "recommended_reorder",
    "register_policy",
    "registered_policies",
    "rmat_graph",
    "run_cells",
    "run_scenarios",
    "run_tournament",
    "save_edge_list",
    "scaled",
    "scaled_1m",
    "selective_policy",
    "selective_property_plan",
    "summarize",
    "table2_datasets",
    "tiny",
    "to_chrome_trace",
    "utilization_manager_policy",
    "validate_trace_records",
    "work_loop",
    "write_chrome_trace",
    "write_merged",
    "write_trace_jsonl",
]
