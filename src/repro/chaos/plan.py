"""Deterministic chaos plans: process-level adversity on a schedule.

A chaos plan composes the simulator's injected fault sites
(:mod:`repro.faults`) with the adversity they cannot express — killing
whole processes and filling the disk — while staying exactly as
deterministic: every action fires at a counted ordinal, never at
random.

Grammar (comma list): ``action:point:ordinal``

- ``kill-worker:cell:N`` — the worker executing the N-th task
  *dispatch* SIGKILLs itself mid-cell (redeliveries count as
  dispatches, so a plan can also kill the retry).
- ``kill-server:append:N`` — the server tears the N-th journal append
  (writes half the record, fsyncs, then SIGKILLs itself) — a crash
  mid-``journal.write``, one level below the ``journal.write`` fault
  site because the *process* dies too.
- ``enospc:append:N`` — journal appends fail with ``ENOSPC`` from the
  N-th onward (the disk stays "full"), driving the service's
  cached-only degradation.
- ``drop:net.connect:N`` / ``drop:net.send:N`` / ``drop:net.recv:N`` —
  the N-th network operation *at that point* fails with a connection
  error (one lost packet/refused dial, exactly once).
- ``delay:net.send:N`` / ``delay:net.recv:N`` — the N-th operation at
  that point stalls (the delay duration is a knob of the component
  consuming the plan, e.g. ``repro work --net-delay``), long enough to
  expire a lease without losing the result.
- ``sever:net.partition:N`` — from the N-th network operation onward
  (counted across *all* points) every operation fails: a full network
  partition that never heals, the distributed layer's worst case.

Ordinals are 1-based.  Kill and ``drop``/``delay`` actions fire exactly
once (their ordinal must match); ``enospc`` and ``sever`` are
thresholds (``>=``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

ACTION_KILL_WORKER = "kill-worker"
ACTION_KILL_SERVER = "kill-server"
ACTION_ENOSPC = "enospc"
ACTION_DROP = "drop"
ACTION_DELAY = "delay"
ACTION_SEVER = "sever"

POINT_CELL = "cell"
POINT_APPEND = "append"
POINT_NET_CONNECT = "net.connect"
POINT_NET_SEND = "net.send"
POINT_NET_RECV = "net.recv"
POINT_NET_PARTITION = "net.partition"

NET_POINTS = (POINT_NET_CONNECT, POINT_NET_SEND, POINT_NET_RECV)
"""The per-operation network fault points (``net.partition`` is the
whole-link threshold, not an operation point)."""

_VALID = {
    ACTION_KILL_WORKER: (POINT_CELL,),
    ACTION_KILL_SERVER: (POINT_APPEND,),
    ACTION_ENOSPC: (POINT_APPEND,),
    ACTION_DROP: NET_POINTS,
    ACTION_DELAY: (POINT_NET_SEND, POINT_NET_RECV),
    ACTION_SEVER: (POINT_NET_PARTITION,),
}


@dataclass(frozen=True)
class ChaosAction:
    action: str
    point: str
    ordinal: int


@dataclass(frozen=True)
class ChaosPlan:
    """A parsed, immutable chaos schedule."""

    actions: tuple[ChaosAction, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "ChaosPlan":
        actions = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            pieces = part.split(":")
            if len(pieces) != 3:
                raise ConfigError(
                    f"bad chaos action {part!r}: expected "
                    "action:point:ordinal"
                )
            action, point, raw_ordinal = pieces
            if action not in _VALID:
                raise ConfigError(
                    f"unknown chaos action {action!r}; known: "
                    + ", ".join(sorted(_VALID))
                )
            if point not in _VALID[action]:
                raise ConfigError(
                    f"chaos action {action!r} does not support point "
                    f"{point!r}; supported: "
                    + ", ".join(_VALID[action])
                )
            try:
                ordinal = int(raw_ordinal)
            except ValueError as exc:
                raise ConfigError(
                    f"bad chaos ordinal {raw_ordinal!r} in {part!r}"
                ) from exc
            if ordinal < 1:
                raise ConfigError(
                    f"chaos ordinals are 1-based, got {ordinal}"
                )
            actions.append(ChaosAction(action, point, ordinal))
        if not actions:
            raise ConfigError("chaos plan is empty")
        return cls(actions=tuple(actions))

    # ------------------------------------------------------------------

    def kill_worker_at(self, dispatch_ordinal: int) -> bool:
        """True when the worker serving this dispatch must die mid-cell."""
        return any(
            a.action == ACTION_KILL_WORKER and a.ordinal == dispatch_ordinal
            for a in self.actions
        )

    def kill_server_at_append(self, append_ordinal: int) -> bool:
        """True when this journal append must tear and kill the server."""
        return any(
            a.action == ACTION_KILL_SERVER and a.ordinal == append_ordinal
            for a in self.actions
        )

    def enospc_at_append(self, append_ordinal: int) -> bool:
        """True when this (and every later) append must fail ENOSPC."""
        return any(
            a.action == ACTION_ENOSPC and append_ordinal >= a.ordinal
            for a in self.actions
        )

    # -- network fault sites (consumed by repro.dist.netchaos) ---------

    def drop_at(self, point: str, point_ordinal: int) -> bool:
        """True when the ``point_ordinal``-th operation at ``point``
        (``net.connect`` / ``net.send`` / ``net.recv``) must fail."""
        return any(
            a.action == ACTION_DROP
            and a.point == point
            and a.ordinal == point_ordinal
            for a in self.actions
        )

    def delay_at(self, point: str, point_ordinal: int) -> bool:
        """True when the ``point_ordinal``-th operation at ``point``
        must stall before proceeding."""
        return any(
            a.action == ACTION_DELAY
            and a.point == point
            and a.ordinal == point_ordinal
            for a in self.actions
        )

    def severed_at(self, op_ordinal: int) -> bool:
        """True when the link is partitioned at the ``op_ordinal``-th
        network operation (counted across all points; threshold —
        partitions never heal)."""
        return any(
            a.action == ACTION_SEVER and op_ordinal >= a.ordinal
            for a in self.actions
        )
