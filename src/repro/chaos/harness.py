"""Chaos scenarios: deterministic process-level adversity, asserted.

Each scenario starts a real ``repro serve`` subprocess (UDS transport),
applies one kind of adversity — duplicate concurrent submissions, a
worker SIGKILLed mid-cell, the server SIGKILLed mid-append, a full
disk, a worker-crash storm, a repeatedly failing spec — and then
asserts the service's recovery invariants:

1. **Byte identity**: after any crash and restart, the server serves
   byte-identical response bodies for every spec completed before the
   crash (the journal payload is the source of truth; responses render
   its canonical JSON).
2. **Exactly-once**: however many duplicate submissions race and
   however many times a crashed worker forces redelivery, each spec
   gets exactly one ``running`` journal record and executes once.
3. **Ladder/breaker visibility**: degradations and quarantines happen
   at the configured thresholds and are observable as schema-valid
   ``server.mode`` / ``breaker.*`` events.

Scenarios are deterministic by construction — every chaos action fires
at a counted ordinal (:mod:`repro.chaos.plan`), never at random.  The
wall-clock waits below are *observation* timeouts (how long we give a
recovery that either happens or doesn't), not sources of nondeterminism.

Run them via ``repro chaos`` (CI's ``chaos-smoke`` job) or through
:func:`run_scenarios`.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from typing import Any, Callable, Optional

from ..errors import ChaosError, ServiceError
from ..runstate.journal import STATUS_RUNNING, scan_records
from ..serve.client import ClientResponse, SweepClient

_STARTUP_TIMEOUT = 30.0
_EXIT_TIMEOUT = 30.0

Log = Callable[[str], None]


def _quiet(_message: str) -> None:
    pass


class ChaosServer:
    """One ``repro serve`` subprocess under test."""

    def __init__(
        self,
        workdir: str,
        name: str = "server",
        journal: Optional[str] = None,
        chaos: Optional[str] = None,
        options: Optional[dict[str, Any]] = None,
    ) -> None:
        self.workdir = workdir
        self.name = name
        self.journal = journal or os.path.join(workdir, "run.jsonl")
        self.socket_path = os.path.join(workdir, f"{name}.sock")
        self.stderr_path = os.path.join(workdir, f"{name}.stderr")
        self.chaos = chaos
        self.options = dict(options or {})
        self.proc: Optional[subprocess.Popen] = None

    # ------------------------------------------------------------------

    def _argv(self) -> list[str]:
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--journal", self.journal,
            "--socket", self.socket_path,
        ]
        for key, value in sorted(self.options.items()):
            argv.append("--" + key.replace("_", "-"))
            argv.append(str(value))
        if self.chaos:
            argv.extend(["--chaos", self.chaos])
        return argv

    def _env(self) -> dict[str, str]:
        import repro

        src_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root + (os.pathsep + existing if existing else "")
        )
        return env

    def start(self, timeout: float = _STARTUP_TIMEOUT) -> "ChaosServer":
        # Deliberately no socket cleanup here: the server itself must
        # unlink a stale socket on startup (the restart-after-SIGKILL
        # path the harness exists to exercise).
        stderr = open(self.stderr_path, "ab")
        try:
            self.proc = subprocess.Popen(
                self._argv(),
                stdout=subprocess.DEVNULL,
                stderr=stderr,
                env=self._env(),
            )
        finally:
            stderr.close()
        deadline = time.monotonic() + timeout  # repro: noqa REP001 — observation timeout
        client = self.client(timeout=2.0)
        while time.monotonic() < deadline:  # repro: noqa REP001 — observation timeout
            if client.healthz():
                return self
            if self.proc.poll() is not None:
                raise ChaosError(
                    f"server {self.name!r} died during startup "
                    f"(exit {self.proc.returncode}): {self._stderr_tail()}"
                )
            time.sleep(0.05)
        self.kill()
        raise ChaosError(
            f"server {self.name!r} did not become healthy within "
            f"{timeout:.0f}s: {self._stderr_tail()}"
        )

    def _stderr_tail(self) -> str:
        try:
            with open(self.stderr_path, "r", encoding="utf-8",
                      errors="replace") as handle:
                lines = handle.read().strip().splitlines()
            return " | ".join(lines[-3:]) if lines else "(no stderr)"
        except OSError:
            return "(stderr unavailable)"

    def client(self, timeout: float = 120.0) -> SweepClient:
        return SweepClient(socket_path=self.socket_path, timeout=timeout)

    def wait_exit(self, timeout: float = _EXIT_TIMEOUT) -> int:
        assert self.proc is not None
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.kill()
            raise ChaosError(
                f"server {self.name!r} did not exit within {timeout:.0f}s"
            )

    def stop(self, timeout: float = _EXIT_TIMEOUT) -> int:
        """Graceful drain (SIGTERM) with a SIGKILL fallback."""
        if self.proc is None:
            return 0
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                return self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.kill()
                raise ChaosError(
                    f"server {self.name!r} ignored SIGTERM for "
                    f"{timeout:.0f}s"
                )
        return self.proc.returncode

    def kill(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


# ----------------------------------------------------------------------
# Assertion helpers
# ----------------------------------------------------------------------


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ChaosError(message)


def _require_ok(response: ClientResponse, what: str) -> None:
    _require(
        response.ok,
        f"{what}: expected success, got HTTP {response.status} "
        f"({response.body})",
    )


def _running_counts(journal: str) -> dict[str, int]:
    """``{spec: count}`` of valid ``running`` records in file order —
    the exactly-once ledger (one execution decision = one record)."""
    counts: dict[str, int] = {}
    for record in scan_records(journal):
        if record.status == STATUS_RUNNING:
            counts[record.spec] = counts.get(record.spec, 0) + 1
    return counts


def _event_names(status: dict[str, Any]) -> list[str]:
    return [event.get("name", "?") for event in status.get("events", [])]


def _find_event(
    status: dict[str, Any], name: str, **fields: Any
) -> Optional[dict[str, Any]]:
    for event in status.get("events", []):
        if event.get("name") != name:
            continue
        if all(event.get(key) == value for key, value in fields.items()):
            return event
    return None


def _require_clean_schema(status: dict[str, Any], what: str) -> None:
    problems = status.get("schema_problems", [])
    _require(
        not problems,
        f"{what}: service emitted schema-invalid events: {problems[:3]}",
    )


def _restart_and_check_bytes(
    workdir: str,
    journal: str,
    completed: dict[str, bytes],
    options: Optional[dict[str, Any]] = None,
    name: str = "restarted",
) -> None:
    """The core chaos invariant: a fresh server over the same journal
    serves byte-identical bodies for every previously completed spec."""
    server = ChaosServer(
        workdir, name=name, journal=journal, options=options
    ).start()
    try:
        client = server.client()
        for spec, raw in sorted(completed.items()):
            again = client.result(spec)
            _require_ok(again, f"result({spec}) after restart")
            _require(
                again.raw == raw,
                f"byte-identity violated for spec {spec}: "
                f"{raw!r} != {again.raw!r}",
            )
    finally:
        server.stop()


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


def scenario_duplicates(workdir: str, log: Log = _quiet) -> dict[str, Any]:
    """N concurrent submissions of one spec → one execution, identical
    bytes for every caller, cache hits ever after (also post-restart)."""
    server = ChaosServer(workdir, options={"workers": 2}).start()
    fanout = 4
    responses: list[Optional[ClientResponse]] = [None] * fanout
    try:
        client = server.client()

        def submit(index: int) -> None:
            responses[index] = client.submit("bfs", "test-small")

        threads = [
            threading.Thread(target=submit, args=(i,))
            for i in range(fanout)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index, response in enumerate(responses):
            _require(response is not None, f"submitter {index} never returned")
            _require_ok(response, f"duplicate submission {index}")
        raws = {response.raw for response in responses}
        _require(
            len(raws) == 1,
            f"duplicate submissions saw {len(raws)} distinct bodies",
        )
        spec = responses[0].body["spec"]
        log(f"duplicates: {fanout} submitters, one body, spec {spec}")

        cached = client.submit("bfs", "test-small")
        _require_ok(cached, "cached re-submission")
        _require(
            cached.raw == responses[0].raw,
            "cached re-submission returned different bytes",
        )
        status = client.status()
        _require_clean_schema(status, "duplicates")
        _require(
            _find_event(status, "queue.dedup") is not None,
            f"no queue.dedup event despite {fanout} concurrent "
            f"duplicates (events: {_event_names(status)})",
        )
        _require(
            _find_event(status, "queue.cached", spec=spec) is not None,
            "no queue.cached event for the re-submission",
        )
        completed = {spec: responses[0].raw}
    finally:
        server.stop()

    counts = _running_counts(server.journal)
    _require(
        counts.get(spec) == 1,
        f"exactly-once violated: {counts.get(spec, 0)} running "
        f"record(s) for spec {spec}",
    )
    _restart_and_check_bytes(workdir, server.journal, completed)
    return {"executions": counts.get(spec, 0), "submitters": fanout}


def scenario_worker_kill(workdir: str, log: Log = _quiet) -> dict[str, Any]:
    """SIGKILL the worker mid-cell: the job redelivers (same journal
    ``begin``), completes, and survives a restart byte-identically."""
    server = ChaosServer(
        workdir,
        chaos="kill-worker:cell:1",
        options={
            "workers": 1,
            "restart-backoff-base": 0.05,
        },
    ).start()
    try:
        client = server.client()
        response = client.submit("bfs", "test-small")
        _require_ok(response, "submission surviving a worker kill")
        spec = response.body["spec"]
        status = client.status()
        _require_clean_schema(status, "worker-kill")
        _require(
            _find_event(status, "worker.exit", clean=0) is not None,
            f"no unclean worker.exit event (events: {_event_names(status)})",
        )
        _require(
            _find_event(status, "worker.restart") is not None,
            "no worker.restart event after the kill",
        )
        log(f"worker-kill: spec {spec} completed after redelivery")
        completed = {spec: response.raw}
    finally:
        server.stop()

    counts = _running_counts(server.journal)
    _require(
        counts.get(spec) == 1,
        f"exactly-once violated under redelivery: {counts.get(spec, 0)} "
        f"running record(s) for spec {spec}",
    )
    _restart_and_check_bytes(workdir, server.journal, completed)
    return {"executions": counts.get(spec, 0)}


def scenario_server_kill(workdir: str, log: Log = _quiet) -> dict[str, Any]:
    """SIGKILL the server mid-journal-append (torn record on disk): a
    restarted server still serves completed specs byte-identically and
    re-runs the interrupted one."""
    # Appends: 1 = begin(A), 2 = done(A), 3 = begin(B), 4 = done(B).
    # Tear append 4: A completed before the crash, B was interrupted.
    server = ChaosServer(
        workdir, chaos="kill-server:append:4", options={"workers": 1}
    ).start()
    client = server.client()
    first = client.submit("bfs", "test-small")
    _require_ok(first, "submission before the crash")
    spec_a = first.body["spec"]
    try:
        second = client.submit("bfs", "test-small", policy="thp")
    except (OSError, ServiceError):
        pass  # connection died with the server — expected
    else:
        _require(
            not second.ok,
            f"crash-armed submission unexpectedly succeeded "
            f"(HTTP {second.status})",
        )
    code = server.wait_exit()
    _require(
        code == -signal.SIGKILL,
        f"server exited {code}, expected SIGKILL (-9)",
    )
    log(f"server-kill: server died mid-append, spec {spec_a} completed "
        "before crash")

    # The restarted server must serve A's exact bytes despite the torn
    # tail, and must be able to run B (its `running` record resumes).
    restarted = ChaosServer(
        workdir, name="restarted", journal=server.journal,
        options={"workers": 1},
    ).start()
    try:
        client = restarted.client()
        again = client.result(spec_a)
        _require_ok(again, f"result({spec_a}) after torn-append restart")
        _require(
            again.raw == first.raw,
            f"byte-identity violated across a torn append: "
            f"{first.raw!r} != {again.raw!r}",
        )
        redo = client.submit("bfs", "test-small", policy="thp")
        _require_ok(redo, "re-running the interrupted spec after restart")
        spec_b = redo.body["spec"]
    finally:
        restarted.stop()
    counts = _running_counts(server.journal)
    _require(
        counts.get(spec_a) == 1,
        f"spec {spec_a} has {counts.get(spec_a, 0)} running records",
    )
    # B legitimately has two: one from the crashed attempt, one from the
    # post-restart re-execution — two execution decisions, two records.
    _require(
        counts.get(spec_b) == 2,
        f"interrupted spec {spec_b} has {counts.get(spec_b, 0)} running "
        "record(s); expected 2 (crashed attempt + post-restart re-run)",
    )
    return {"torn_spec": spec_b, "completed_spec": spec_a}


def scenario_disk_full(workdir: str, log: Log = _quiet) -> dict[str, Any]:
    """ENOSPC on the result append: the service degrades to cached-only
    (ladder, observable) instead of executing work it cannot record."""
    server = ChaosServer(
        workdir, chaos="enospc:append:2", options={"workers": 1}
    ).start()
    try:
        client = server.client()
        response = client.submit("bfs", "test-small")
        _require(
            response.status == 503,
            f"expected 503 when the result append hits ENOSPC, got "
            f"{response.status}",
        )
        status = client.status()
        _require_clean_schema(status, "disk-full")
        _require(
            status.get("mode") == "cached-only",
            f"expected cached-only after ENOSPC, mode is "
            f"{status.get('mode')!r}",
        )
        event = _find_event(
            status, "server.mode", to_mode="cached-only",
            reason="journal-error",
        )
        _require(
            event is not None,
            f"no server.mode(journal-error) event "
            f"(events: {_event_names(status)})",
        )
        refused = client.submit("bfs", "test-small", policy="thp")
        _require(
            refused.status == 503,
            f"cached-only mode admitted new work (HTTP {refused.status})",
        )
        log("disk-full: degraded to cached-only on ENOSPC")
    finally:
        server.stop()
    return {"mode": "cached-only"}


def scenario_degrade(workdir: str, log: Log = _quiet) -> dict[str, Any]:
    """A worker-crash storm steps the ladder down exactly one rung at
    the configured restart rate.

    The starting rung depends on the host: with >= 2 CPUs the server
    starts ``parallel`` and the storm lands it in ``serial`` with the
    job still completing; on a 1-CPU host the CPU clamp starts it on
    ``serial`` (there is no parallel rung to lose), the storm lands it
    in ``cached-only``, and the in-flight job is abandoned with a 503.
    Either way the transition is event-logged and execution stays
    exactly-once.
    """
    server = ChaosServer(
        workdir,
        chaos="kill-worker:cell:1,kill-worker:cell:2",
        options={
            "workers": 2,
            "max-job-attempts": 3,
            "degrade-restart-threshold": 2,
            "restart-backoff-base": 0.05,
        },
    ).start()
    try:
        client = server.client()
        start_mode = client.status().get("mode")
        _require(
            start_mode in ("parallel", "serial"),
            f"unexpected starting mode {start_mode!r}",
        )
        response = client.submit("bfs", "test-small")
        if start_mode == "parallel":
            _require_ok(response, "submission surviving two worker kills")
            end_mode = "serial"
        else:
            _require(
                response.status == 503,
                f"expected 503 (execution abandoned on the step to "
                f"cached-only), got HTTP {response.status}",
            )
            end_mode = "cached-only"
        spec = response.body["spec"]
        status = client.status()
        _require_clean_schema(status, "degrade")
        _require(
            status.get("mode") == end_mode,
            f"expected {end_mode} after the restart storm, mode is "
            f"{status.get('mode')!r}",
        )
        event = _find_event(
            status, "server.mode", from_mode=start_mode, to_mode=end_mode,
            reason="worker-restart-rate",
        )
        _require(
            event is not None,
            f"no {start_mode}→{end_mode} server.mode event "
            f"(events: {_event_names(status)})",
        )
        log(f"degrade: {start_mode} → {end_mode} after 2 restarts "
            f"(spec {spec})")
        completed = {spec: response.raw} if response.ok else {}
    finally:
        server.stop()
    counts = _running_counts(server.journal)
    _require(
        counts.get(spec) == 1,
        f"exactly-once violated under the crash storm: "
        f"{counts.get(spec, 0)} running record(s)",
    )
    _restart_and_check_bytes(workdir, server.journal, completed)
    return {"mode": end_mode, "executions": counts.get(spec, 0)}


def scenario_quarantine(workdir: str, log: Log = _quiet) -> dict[str, Any]:
    """A spec that fails repeatedly trips the circuit breaker, and the
    quarantine survives a server restart (breaker state is persisted)."""
    options = {
        "workers": 1,
        "cell-budget": 1,  # every cell fails: budget exhausted instantly
        "breaker-threshold": 2,
        "breaker-cooldown": 3600,
    }
    server = ChaosServer(workdir, options=options).start()
    try:
        client = server.client()
        for attempt in range(2):
            response = client.submit("bfs", "test-small")
            _require_ok(response, f"failing submission {attempt + 1}")
            _require(
                response.body.get("status") == "failed",
                f"cell_budget=1 cell unexpectedly succeeded "
                f"({response.body})",
            )
        spec = response.body["spec"]
        refused = client.submit("bfs", "test-small")
        _require(
            refused.status == 503,
            f"expected quarantine 503 at threshold, got {refused.status}",
        )
        _require(
            refused.retry_after is not None,
            "quarantine response carried no Retry-After",
        )
        status = client.status()
        _require_clean_schema(status, "quarantine")
        _require(
            _find_event(status, "breaker.open", spec=spec) is not None,
            f"no breaker.open event (events: {_event_names(status)})",
        )
        log(f"quarantine: breaker opened for {spec} after 2 failures")
    finally:
        server.stop()

    restarted = ChaosServer(
        workdir, name="restarted", journal=server.journal, options=options
    ).start()
    try:
        still = restarted.client().submit("bfs", "test-small")
        _require(
            still.status == 503,
            f"quarantine did not survive the restart "
            f"(HTTP {still.status})",
        )
    finally:
        restarted.stop()
    return {"quarantined_spec": spec}


SCENARIOS: dict[str, Callable[..., dict[str, Any]]] = {
    "duplicates": scenario_duplicates,
    "worker-kill": scenario_worker_kill,
    "server-kill": scenario_server_kill,
    "disk-full": scenario_disk_full,
    "degrade": scenario_degrade,
    "quarantine": scenario_quarantine,
}

# The distributed-layer scenarios (repro.dist: coordinator/worker
# sharding) live in their own module; same table so `repro chaos`
# runs them all.
from .dist_scenarios import DIST_SCENARIOS  # noqa: E402

SCENARIOS.update(DIST_SCENARIOS)


def run_scenarios(
    names: list[str],
    workdir: str,
    log: Log = _quiet,
) -> list[dict[str, Any]]:
    """Run the named scenarios, each in its own subdirectory.

    Returns one report per scenario; the first broken invariant raises
    :class:`~repro.errors.ChaosError` (scenarios after it do not run —
    chaos runs are diagnostic, not best-effort).
    """
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise ChaosError(
            f"unknown scenario(s) {', '.join(unknown)}; known: "
            + ", ".join(SCENARIOS)
        )
    reports = []
    for name in names:
        subdir = os.path.join(workdir, name.replace("-", "_"))
        os.makedirs(subdir, exist_ok=True)
        log(f"=== scenario {name} ===")
        detail = SCENARIOS[name](subdir, log=log)
        reports.append({"scenario": name, "ok": True, **detail})
        log(f"=== scenario {name}: OK ===")
    return reports
