"""repro.chaos — deterministic process-level adversity (docs/service.md).

The simulator's fault injector (:mod:`repro.faults`) perturbs code
*inside* a process; this package perturbs the processes themselves,
on exactly counted schedules:

- :mod:`repro.chaos.plan` — :class:`ChaosPlan`: the
  ``action:point:ordinal`` grammar (``kill-worker:cell:N``,
  ``kill-server:append:N``, ``enospc:append:N``).
- :mod:`repro.chaos.journal` — :class:`ChaosJournal`: a run journal
  that tears or refuses appends on cue.
- :mod:`repro.chaos.crash` — ``python -m repro.chaos.crash``: run any
  CLI command with a SIGKILL bomb at one counted crash point.
- :mod:`repro.chaos.harness` — the ``repro chaos`` scenarios asserting
  the service's recovery invariants (byte identity, exactly-once,
  ladder/breaker visibility).
"""

from .harness import SCENARIOS, ChaosServer, run_scenarios
from .journal import ChaosJournal
from .plan import ChaosAction, ChaosPlan

__all__ = [
    "SCENARIOS",
    "ChaosAction",
    "ChaosJournal",
    "ChaosPlan",
    "ChaosServer",
    "run_scenarios",
]
