"""Distributed chaos scenarios: the ``repro.dist`` layer under fire.

Five scenarios extend the chaos harness to the coordinator/worker
topology (``repro figure --distribute`` + ``repro work``), asserting
the distributed layer's core invariants:

1. **Exactly-once under re-lease** — a worker SIGKILLed mid-cell loses
   its lease; the cell is re-leased and executes again, but the figure
   and the merged journal contain exactly one result per spec.
2. **Partition tolerance** — a worker severed from the coordinator
   after taking a lease still journals its result locally; ``repro
   runs merge`` unions the shards and deduplicates the re-leased
   duplicate by spec fingerprint.
3. **Coordinator crash recovery** — SIGKILLing the coordinator mid
   journal-append loses nothing the worker shards hold; merge + resume
   reproduces the figure byte-for-byte.
4. **Split-brain refusal** — shards holding *divergent* results for
   the same fingerprint refuse to merge (exit 3, named fingerprints).
5. **Graceful local degradation** — a coordinator that never hears
   from any worker runs the whole sweep locally, byte-identical.

Like every other chaos scenario, adversity is scheduled at counted
ordinals (:mod:`repro.chaos.plan`) — the wall-clock waits are
observation timeouts, not randomness.  Registered into the harness's
``SCENARIOS`` table, so ``repro chaos dist-lease-expiry`` etc. work.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import subprocess
import sys
import threading
import time
from typing import Any, Callable, Optional

from ..errors import ChaosError

_FIG = "fig07"
_FIG_KWARGS = {"workloads": ("bfs",), "datasets": ("test-small",)}
_STARTUP_TIMEOUT = 30.0
_EXIT_TIMEOUT = 60.0
_BATCH_TIMEOUT = 180.0

Log = Callable[[str], None]


def _quiet(_message: str) -> None:
    pass


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ChaosError(message)


def _env() -> dict[str, str]:
    import repro

    src_root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__))
    )
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_root + (os.pathsep + existing if existing else "")
    )
    return env


class DistWorker:
    """One ``repro work`` subprocess under test."""

    def __init__(
        self,
        workdir: str,
        connect: str,
        name: str,
        chaos: Optional[str] = None,
        idle_exit: float = 15.0,
        poll_interval: float = 0.1,
    ) -> None:
        self.workdir = workdir
        self.connect = connect
        self.name = name
        self.chaos = chaos
        self.idle_exit = idle_exit
        self.poll_interval = poll_interval
        self.journal = os.path.join(workdir, f"{name}.jsonl")
        self.stderr_path = os.path.join(workdir, f"{name}.stderr")
        self.proc: Optional[subprocess.Popen] = None

    def start(self) -> "DistWorker":
        argv = [
            sys.executable, "-m", "repro", "work",
            "--connect", self.connect,
            "--journal", self.journal,
            "--worker-id", self.name,
            "--idle-exit", str(self.idle_exit),
            "--poll-interval", str(self.poll_interval),
        ]
        if self.chaos:
            argv.extend(["--chaos", self.chaos])
        stderr = open(self.stderr_path, "ab")
        try:
            self.proc = subprocess.Popen(
                argv, stdout=subprocess.DEVNULL, stderr=stderr,
                env=_env(),
            )
        finally:
            stderr.close()
        return self

    def wait_exit(self, timeout: float = _EXIT_TIMEOUT) -> int:
        assert self.proc is not None
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.kill()
            raise ChaosError(
                f"worker {self.name!r} did not exit within {timeout:.0f}s"
            )

    def kill(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


# ----------------------------------------------------------------------
# In-process coordinator plumbing
# ----------------------------------------------------------------------


def _make_runner(journal_path: Optional[str]):
    from ..config import get_profile
    from ..experiments import ExperimentRunner, RunConfig
    from ..runstate.journal import RunJournal

    journal = (
        RunJournal(journal_path, lock=True) if journal_path else None
    )
    return ExperimentRunner(
        config=get_profile("scaled"), run_config=RunConfig(journal=journal)
    )


def _close_runner(runner) -> None:
    journal = runner.run_config.journal
    if journal is not None:
        journal.close()


def _run_figure(runner) -> str:
    from ..experiments.figures import FIGURES

    return FIGURES[_FIG](runner, **_FIG_KWARGS).render()


def _serial_reference(workdir: str) -> tuple[str, str]:
    """Run the sweep serially; returns (figure text, journal path)."""
    journal_path = os.path.join(workdir, "ref.jsonl")
    runner = _make_runner(journal_path)
    try:
        text = _run_figure(runner)
    finally:
        _close_runner(runner)
    return text, journal_path


class _FigureThread:
    """Runs the distributed figure on a thread so the scenario thread
    can orchestrate workers while ``execute_batch`` blocks."""

    def __init__(self, runner) -> None:
        self.runner = runner
        self.text: Optional[str] = None
        self.error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            self.text = _run_figure(self.runner)
        except BaseException as error:
            self.error = error

    def start(self) -> "_FigureThread":
        self._thread.start()
        return self

    def join(self, timeout: float = _BATCH_TIMEOUT) -> str:
        self._thread.join(timeout=timeout)
        _require(
            not self._thread.is_alive(),
            f"distributed figure did not finish within {timeout:.0f}s",
        )
        if self.error is not None:
            raise self.error
        assert self.text is not None
        return self.text


def _wait_for_event(
    coordinator, name: str, timeout: float = _STARTUP_TIMEOUT,
    **fields: Any,
) -> dict[str, Any]:
    deadline = time.monotonic() + timeout  # repro: noqa REP001 — observation timeout
    while time.monotonic() < deadline:  # repro: noqa REP001 — observation timeout
        for event in coordinator.drain_events():
            if event.get("name") != name:
                continue
            if all(event.get(k) == v for k, v in fields.items()):
                return event
        time.sleep(0.05)
    raise ChaosError(
        f"no {name} event with {fields!r} within {timeout:.0f}s "
        f"(events: {[e.get('name') for e in coordinator.drain_events()]})"
    )


def _events_named(events: list[dict[str, Any]], name: str) -> list[dict]:
    return [event for event in events if event.get("name") == name]


def _require_clean_events(events: list[dict[str, Any]], what: str) -> None:
    from ..obs.events import validate_events

    problems = validate_events(events)
    _require(
        not problems,
        f"{what}: coordinator emitted schema-invalid events: "
        f"{problems[:3]}",
    )


def _require_merge_matches_reference(
    shards: list[str], ref_journal: str, what: str
) -> Any:
    """Merge the distributed shards and require byte-identity with the
    merged serial reference (order-independent: also merge reversed)."""
    from ..runstate.merge import merge_journals

    reference = merge_journals([ref_journal])
    merged = merge_journals(shards)
    _require(
        merged.text == reference.text,
        f"{what}: merged journal differs from the serial reference",
    )
    reversed_merge = merge_journals(list(reversed(shards)))
    _require(
        reversed_merge.text == merged.text,
        f"{what}: merge output depends on shard order",
    )
    return merged


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


def scenario_dist_lease_expiry(
    workdir: str, log: Log = _quiet
) -> dict[str, Any]:
    """Worker SIGKILLed mid-cell → lease expires, cell re-leased and
    executed exactly once; figure and merged journal byte-identical."""
    from ..dist import DistConfig, DistCoordinator

    ref_text, ref_journal = _serial_reference(workdir)
    sock = os.path.join(workdir, "coord.sock")
    coord_journal = os.path.join(workdir, "coord.jsonl")
    runner = _make_runner(coord_journal)
    coordinator = DistCoordinator(
        runner,
        DistConfig(
            socket_path=sock, lease_seconds=1.0,
            local_grace_seconds=120.0, max_lease_attempts=5,
        ),
    ).start()
    runner.dist_executor = coordinator.execute_batch
    victim = DistWorker(
        workdir, sock, "wa", chaos="kill-worker:cell:1"
    ).start()
    survivor: Optional[DistWorker] = None
    try:
        figure = _FigureThread(runner).start()
        # Let the victim take (and die holding) the first lease before
        # the survivor joins — the kill ordinal counts the victim's own
        # dispatches, so it must win a lease for the scenario to bite.
        grant = _wait_for_event(
            coordinator, "dist.lease.grant", worker="wa"
        )
        survivor = DistWorker(workdir, sock, "wb").start()
        text = figure.join()
        coordinator.drain()
        rc_victim = victim.wait_exit()
        rc_survivor = survivor.wait_exit()
    finally:
        victim.kill()
        if survivor is not None:
            survivor.kill()
        coordinator.stop()
        _close_runner(runner)
    events = coordinator.drain_events()
    _require_clean_events(events, "dist-lease-expiry")
    _require(
        rc_victim == -signal.SIGKILL,
        f"victim worker exited {rc_victim}, expected SIGKILL",
    )
    _require(rc_survivor == 0, f"survivor exited {rc_survivor}")
    expired = _events_named(events, "dist.lease.expire")
    _require(bool(expired), "no dist.lease.expire event after the kill")
    spec = grant["spec"]
    regrant = [
        event for event in _events_named(events, "dist.lease.grant")
        if event.get("spec") == spec and event.get("attempt", 0) > 1
    ]
    _require(
        bool(regrant),
        f"killed cell {spec} was never re-leased "
        f"(grants: {_events_named(events, 'dist.lease.grant')})",
    )
    results = _events_named(events, "dist.result")
    specs = {event["spec"] for event in results}
    _require(
        len(results) == len(specs),
        "a spec produced more than one dist.result (exactly-once "
        "violated)",
    )
    _require(
        not _events_named(events, "dist.conflict"),
        "re-lease produced a dist.conflict",
    )
    _require(
        text == ref_text,
        "distributed figure differs from the serial reference",
    )
    _require_merge_matches_reference(
        [coord_journal, victim.journal, survivor.journal],
        ref_journal, "dist-lease-expiry",
    )
    log(f"lease-expiry: {spec} re-leased after SIGKILL, "
        f"{len(results)} unique results")
    return {"releases": len(regrant), "cells": len(specs)}


def scenario_dist_worker_partition(
    workdir: str, log: Log = _quiet
) -> dict[str, Any]:
    """Worker partitioned after taking a lease: it finishes the cell
    into its own shard but cannot stream it; the cell is re-leased, and
    merge deduplicates the two identical results by fingerprint."""
    from ..dist import DistConfig, DistCoordinator

    ref_text, ref_journal = _serial_reference(workdir)
    sock = os.path.join(workdir, "coord.sock")
    coord_journal = os.path.join(workdir, "coord.jsonl")
    runner = _make_runner(coord_journal)
    coordinator = DistCoordinator(
        runner,
        DistConfig(
            socket_path=sock, lease_seconds=1.0,
            local_grace_seconds=120.0, max_lease_attempts=5,
        ),
    ).start()
    runner.dist_executor = coordinator.execute_batch
    # Ops 1-3 are the first lease's connect/send/recv; from op 4 onward
    # the link is severed — renewals and the completion POST all fail,
    # so the partitioned worker idle-exits with its shard intact.
    partitioned = DistWorker(
        workdir, sock, "wa", chaos="sever:net.partition:4",
        idle_exit=2.0,
    ).start()
    survivor: Optional[DistWorker] = None
    try:
        figure = _FigureThread(runner).start()
        grant = _wait_for_event(
            coordinator, "dist.lease.grant", worker="wa"
        )
        survivor = DistWorker(workdir, sock, "wb").start()
        text = figure.join()
        coordinator.drain()
        rc_partitioned = partitioned.wait_exit()
        rc_survivor = survivor.wait_exit()
    finally:
        partitioned.kill()
        if survivor is not None:
            survivor.kill()
        coordinator.stop()
        _close_runner(runner)
    events = coordinator.drain_events()
    _require_clean_events(events, "dist-worker-partition")
    _require(
        rc_partitioned == 0,
        f"partitioned worker exited {rc_partitioned}, expected a clean "
        "idle-exit",
    )
    _require(rc_survivor == 0, f"survivor exited {rc_survivor}")
    _require(
        bool(_events_named(events, "dist.lease.expire")),
        "partitioned worker's lease never expired",
    )
    from ..runstate.journal import STATUS_DONE, scan_records

    stranded = [
        record for record in scan_records(partitioned.journal)
        if record.status == STATUS_DONE and record.spec == grant["spec"]
    ]
    _require(
        bool(stranded),
        "partitioned worker journaled no done record for its leased "
        f"cell {grant['spec']} (its shard should carry the result)",
    )
    merged = _require_merge_matches_reference(
        [coord_journal, partitioned.journal, survivor.journal],
        ref_journal, "dist-worker-partition",
    )
    _require(
        merged.duplicates >= 1,
        "merge saw no duplicate despite the re-executed cell",
    )
    _require(
        text == ref_text,
        "distributed figure differs from the serial reference",
    )
    log(f"worker-partition: {grant['spec']} stranded in shard, "
        f"{merged.duplicates} duplicate(s) merged away")
    return {"duplicates": merged.duplicates, "stranded_spec": grant["spec"]}


def scenario_dist_coordinator_kill(
    workdir: str, log: Log = _quiet
) -> dict[str, Any]:
    """Coordinator SIGKILLed mid journal-append: the worker shards hold
    the results; merge + ``--resume`` reproduces the figure bytes."""
    ref_text, ref_journal = _serial_reference(workdir)
    sock = os.path.join(workdir, "coord.sock")
    coord_journal = os.path.join(workdir, "coord.jsonl")
    out_ref = os.path.join(workdir, "out_ref")
    out_resume = os.path.join(workdir, "out_resume")
    env = _env()
    base = [
        sys.executable, "-m", "repro", "figure", _FIG,
        "--workloads", ",".join(_FIG_KWARGS["workloads"]),
        "--datasets", ",".join(_FIG_KWARGS["datasets"]),
    ]
    ref_cli = subprocess.run(
        base + ["--out", out_ref], env=env, capture_output=True,
        text=True, timeout=_BATCH_TIMEOUT,
    )
    _require(
        ref_cli.returncode == 0,
        f"serial reference figure failed: {ref_cli.stderr[-500:]}",
    )
    # Workers first: they poll until the coordinator's socket appears.
    workers = [
        DistWorker(workdir, sock, name, idle_exit=5.0)
        for name in ("wa", "wb")
    ]
    for worker in workers:
        worker.start()
    stderr_path = os.path.join(workdir, "coord.stderr")
    stderr = open(stderr_path, "ab")
    try:
        # The batch's deterministic journal merge happens after every
        # result is in; tearing its 3rd append kills the coordinator
        # with exactly one spec durable locally — the rest live only in
        # the worker shards.
        coordinator = subprocess.Popen(
            base + [
                "--journal", coord_journal,
                "--distribute", sock,
                "--local-grace", "120",
                "--chaos", "kill-server:append:3",
            ],
            stdout=subprocess.DEVNULL, stderr=stderr, env=env,
        )
    finally:
        stderr.close()
    try:
        rc_coord = coordinator.wait(timeout=_BATCH_TIMEOUT)
    except subprocess.TimeoutExpired:
        coordinator.kill()
        raise ChaosError("chaos coordinator did not exit in time")
    rcs = [worker.wait_exit() for worker in workers]
    _require(
        rc_coord == -signal.SIGKILL,
        f"coordinator exited {rc_coord}, expected SIGKILL at append 3",
    )
    _require(
        all(rc == 0 for rc in rcs),
        f"workers exited {rcs} after the coordinator died",
    )
    merged_path = os.path.join(workdir, "merged.jsonl")
    merge = subprocess.run(
        [
            sys.executable, "-m", "repro", "runs", "merge",
            coord_journal, workers[0].journal, workers[1].journal,
            "--out", merged_path,
        ],
        env=env, capture_output=True, text=True, timeout=60,
    )
    _require(
        merge.returncode == 0,
        f"runs merge failed ({merge.returncode}): {merge.stderr[-500:]}",
    )
    _require_merge_matches_reference(
        [coord_journal, workers[0].journal, workers[1].journal],
        ref_journal, "dist-coordinator-kill",
    )
    resume = subprocess.run(
        base + [
            "--journal", merged_path, "--resume", "--out", out_resume,
        ],
        env=env, capture_output=True, text=True, timeout=_BATCH_TIMEOUT,
    )
    _require(
        resume.returncode == 0,
        f"resumed figure failed: {resume.stderr[-500:]}",
    )
    name = f"{_FIG}.txt"
    with open(os.path.join(out_ref, name), "rb") as handle:
        ref_bytes = handle.read()
    with open(os.path.join(out_resume, name), "rb") as handle:
        resume_bytes = handle.read()
    _require(
        ref_bytes == resume_bytes,
        "merge+resume figure differs from the serial reference",
    )
    log("coordinator-kill: merge recovered the torn journal; resumed "
        "figure byte-identical")
    return {"coordinator_exit": rc_coord, "merged": merged_path}


def scenario_dist_split_brain(
    workdir: str, log: Log = _quiet
) -> dict[str, Any]:
    """Two shards with divergent results for one fingerprint: merge
    must refuse (exit 3), name the fingerprint, and write nothing."""
    from ..runstate.journal import (
        STATUS_DONE,
        render_line,
        scan_records,
    )

    _text, ref_journal = _serial_reference(workdir)
    records = scan_records(ref_journal)
    done = [r for r in records if r.status == STATUS_DONE]
    _require(bool(done), "serial reference journal has no done records")
    victim = done[0]
    forged = dataclasses.replace(
        victim, kernel_cycles=(victim.kernel_cycles or 0) + 1
    )
    shard_b = os.path.join(workdir, "divergent.jsonl")
    with open(shard_b, "w", encoding="utf-8") as handle:
        for record in records:
            if record.seq == victim.seq:
                record = forged
            handle.write(render_line(record) + "\n")
    merged_path = os.path.join(workdir, "merged.jsonl")
    merge = subprocess.run(
        [
            sys.executable, "-m", "repro", "runs", "merge",
            ref_journal, shard_b, "--out", merged_path,
        ],
        env=_env(), capture_output=True, text=True, timeout=60,
    )
    _require(
        merge.returncode == 3,
        f"split-brain merge exited {merge.returncode}, expected 3 "
        f"(stderr: {merge.stderr[-300:]})",
    )
    _require(
        victim.spec in merge.stderr,
        "conflict report does not name the divergent fingerprint",
    )
    _require(
        not os.path.exists(merged_path),
        "refused merge still wrote an output file",
    )
    log(f"split-brain: merge refused, fingerprint {victim.spec} named")
    return {"conflicting_spec": victim.spec}


def scenario_dist_local_degrade(
    workdir: str, log: Log = _quiet
) -> dict[str, Any]:
    """No worker ever connects: after the grace period the coordinator
    degrades the batch to local execution — one-way — and the figure is
    byte-identical to the serial run."""
    from ..dist import DistConfig, DistCoordinator

    ref_text, ref_journal = _serial_reference(workdir)
    sock = os.path.join(workdir, "coord.sock")
    coord_journal = os.path.join(workdir, "coord.jsonl")
    runner = _make_runner(coord_journal)
    coordinator = DistCoordinator(
        runner,
        DistConfig(
            socket_path=sock, lease_seconds=1.0,
            local_grace_seconds=0.3,
        ),
    ).start()
    runner.dist_executor = coordinator.execute_batch
    try:
        text = _run_figure(runner)
    finally:
        coordinator.drain()
        coordinator.stop()
        _close_runner(runner)
    events = coordinator.drain_events()
    _require_clean_events(events, "dist-local-degrade")
    modes = _events_named(events, "dist.mode")
    _require(
        any(
            event.get("to_mode") == "local"
            and event.get("reason") == "no-worker-contact"
            for event in modes
        ),
        f"no remote→local dist.mode event (events: {modes})",
    )
    _require(len(modes) == 1, "mode flapped; the switch must be one-way")
    locals_ = _events_named(events, "dist.local")
    results = _events_named(events, "dist.result")
    _require(
        len(results) == len({e['spec'] for e in results}),
        "local degradation executed a spec twice",
    )
    _require(
        len(locals_) == len(results),
        f"{len(locals_)} local claims vs {len(results)} results",
    )
    _require(
        text == ref_text,
        "degraded figure differs from the serial reference",
    )
    _require_merge_matches_reference(
        [coord_journal], ref_journal, "dist-local-degrade"
    )
    log(f"local-degrade: {len(results)} cell(s) ran locally after "
        "grace expiry")
    return {"cells": len(results)}


DIST_SCENARIOS: dict[str, Callable[..., dict[str, Any]]] = {
    "dist-lease-expiry": scenario_dist_lease_expiry,
    "dist-worker-partition": scenario_dist_worker_partition,
    "dist-coordinator-kill": scenario_dist_coordinator_kill,
    "dist-split-brain": scenario_dist_split_brain,
    "dist-local-degrade": scenario_dist_local_degrade,
}
