"""A :class:`~repro.runstate.journal.RunJournal` that fails on cue.

:class:`ChaosJournal` is what a chaos-armed server (``repro serve
--chaos ...``) writes through: it counts appends and consults the
:class:`~repro.chaos.plan.ChaosPlan` before each one, so disk-full and
crash-mid-append adversity lands at an exact, reproducible record.
"""

from __future__ import annotations

import errno
import os
import signal
from typing import Optional

from ..faults.injector import FaultInjector
from ..runstate.journal import JournalRecord, RunJournal, render_line
from .plan import ChaosPlan


class ChaosJournal(RunJournal):
    """Counts appends and executes the plan's ``append``-point actions.

    - ``enospc:append:N`` — appends from the N-th onward raise
      ``OSError(ENOSPC)`` *before* touching the file, exactly like a
      full disk seen by ``open``/``write``.
    - ``kill-server:append:N`` — the N-th append writes only the first
      half of the record (fsynced, so the torn bytes really land), then
      SIGKILLs the process: the sharpest possible crash mid-append.
      Recovery relies on the journal's torn-record rule — the partial
      line fails the integrity hash and is treated as never written.
    """

    def __init__(
        self,
        path: str,
        plan: ChaosPlan,
        injector: Optional[FaultInjector] = None,
        lock: bool = False,
    ) -> None:
        self.plan = plan
        self.appends = 0
        """Appends attempted through this journal (1-based ordinals)."""
        super().__init__(path, injector=injector, lock=lock)

    def _append(self, record: JournalRecord) -> None:
        self.appends += 1
        ordinal = self.appends
        if self.plan.enospc_at_append(ordinal):
            raise OSError(errno.ENOSPC, "chaos: disk full")
        if self.plan.kill_server_at_append(ordinal):
            line = render_line(record)
            torn = line[: max(1, len(line) // 2)]
            # Deliberately tears the journal: a raw partial append
            # IS the fault being injected here.
            with open(  # repro: noqa REP011 — deliberate torn write
                self.path, "a", encoding="utf-8"
            ) as handle:
                handle.write(torn)
                handle.flush()
                os.fsync(handle.fileno())
            os.kill(os.getpid(), signal.SIGKILL)
        super()._append(record)
