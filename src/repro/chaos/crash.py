"""SIGKILL-at-a-crash-point child driver: ``python -m repro.chaos.crash``.

Runs any ``repro`` CLI command with a bomb armed at one counted crash
point, then lets the command run until the bomb fires::

    python -m repro.chaos.crash --crash-at cell:2 -- \
        figure fig01 --datasets test-small --journal run.jsonl --resume

Crash points (ordinals are 1-based):

- ``cell:N`` — SIGKILL the process the moment the N-th cell *starts*
  executing: its ``running`` journal record is already durable, its
  result is not.  Exercises resume-from-in-flight.
- ``append:N`` — on the N-th journal append, write only the first half
  of the record (fsynced), then SIGKILL: a torn tail mid-append.
  Exercises torn-record recovery.

The process exits via ``SIGKILL`` (status ``-9``) when the bomb fires,
or with the wrapped command's exit code when the ordinal is never
reached — which the chaos tests use as the "crash points exhausted"
signal to stop iterating.

This module exists for tests and the chaos harness; it deliberately
reuses the *real* CLI entry point so a crash interrupts exactly the
code paths users run.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import Optional, Sequence

from ..errors import ConfigError


def _parse_crash_at(text: str) -> tuple[str, int]:
    point, _, raw_ordinal = text.partition(":")
    if point not in ("cell", "append"):
        raise ConfigError(
            f"unknown crash point {point!r}; expected cell:N or append:N"
        )
    try:
        ordinal = int(raw_ordinal)
    except ValueError as exc:
        raise ConfigError(f"bad crash ordinal in {text!r}") from exc
    if ordinal < 1:
        raise ConfigError("crash ordinals are 1-based")
    return point, ordinal


def _arm_cell_bomb(ordinal: int) -> None:
    from ..experiments.harness import ExperimentRunner

    original = ExperimentRunner._execute_cell
    state = {"count": 0}

    def bombed(self, *args, **kwargs):
        state["count"] += 1
        if state["count"] == ordinal:
            os.kill(os.getpid(), signal.SIGKILL)
        return original(self, *args, **kwargs)

    ExperimentRunner._execute_cell = bombed


def _arm_append_bomb(ordinal: int) -> None:
    from ..runstate.journal import RunJournal, render_line

    original = RunJournal._append
    state = {"count": 0}

    def bombed(self, record):
        state["count"] += 1
        if state["count"] == ordinal:
            line = render_line(record)
            torn = line[: max(1, len(line) // 2)]
            # The torn raw write IS the injected crash — this must
            # not go through the atomic append helpers.
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(torn)
                handle.flush()
                os.fsync(handle.fileno())
            os.kill(os.getpid(), signal.SIGKILL)
        return original(self, record)

    RunJournal._append = bombed


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos.crash",
        description="run a repro CLI command with a SIGKILL bomb armed "
        "at one counted crash point",
    )
    parser.add_argument(
        "--crash-at",
        required=True,
        metavar="POINT:N",
        help="cell:N (kill as the N-th cell starts) or append:N (tear "
        "the N-th journal append, then kill)",
    )
    parser.add_argument(
        "cli_args",
        nargs=argparse.REMAINDER,
        metavar="-- ARGS",
        help="repro CLI arguments (e.g. -- figure fig01 --journal j.jsonl)",
    )
    args = parser.parse_args(argv)
    point, ordinal = _parse_crash_at(args.crash_at)
    if point == "cell":
        _arm_cell_bomb(ordinal)
    else:
        _arm_append_bomb(ordinal)
    cli_args = list(args.cli_args)
    if cli_args and cli_args[0] == "--":
        cli_args = cli_args[1:]
    from ..cli import main as cli_main

    return cli_main(cli_args)


if __name__ == "__main__":
    sys.exit(main())
