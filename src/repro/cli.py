"""Command-line interface.

Mirrors the paper artifact's shell-script workflow (Appendix §5) as a
single entry point::

    python -m repro run --workload bfs --dataset kron-s --policy thp \
        --scenario high-pressure
    python -m repro figure fig07 --workloads bfs --datasets kron-s
    python -m repro datasets
    python -m repro advise --dataset twitter-s
    python -m repro profiles

Subcommands:

``run``
    Simulate one cell and print its metrics (the paper's
    ``app_output``/``results.txt`` numbers).
``figure``
    Regenerate one paper figure's rows (the ``thp.sh``-style drivers).
``datasets``
    List the registry with Table 2 statistics.
``advise``
    Print the page-size advisor's report for a dataset.
``profiles``
    List machine profiles and their geometry.
``runs``
    Inspect or compact a run journal (``list`` / ``show`` / ``gc``);
    pairs with ``run``/``figure``'s ``--journal`` and ``--resume``
    flags (see docs/checkpointing.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .config import PROFILES, get_profile
from .errors import ReproError
from .units import format_bytes


def _add_common_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        default="scaled",
        choices=sorted(PROFILES),
        help="machine profile (default: scaled)",
    )


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="fault-injection plan: comma list of "
        "site[:prob|:after=N|:every=N][:max=M] "
        "(e.g. 'compaction:0.5,swap-out:after=100'); see docs/faults.md",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="seed for the fault plan's per-site RNGs (default: 0)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="max retries per cell for injected faults (default: 2)",
    )
    parser.add_argument(
        "--cell-budget",
        type=int,
        default=None,
        metavar="ACCESSES",
        help="cap on simulated accesses per cell (runaway guard; "
        "default: unlimited)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="enable MemSan, the simulated-memory invariant checker "
        "(equivalent to REPRO_SANITIZE=1; see docs/static-analysis.md)",
    )


def _add_runstate_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="crash-safe run journal (JSONL); every cell outcome is "
        "recorded durably (see docs/checkpointing.md)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already completed in --journal (spec-hash "
        "match); failed/in-flight/torn cells re-run",
    )
    parser.add_argument(
        "--cell-cycles",
        type=int,
        default=None,
        metavar="CYCLES",
        help="watchdog: cap on simulated cycles per cell "
        "(deterministic; default: unlimited)",
    )
    parser.add_argument(
        "--cell-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog: wall-clock deadline per cell "
        "(catches host-side hangs; default: unlimited)",
    )


def _make_runner(args: argparse.Namespace):
    from .analysis.sanitizer import set_sanitize
    from .experiments.harness import ExperimentRunner
    from .faults.spec import FaultPlan
    from .runstate.journal import RunJournal

    if getattr(args, "sanitize", False):
        set_sanitize(True)
    plan = None
    if getattr(args, "faults", None):
        plan = FaultPlan.parse(args.faults, seed=args.fault_seed)
    journal = None
    if getattr(args, "journal", None):
        # The journal's own injector (for the journal.* crash-safety
        # sites) counts appends sweep-wide, unlike the per-cell
        # simulation injectors.
        journal = RunJournal(
            args.journal,
            injector=plan.make_injector() if plan and plan.enabled else None,
        )
    elif getattr(args, "resume", False):
        raise ReproError("--resume requires --journal PATH")
    return ExperimentRunner(
        config=get_profile(args.profile),
        fault_plan=plan,
        max_retries=getattr(args, "retries", 2),
        cell_budget=getattr(args, "cell_budget", None),
        journal=journal,
        resume=getattr(args, "resume", False),
        cell_cycles=getattr(args, "cell_cycles", None),
        cell_deadline_seconds=getattr(args, "cell_deadline", None),
        workers=getattr(args, "workers", 1),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Simulated reproduction of 'The Implications of Page Size "
            "Management on Graph Analytics' (IISWC 2022)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one experiment cell")
    run.add_argument("--workload", default="bfs")
    run.add_argument("--dataset", default="kron-s")
    run.add_argument(
        "--policy",
        default="base4k",
        help="policy name (see 'repro policies') or selective:<s>[:<reorder>]",
    )
    run.add_argument(
        "--scenario",
        default="fresh",
        help="fresh | high-pressure | low-pressure | frag-50 | "
        "oversubscribed | constrained:<gb> | fragmented:<level>[:<gb>]",
    )
    _add_common_machine_args(run)
    _add_resilience_args(run)
    _add_runstate_args(run)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument(
        "figure_id",
        help="e.g. fig01, fig07, fig11, headline — or 'all'",
    )
    figure.add_argument("--workloads", default=None,
                        help="comma list (default: figure's own)")
    figure.add_argument("--datasets", default=None,
                        help="comma list (default: all Table 2 inputs)")
    figure.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table"
    )
    figure.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="also save <figure_id>.txt and .json under DIR "
        "(atomic write: never leaves torn files)",
    )
    figure.add_argument(
        "--workers",
        type=int,
        default=int(os.environ.get("REPRO_WORKERS", "1")),
        metavar="N",
        help="process fan-out for the figure's cell sweep: 1 = serial "
        "(default), N > 1 = work-stealing pool of N workers, 0 = one "
        "per CPU; output and journal bytes are identical to a serial "
        "run (env default: REPRO_WORKERS; see docs/performance.md)",
    )
    _add_common_machine_args(figure)
    _add_resilience_args(figure)
    _add_runstate_args(figure)

    sub.add_parser("datasets", help="list datasets (Table 2)")
    sub.add_parser("policies", help="list named policies")
    sub.add_parser("profiles", help="list machine profiles")

    runs = sub.add_parser(
        "runs", help="inspect or compact a run journal"
    )
    runs.add_argument(
        "action",
        choices=("list", "show", "gc"),
        help="list: one line per cell; show: full record(s) as JSON; "
        "gc: compact to completed cells",
    )
    runs.add_argument(
        "--journal", required=True, metavar="PATH", help="journal file"
    )
    runs.add_argument(
        "--spec",
        default=None,
        metavar="FINGERPRINT",
        help="(show) restrict to one cell's spec fingerprint",
    )

    advise = sub.add_parser(
        "advise", help="run the page-size advisor on a dataset"
    )
    advise.add_argument("--dataset", default="kron-s")
    _add_common_machine_args(advise)

    return parser


def _parse_policy(spec: str):
    from .experiments.policies import POLICIES, selective_policy

    if spec.startswith("selective:"):
        parts = spec.split(":")
        fraction = float(parts[1])
        reorder = parts[2] if len(parts) > 2 else "dbg"
        return selective_policy(fraction, reorder=reorder)
    if spec in POLICIES:
        return POLICIES[spec]
    raise ReproError(
        f"unknown policy {spec!r}; known: "
        + ", ".join(sorted(POLICIES))
        + ", selective:<s>[:<reorder>]"
    )


def _parse_scenario(spec: str):
    from .experiments.scenarios import (
        SCENARIOS,
        constrained,
        fragmented,
    )

    if spec in SCENARIOS:
        return SCENARIOS[spec]
    if spec.startswith("constrained:"):
        return constrained(float(spec.split(":")[1]))
    if spec.startswith("fragmented:"):
        parts = spec.split(":")
        level = float(parts[1])
        pressure = float(parts[2]) if len(parts) > 2 else 3.0
        return fragmented(level, pressure)
    raise ReproError(
        f"unknown scenario {spec!r}; known: "
        + ", ".join(sorted(SCENARIOS))
        + ", constrained:<gb>, fragmented:<level>[:<gb>]"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    from .experiments.harness import CellFailure

    runner = _make_runner(args)
    policy = _parse_policy(args.policy)
    scenario = _parse_scenario(args.scenario)
    result = runner.run_cell(args.workload, args.dataset, policy, scenario)
    if isinstance(result, CellFailure):
        print(result.describe(), file=sys.stderr)
        return 1
    print(f"{args.workload} on {args.dataset} | policy={policy.name} "
          f"| scenario={scenario.name}")
    for key, value in result.summary().items():
        print(f"  {key:26s}: {value}")
    for name, fraction in result.huge_fraction_per_array.items():
        print(f"  huge[{name}]".ljust(28) + f": {fraction:.1%}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from .experiments import figures as figure_module

    functions = {
        "fig01": figure_module.fig01_thp_speedup,
        "fig02": figure_module.fig02_translation_overhead,
        "fig03": figure_module.fig03_tlb_miss_rates,
        "fig04": figure_module.fig04_access_breakdown,
        "fig05": figure_module.fig05_data_structure_thp,
        "table2": figure_module.table2_datasets,
        "fig07": figure_module.fig07_pressure_alloc_order,
        "fig07b": figure_module.fig07b_pressure_sweep,
        "fig08": figure_module.fig08_fragmentation,
        "fig09": figure_module.fig09_frag_sweep,
        "fig10": figure_module.fig10_selective_thp,
        "fig11": figure_module.fig11_selectivity_sweep,
        "pagecache": figure_module.page_cache_interference,
        "dbg-overhead": figure_module.dbg_overhead,
        "headline": figure_module.headline_summary,
        "abl-census": figure_module.ablation_alloc_order_census,
        "abl-promotion": figure_module.ablation_promotion_path,
        "abl-reorder": figure_module.ablation_reorder,
    }
    if args.figure_id == "all":
        selected = list(functions.values())
    elif args.figure_id in functions:
        selected = [functions[args.figure_id]]
    else:
        raise ReproError(
            f"unknown figure {args.figure_id!r}; known: all, "
            + ", ".join(sorted(functions))
        )
    runner = _make_runner(args)
    kwargs = {}
    if args.workloads:
        kwargs["workloads"] = tuple(args.workloads.split(","))
    if args.datasets:
        kwargs["datasets"] = tuple(args.datasets.split(","))
    for function in selected:
        result = function(runner, **kwargs)
        print(result.to_json() if args.json else result.render())
        if args.out:
            txt_path, json_path = result.save(args.out)
            print(f"saved {txt_path} and {json_path}", file=sys.stderr)
        if len(selected) > 1:
            print()
    if runner.failures:
        print(
            f"{len(runner.failures)} cell(s) failed (graceful degradation):",
            file=sys.stderr,
        )
        for failure in runner.failures:
            print(f"  {failure.describe()}", file=sys.stderr)
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    from .graph.datasets import DATASETS, load_dataset
    from .graph.stats import degree_stats

    for name, spec in DATASETS.items():
        if name == "test-small":
            continue
        graph = load_dataset(name).graph
        stats = degree_stats(graph)
        print(
            f"{name:12s} {spec.paper_name:22s} "
            f"V={graph.num_vertices:>8,} E={graph.num_edges:>10,} "
            f"avg_deg={graph.average_degree:5.1f} "
            f"gini={stats.gini:.2f} "
            f"hot80%={stats.hot_set_fraction:6.1%} "
            f"skew={stats.skew_class:8s} {spec.description}"
        )
    return 0


def _cmd_policies(_args: argparse.Namespace) -> int:
    from .experiments.policies import POLICIES

    for name, policy in POLICIES.items():
        thp = policy.make_thp()
        print(f"{name:16s} thp={thp.mode.value:8s} "
              f"order={policy.plan.order.value:14s} "
              f"reorder={policy.plan.reorder}")
    print("selective:<s>[:<reorder>]   madvise s% of the property array")
    return 0


def _cmd_profiles(_args: argparse.Namespace) -> int:
    for name in sorted(PROFILES):
        cfg = get_profile(name)
        print(
            f"{name:10s} base={format_bytes(cfg.pages.base_page_size)} "
            f"huge={format_bytes(cfg.pages.huge_page_size)} "
            f"L1={cfg.tlb.l1_base.entries}+{cfg.tlb.l1_huge.entries} "
            f"STLB={cfg.tlb.l2.entries} "
            f"node={format_bytes(cfg.node_memory_bytes)}"
        )
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from .core.advisor import PageSizeAdvisor
    from .graph.datasets import load_dataset

    data = load_dataset(args.dataset)
    report = PageSizeAdvisor(
        data.graph, config=get_profile(args.profile)
    ).advise()
    print(f"advisor report for {data.name}:")
    print(f"  hot vertex fraction : {report.hot_vertex_fraction:.2%}")
    print(f"  access coverage     : {report.access_coverage:.2%}")
    print(f"  natural clustering  : {report.natural_clustering:.2%}")
    print(f"  reorder             : {report.plan.reorder}")
    print(f"  advise fraction s   : {report.advise_fraction:.2%}")
    print(f"  huge pages needed   : {report.huge_pages_needed}")
    print(f"  budget fraction     : {report.budget_fraction:.2%}")
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    import json as json_module

    from .runstate.journal import RunJournal

    journal = RunJournal(args.journal)
    if args.action == "list":
        counts = journal.counts()
        print(
            f"{args.journal}: {len(journal)} cell(s) "
            f"(done={counts['done']} failed={counts['failed']} "
            f"running={counts['running']}; "
            f"{journal.torn_records} torn record(s) skipped)"
        )
        for record in journal.records():
            cycles = (
                f"{record.kernel_cycles:,}"
                if record.kernel_cycles is not None
                else "-"
            )
            print(
                f"  {record.spec}  {record.status:8s} "
                f"attempts={record.attempts} kernel_cycles={cycles}  "
                f"{record.label}"
            )
        return 0
    if args.action == "show":
        records = list(journal.records())
        if args.spec is not None:
            records = [r for r in records if r.spec == args.spec]
            if not records:
                raise ReproError(
                    f"no record with spec {args.spec!r} in {args.journal}"
                )
        for record in records:
            print(json_module.dumps(record.to_dict(), indent=2))
        return 0
    kept, dropped = journal.gc()
    print(
        f"{args.journal}: kept {kept} completed cell(s), "
        f"dropped {dropped} superseded/failed/in-flight record(s)"
    )
    return 0


COMMANDS = {
    "run": _cmd_run,
    "figure": _cmd_figure,
    "datasets": _cmd_datasets,
    "policies": _cmd_policies,
    "profiles": _cmd_profiles,
    "advise": _cmd_advise,
    "runs": _cmd_runs,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
